"""§3.4 efficacy: the AIMD group-size tuner against a changing cluster.

The trace runs three phases — 16 machines, then 128, then back to 16 —
with fixed per-batch execution time.  The tuner must grow the group when
coordination cost rises (big cluster) and shrink it when coordination gets
cheap again, keeping the smoothed overhead inside its bounds.
"""

from repro.bench.figures import group_tuning_trace
from repro.bench.reporting import render_table


def test_group_size_tuning(benchmark, report):
    rows = benchmark.pedantic(group_tuning_trace, rounds=1, iterations=1)
    sampled = rows[::10] + [rows[79], rows[159], rows[239]]
    sampled.sort(key=lambda r: r["step"])
    table = render_table(
        ["step", "machines", "group_size", "smoothed_overhead", "action"],
        [[r["step"], r["machines"], r["group_size"], r["overhead"], r["action"]]
         for r in sampled],
        title="Group-size auto-tuning trace (AIMD, bounds [0.05, 0.20])",
    )
    report(table)
    phase_ends = (rows[79], rows[159], rows[239])
    assert phase_ends[1]["group_size"] > phase_ends[0]["group_size"]
    assert phase_ends[2]["group_size"] < phase_ends[1]["group_size"]
    for row in phase_ends:
        assert row["overhead"] < 0.30  # settled near/inside the band
