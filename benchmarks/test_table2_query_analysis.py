"""Table 2: breakdown of aggregation functions in a 900,000-query corpus.

Paper (§3.5): ~25 % of queries use aggregation; >95 % of aggregation
queries use only partial-merge aggregates — Count 60.55 %, First/Last
25.9 %, Sum/Min/Max 8.64 %, UDF ~0 %, Other ~4.9 %.  The proprietary
corpus is substituted by a synthetic generator with the published mix; the
*analyzer* re-derives the table from raw SQL text.
"""

from functools import partial

from repro.bench.figures import table2_query_analysis
from repro.bench.reporting import render_table
from repro.workloads.queries import TABLE2_DISTRIBUTION


def test_table2_query_analysis(benchmark, report):
    out = benchmark.pedantic(
        partial(table2_query_analysis, num_queries=900_000), rounds=1, iterations=1
    )
    rows = [
        [cat, out["percentages"][cat], TABLE2_DISTRIBUTION[cat]]
        for cat in TABLE2_DISTRIBUTION
    ]
    table = render_table(
        ["aggregate", "measured_pct", "paper_pct"],
        rows,
        title=f"Table 2: aggregation breakdown over "
              f"{out['total_queries']:,} queries "
              f"(agg fraction {out['aggregation_fraction']:.1%}, "
              f"partial-merge {out['partial_merge_fraction']:.1%})",
    )
    report(table)
    assert out["total_queries"] == 900_000
    assert 0.24 < out["aggregation_fraction"] < 0.26
    assert out["partial_merge_fraction"] > 0.95
    for cat, expected in TABLE2_DISTRIBUTION.items():
        assert abs(out["percentages"][cat] - expected) < 1.0
