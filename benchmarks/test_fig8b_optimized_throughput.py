"""Figure 8(b): maximum throughput at a latency target with micro-batch
optimizations.

Paper: Spark and Flink fail to meet the 100 ms latency target; Drizzle's
throughput increases 2-3x over its unoptimized configuration.
"""

from functools import partial

from repro.bench.figures import throughput_vs_latency
from repro.bench.reporting import render_table
from repro.sim.streaming import SystemConfig, max_throughput
from repro.workloads.profiles import YAHOO


def test_fig8b_optimized_throughput(benchmark, report):
    rows = benchmark.pedantic(
        partial(throughput_vs_latency, optimized=True, targets_s=(0.1, 0.25, 0.5)),
        rounds=1,
        iterations=1,
    )
    table = render_table(
        ["latency_target_ms", "drizzle_Mev_s", "spark_Mev_s", "flink_Mev_s"],
        [
            [r["latency_target_ms"], r["drizzle_Mev_s"], r["spark_Mev_s"], r["flink_Mev_s"]]
            for r in rows
        ],
        title="Figure 8(b): max throughput with optimization (paper: "
              "Spark & Flink miss the 100ms target; Drizzle +2-3x vs unopt)",
    )
    report(table)
    at100 = rows[0]
    assert at100["drizzle_Mev_s"] > 10
    assert at100["spark_Mev_s"] == 0.0
    assert at100["flink_Mev_s"] == 0.0
    plain = max_throughput(YAHOO, SystemConfig(kind="drizzle"), 0.25)
    opt = rows[1]["drizzle_Mev_s"] * 1e6
    assert 2.0 < opt / plain < 4.5
