"""§3.3 ablation: group size vs adaptability.

"using a larger group size could lead to larger delays in responding to
cluster changes" — the flip side of amortizing coordination.  A load
spike hits at t=121.3 s and the cluster manager grants 64 extra machines
immediately, but Drizzle only picks them up at the next group boundary:
the adaptation delay and the backlog spike it causes grow with the group
size, while steady-state latency barely improves past a moderate group.
This is precisely the trade-off the §3.4 AIMD tuner automates.
"""

from repro.bench.reporting import render_table
from repro.sim.elasticity import group_size_adaptation_sweep


def test_ablation_group_adaptability(benchmark, report):
    rows = benchmark.pedantic(group_size_adaptation_sweep, rounds=1, iterations=1)
    table = render_table(
        ["group_size", "adaptation_delay_s", "post_resize_spike_s",
         "steady_median_s"],
        [
            [r["group_size"], r["adaptation_delay_s"], r["post_resize_spike_s"],
             r["normal_median_s"]]
            for r in rows
        ],
        title="Ablation (§3.3): group size vs adaptability under a load "
              "spike + cluster resize (64 -> 128 machines)",
    )
    report(table)
    delays = [r["adaptation_delay_s"] for r in rows]
    assert delays == sorted(delays)
    assert rows[-1]["post_resize_spike_s"] > 2 * rows[0]["post_resize_spike_s"]
