"""Figure 6(b): maximum throughput achievable at a given latency target
(unoptimized data plane).

Paper: Spark cannot sustain a 250 ms target at any throughput; Drizzle and
Flink both reach ≈20M events/s there; at higher targets Drizzle gets
1.5-3x more throughput than Spark, with the gap shrinking as the target
grows (scheduling overheads matter less).
"""

from functools import partial

from repro.bench.figures import throughput_vs_latency
from repro.bench.reporting import render_table


def test_fig6b_throughput_vs_latency(benchmark, report):
    rows = benchmark.pedantic(
        partial(throughput_vs_latency, optimized=False, targets_s=(0.25, 0.5, 1.0, 2.0)),
        rounds=1,
        iterations=1,
    )
    table = render_table(
        ["latency_target_ms", "drizzle_Mev_s", "spark_Mev_s", "flink_Mev_s"],
        [
            [r["latency_target_ms"], r["drizzle_Mev_s"], r["spark_Mev_s"], r["flink_Mev_s"]]
            for r in rows
        ],
        title="Figure 6(b): max throughput at latency target, unoptimized "
              "(paper: Spark crashes @250ms; Drizzle~Flink ~20M; 1.5-3x vs "
              "Spark at higher targets, shrinking)",
    )
    report(table)
    at250 = rows[0]
    assert at250["spark_Mev_s"] == 0.0
    assert at250["drizzle_Mev_s"] > 10
    assert at250["flink_Mev_s"] > 10
    gaps = [r["drizzle_Mev_s"] / r["spark_Mev_s"] for r in rows[1:]]
    assert gaps[0] > gaps[-1] > 1.0
