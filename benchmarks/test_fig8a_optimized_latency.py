"""Figure 8(a): latency CDF WITH the §3.5 micro-batch optimizations
(map-side partial aggregation + vectorized execution), 10M events/s.

Paper: Drizzle achieves <100 ms latency and is ≈2x faster than Spark and
≈3x faster than Flink (Flink creates windows after partitioning, so it
cannot apply the combine optimization).
"""

from functools import partial

from repro.bench.figures import yahoo_latency_cdf
from repro.bench.reporting import render_cdf
from repro.common.stats import percentile


def test_fig8a_optimized_latency_cdf(benchmark, report):
    series = benchmark.pedantic(
        partial(yahoo_latency_cdf, optimized=True), rounds=1, iterations=1
    )
    report(
        render_cdf(
            series,
            title="Figure 8(a): latency CDF with micro-batch optimization, "
                  "10M ev/s (paper: Drizzle <100ms, 2x < Spark, 3x < Flink)",
        )
    )
    med = {k: percentile(v, 50) for k, v in series.items()}
    assert med["drizzle"] < 0.1
    assert med["spark"] > 2 * med["drizzle"]
    assert med["flink"] > 2 * med["drizzle"]
