"""Simulator cross-validation: the closed-form micro-benchmark model vs
the task-granularity discrete-event simulation, side by side.

Two independent implementations of the same cost model must agree where
their assumptions coincide (serial batches); the one documented divergence
— batches pipelining across slots *within* a group — only makes grouped
shuffle batches faster, never slower.
"""

from repro.bench.reporting import render_table
from repro.sim.microbench import MicroBenchConfig, run_microbenchmark
from repro.sim.tasksim import simulate_microbenchmark_events

CASES = [
    ("spark", 1, 0),
    ("spark", 1, 16),
    ("only-pre", 1, 16),
    ("drizzle", 25, 0),
    ("drizzle", 100, 0),
    ("drizzle", 100, 16),
]


def run_validation():
    rows = []
    for mode, group, reds in CASES:
        for machines in (4, 128):
            cfg = MicroBenchConfig(
                mode=mode, machines=machines, group_size=group, num_reducers=reds
            )
            analytic = run_microbenchmark(cfg).time_per_batch_s * 1e3
            event = simulate_microbenchmark_events(cfg).time_per_batch_s * 1e3
            rows.append(
                {
                    "mode": mode,
                    "group": group,
                    "reducers": reds,
                    "machines": machines,
                    "analytic_ms": analytic,
                    "event_ms": event,
                    "ratio": event / analytic,
                }
            )
    return rows


def test_tasksim_cross_validation(benchmark, report):
    rows = benchmark.pedantic(run_validation, rounds=1, iterations=1)
    table = render_table(
        ["mode", "group", "reducers", "machines", "analytic_ms", "event_ms", "ratio"],
        [
            [r["mode"], r["group"], r["reducers"], r["machines"],
             r["analytic_ms"], r["event_ms"], r["ratio"]]
            for r in rows
        ],
        title="Closed-form vs event-driven micro-benchmark times "
              "(ratio ~1 except grouped shuffles, which pipeline)",
    )
    report(table)
    for r in rows:
        if r["group"] == 1 or r["reducers"] == 0:
            assert 0.8 <= r["ratio"] <= 1.05, r
        else:
            assert r["ratio"] <= 1.0, r  # pipelining: faster, never slower
