"""Figure 5(a): the same weak-scaling sweep with 100x more data per task.

Paper: "using a group size of 25 captures most of the benefits and as the
running time is dominated by computation we see no additional benefits
from larger group sizes."
"""

from repro.bench.figures import fig5a_heavy_compute
from repro.bench.reporting import render_table


def test_fig5a_heavy_compute(benchmark, report):
    rows = benchmark.pedantic(fig5a_heavy_compute, rounds=1, iterations=1)
    table = render_table(
        ["machines", "spark_ms", "drizzle_g25_ms", "drizzle_g50_ms",
         "drizzle_g100_ms", "g25_vs_g100_gap_ms"],
        [
            [r["machines"], r["spark_ms"], r["drizzle_g25_ms"],
             r["drizzle_g50_ms"], r["drizzle_g100_ms"], r["g25_vs_g100_gap_ms"]]
            for r in rows
        ],
        title="Figure 5(a): time per iteration with 100x data "
              "(paper: g=25 captures most benefit; compute dominates)",
    )
    report(table)
    at128 = rows[-1]
    # Diminishing returns beyond group size 25 (<10% gap).
    assert at128["g25_vs_g100_gap_ms"] / at128["drizzle_g100_ms"] < 0.10
    # Drizzle still beats Spark (coordination removed).
    assert at128["drizzle_g25_ms"] < at128["spark_ms"]
