"""Ablation: continuous-engine checkpoint interval vs recovery cost.

§2.2: on failure, continuous-operator systems roll every node back to the
last consistent checkpoint and replay.  The replay backlog — and hence the
latency spike and the number of disrupted windows — scales with the
checkpoint interval.  Micro-batch parallel recovery re-executes only the
lost tasks, so Drizzle's spike is interval-independent.
"""

from repro.bench.figures import ablation_checkpoint_interval
from repro.bench.reporting import render_table


def test_ablation_checkpoint_interval(benchmark, report):
    rows = benchmark.pedantic(ablation_checkpoint_interval, rounds=1, iterations=1)
    table = render_table(
        ["ckpt_interval_s", "flink_spike_s", "flink_windows_disrupted",
         "drizzle_spike_s"],
        [
            [r["checkpoint_interval_s"], r["flink_spike_s"],
             r["flink_windows_disrupted"], r["drizzle_spike_s"]]
            for r in rows
        ],
        title="Ablation: aligned-checkpoint interval vs rollback recovery "
              "cost (failure at t=240s, Yahoo @20M ev/s)",
    )
    report(table)
    spikes = [r["flink_spike_s"] for r in rows]
    assert spikes == sorted(spikes)  # longer interval -> bigger spike
    assert spikes[-1] > spikes[0] + 10
    # Drizzle's recovery is checkpoint-interval independent and far lower.
    assert all(r["drizzle_spike_s"] < 3.0 for r in rows)
