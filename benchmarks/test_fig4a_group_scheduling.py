"""Figure 4(a): single-stage weak scaling, 100 micro-batches, 4-128
machines — Spark vs Drizzle with group sizes 25/50/100.

Paper anchors: Spark ≈195 ms per micro-batch at 128 machines; Drizzle with
group 100 <5 ms; overall speedups 7-46x growing with cluster size.
"""

from repro.bench.figures import fig4a_group_scheduling
from repro.bench.reporting import render_table


def test_fig4a_group_scheduling(benchmark, report):
    rows = benchmark.pedantic(fig4a_group_scheduling, rounds=1, iterations=1)
    table = render_table(
        ["machines", "spark_ms", "drizzle_g25_ms", "drizzle_g50_ms",
         "drizzle_g100_ms", "speedup_g100"],
        [
            [r["machines"], r["spark_ms"], r["drizzle_g25_ms"],
             r["drizzle_g50_ms"], r["drizzle_g100_ms"], r["speedup_g100"]]
            for r in rows
        ],
        title="Figure 4(a): time per micro-batch, single-stage weak scaling "
              "(paper: Spark ~195ms @128, Drizzle g=100 <5ms, speedup 7-46x)",
    )
    report(table)
    at128 = rows[-1]
    assert at128["spark_ms"] > 150
    assert at128["drizzle_g100_ms"] < 6
    assert at128["speedup_g100"] > 30
