"""Shared fixtures for the benchmark harness.

Every benchmark prints the rows/series of the paper figure it reproduces,
bypassing pytest's capture so the tables land in the console / tee'd log.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def report(capfd):
    """Print a result table directly to the terminal."""

    def _report(text: str) -> None:
        with capfd.disabled():
            print("\n" + text + "\n")

    return _report
