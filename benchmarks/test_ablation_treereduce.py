"""§3.6 ablation: communication-structure-aware pre-scheduling.

For ``treereduce`` the DAG structure is known, so a reduce task can wait
on only its fan-in parents instead of all maps; with staggered map finish
times this activates reducers much earlier.  Also validates the dependency
narrowing on the REAL engine via message counting.
"""

from functools import partial

from repro.bench.figures import ablation_treereduce
from repro.bench.reporting import render_table
from repro.common.config import EngineConf, SchedulingMode
from repro.dag.dataset import parallelize
from repro.dag.plan import collect_action, compile_plan
from repro.engine.cluster import LocalCluster


def test_ablation_treereduce_activation(benchmark, report):
    results = []
    for num_maps in (16, 64, 256):
        out = ablation_treereduce(num_maps=num_maps, fan_in=2)
        results.append(out)
    benchmark.pedantic(
        partial(ablation_treereduce, num_maps=128, fan_in=2), rounds=1, iterations=1
    )
    table = render_table(
        ["num_maps", "fan_in", "activation_all_to_all", "activation_tree", "speedup"],
        [
            [r["num_maps"], r["fan_in"], r["mean_activation_all_to_all"],
             r["mean_activation_tree"], r["speedup"]]
            for r in results
        ],
        title="Ablation (§3.6): mean reducer activation time (fraction of a "
              "map wave) — tree deps activate earlier, more so at scale",
    )
    report(table)
    speedups = [r["speedup"] for r in results]
    assert speedups == sorted(speedups)  # grows with map count
    assert speedups[-1] > 1.3


def test_treereduce_dependency_counts_on_engine(benchmark, report):
    """On the real engine, a tree stage's reduce task waits on exactly
    fan_in notifications, vs num_maps for an all-to-all shuffle."""

    def run():
        conf = EngineConf(
            num_workers=2, scheduling_mode=SchedulingMode.DRIZZLE, group_size=1
        )
        with LocalCluster(conf) as cluster:
            tree = parallelize(range(64), 8).tree_reduce_stage(lambda a, b: a + b, 2)
            tree_plan = compile_plan(tree, collect_action())
            alltoall = parallelize(range(64), 8).map(
                lambda x: (x % 4, x)
            ).reduce_by_key(lambda a, b: a + b, 4)
            all_plan = compile_plan(alltoall, collect_action())
            out = cluster.run_plan(tree_plan)
            return (
                len(tree_plan.stages[1].task_dependencies(0)),
                len(all_plan.stages[1].task_dependencies(0)),
                sum(out),
            )

    tree_deps, all_deps, total = benchmark.pedantic(run, rounds=1, iterations=1)
    assert tree_deps == 2
    assert all_deps == 8
    assert total == sum(range(64))
    report(
        render_table(
            ["structure", "deps_per_reducer"],
            [["tree (fan_in=2)", tree_deps], ["all-to-all", all_deps]],
            title="Pre-scheduling dependency-set sizes on the real engine",
        )
    )
