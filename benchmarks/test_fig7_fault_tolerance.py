"""Figure 7: event latency across time when one machine is killed at
t=240 s (Yahoo benchmark, 20M events/s, unoptimized).

Paper: Drizzle's latency rises from ≈350 ms to ≈1 s for ONE window, then
returns to normal; Spark shows ≈3x normal latency for one window; Flink
spikes to ≈18 s (topology restart + rollback to checkpoint + replay) and
needs ≈4 windows (~40 s) to catch back up.  Headline: Drizzle recovers
≈4x faster than Flink with up to 13x lower latency during recovery.
"""

from repro.bench.figures import fig7_fault_tolerance
from repro.bench.reporting import render_table


def test_fig7_fault_tolerance(benchmark, report):
    results = benchmark.pedantic(fig7_fault_tolerance, rounds=1, iterations=1)
    table = render_table(
        ["system", "normal_median_ms", "spike_s", "windows_disrupted",
         "recovery_time_s"],
        [
            [r.system, r.normal_median_s * 1e3, r.spike_s, r.windows_disrupted,
             r.recovery_time_s]
            for r in results
        ],
        title="Figure 7: failure at t=240s (paper: Drizzle ~1s spike/1 window, "
              "Spark ~3x/1 window, Flink ~18s spike/~4 windows)",
    )
    report(table)
    # Timeline excerpt around the failure for the plot's shape.
    by_system = {r.system: r for r in results}
    excerpt_rows = []
    for t, latency in by_system["flink"].timeline:
        if 220 <= t <= 320:
            row = [t]
            for kind in ("drizzle", "spark", "flink"):
                lat = dict(by_system[kind].timeline).get(t, float("nan"))
                row.append(lat)
            excerpt_rows.append(row)
    report(
        render_table(
            ["window_end_s", "drizzle_s", "spark_s", "flink_s"],
            excerpt_rows,
            title="Figure 7 timeline excerpt (window latencies, seconds)",
        )
    )
    drizzle, spark, flink = (by_system[k] for k in ("drizzle", "spark", "flink"))
    assert drizzle.windows_disrupted <= 2
    assert spark.windows_disrupted <= 2
    assert flink.windows_disrupted >= 3
    assert flink.spike_s > 10
    assert flink.spike_s / drizzle.spike_s >= 8  # "up to 13x lower latency"
    assert flink.recovery_time_s / max(drizzle.recovery_time_s, 10.0) >= 3  # "~4x faster"
