"""§3.6 ablation: pipelined scheduling vs group scheduling.

The rejected design overlaps scheduling of batch i+1 with execution of
batch i, giving b·max(t_exec, t_sched).  The paper found it "insufficient
for larger cluster sizes, where t_sched can be greater than t_exec" —
group scheduling keeps winning because it shrinks t_sched itself.
"""

from functools import partial

from repro.bench.figures import ablation_pipelined
from repro.bench.reporting import render_table


def test_ablation_pipelined_light_compute(benchmark, report):
    rows = benchmark.pedantic(ablation_pipelined, rounds=1, iterations=1)
    table = render_table(
        ["machines", "spark_ms", "pipelined_ms", "drizzle_g100_ms"],
        [[r["machines"], r["spark_ms"], r["pipelined_ms"], r["drizzle_g100_ms"]]
         for r in rows],
        title="Ablation (§3.6): pipelined scheduling, ~1ms tasks "
              "(paper: pipelining is bounded by t_sched at scale)",
    )
    report(table)
    at128 = rows[-1]
    # At 128 machines scheduling dominates: pipelining ~= Spark, while
    # group scheduling is an order of magnitude faster.
    assert at128["pipelined_ms"] > 0.8 * at128["spark_ms"] * 0.9
    assert at128["pipelined_ms"] > 10 * at128["drizzle_g100_ms"]


def test_ablation_pipelined_heavy_compute(benchmark, report):
    rows = benchmark.pedantic(
        partial(ablation_pipelined, task_compute_s=0.25), rounds=1, iterations=1
    )
    table = render_table(
        ["machines", "spark_ms", "pipelined_ms", "drizzle_g100_ms"],
        [[r["machines"], r["spark_ms"], r["pipelined_ms"], r["drizzle_g100_ms"]]
         for r in rows],
        title="Ablation (§3.6): pipelined scheduling, 250ms tasks "
              "(compute-dominated: pipelining hides scheduling fully)",
    )
    report(table)
    at128 = rows[-1]
    # With t_exec >> t_sched pipelining works: per-batch ~= exec time.
    assert at128["pipelined_ms"] < 1.1 * 250 + 10
    assert at128["pipelined_ms"] < at128["spark_ms"]
