"""Real-engine counterpart of the §5.2 micro-benchmarks: runs the actual
threaded engine and measures *coordination work* (driver launch RPCs and
scheduling/transfer time counters) instead of simulated time.

The absolute numbers are Python-thread noise; the *ratios* — one launch
RPC per worker per group vs one per task per stage, and amortized
scheduling time — are the mechanism Figures 4/5 rest on.
"""

from repro.bench.reporting import render_table
from repro.common.config import EngineConf, SchedulingMode
from repro.common.metrics import (
    COUNT_LAUNCH_RPCS,
    TIME_SCHEDULING,
    TIME_TASK_TRANSFER,
)
from repro.dag.plan import collect_action, compile_plan
from repro.engine.cluster import LocalCluster
from repro.workloads.synthetic import sum_random_with_shuffle

NUM_BATCHES = 20
WORKERS = 4


def run_batches(mode: SchedulingMode, group_size: int):
    conf = EngineConf(
        num_workers=WORKERS,
        slots_per_worker=2,
        scheduling_mode=mode,
        group_size=group_size,
    )
    with LocalCluster(conf) as cluster:
        plans = [
            compile_plan(
                sum_random_with_shuffle(num_tasks=8, num_reducers=4,
                                        elements_per_task=50, seed=b),
                collect_action(),
            )
            for b in range(NUM_BATCHES)
        ]
        if mode is SchedulingMode.DRIZZLE:
            for start in range(0, NUM_BATCHES, group_size):
                cluster.run_group(plans[start : start + group_size])
        else:
            for plan in plans:
                cluster.run_plan(plan)
        counters = cluster.metrics.counters_snapshot()
    return {
        "launch_rpcs": counters.get(COUNT_LAUNCH_RPCS, 0),
        "scheduling_s": counters.get(TIME_SCHEDULING, 0.0),
        "transfer_s": counters.get(TIME_TASK_TRANSFER, 0.0),
    }


def test_engine_coordination_amortization(benchmark, report):
    spark = run_batches(SchedulingMode.PER_BATCH, 1)
    drizzle = benchmark.pedantic(
        lambda: run_batches(SchedulingMode.DRIZZLE, 10), rounds=1, iterations=1
    )
    table = render_table(
        ["system", "launch_rpcs", "scheduling_s", "transfer_s"],
        [
            ["Spark (per-batch)", spark["launch_rpcs"], spark["scheduling_s"],
             spark["transfer_s"]],
            ["Drizzle (group=10)", drizzle["launch_rpcs"], drizzle["scheduling_s"],
             drizzle["transfer_s"]],
        ],
        title=f"Real engine, {NUM_BATCHES} two-stage micro-batches on "
              f"{WORKERS} workers: driver coordination",
    )
    report(table)
    # Spark: one RPC per task = 20 batches x (8 maps + 4 reduces).
    assert spark["launch_rpcs"] == NUM_BATCHES * 12
    # Drizzle: at most one RPC per worker per group (2 groups here).
    assert drizzle["launch_rpcs"] <= 2 * WORKERS
    # (Wall-clock scheduling time is not asserted: in-process placement is
    # microseconds either way — time fidelity at scale is the simulator's
    # job; the engine demonstrates the message-count mechanism.)
