"""Figure 6(a): Yahoo Streaming Benchmark event-latency CDF at 20M
events/s on 128 machines, groupby (unoptimized) data plane.

Paper: Drizzle median ≈350 ms, matching Flink; ≈3.6x lower than Spark.
"""

from functools import partial

from repro.bench.figures import yahoo_latency_cdf
from repro.bench.reporting import render_cdf
from repro.common.stats import percentile


def test_fig6a_yahoo_latency_cdf(benchmark, report):
    series = benchmark.pedantic(
        partial(yahoo_latency_cdf, optimized=False), rounds=1, iterations=1
    )
    report(
        render_cdf(
            series,
            title="Figure 6(a): Yahoo benchmark latency CDF, 20M ev/s, no "
                  "optimization (paper: Drizzle ~350ms ~= Flink, ~3.6x < Spark)",
        )
    )
    med = {k: percentile(v, 50) for k, v in series.items()}
    assert 2.5 < med["spark"] / med["drizzle"] < 6.0
    assert 0.5 < med["drizzle"] / med["flink"] < 2.0
    assert med["drizzle"] < 1.0
