"""Executor-backend throughput: the same CPU-bound map on the real engine
under the thread and process backends.

Thread slots share one GIL, so pure-Python compute serializes no matter
how many workers the cluster has; the process backend runs each worker's
slots in a spawn-based pool and scales with physical cores.  The 2x
acceptance bound is asserted only on hosts with >= 4 cores — on smaller
machines the backends converge (and process pays IPC overhead), which the
recorded ``cpu_count`` makes explicit in the checked-in JSON.
"""

import os

from repro.bench.figures import executor_backend_comparison
from repro.bench.reporting import render_table, write_bench_json

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_executor_backend_throughput(benchmark, report):
    rows = benchmark.pedantic(
        executor_backend_comparison, rounds=1, iterations=1
    )
    table = render_table(
        ["backend", "cpu_count", "wall_s", "records_per_s",
         "speedup_vs_thread"],
        [
            [r["backend"], r["cpu_count"], r["wall_s"], r["records_per_s"],
             r["speedup_vs_thread"]]
            for r in rows
        ],
        title="Executor backends — CPU-bound map, 4 workers x 2 slots "
              "(thread serializes on the GIL; process uses all cores)",
    )
    report(table)
    write_bench_json("executor_backends", {"rows": rows}, out_dir=REPO_ROOT)

    by_backend = {r["backend"]: r for r in rows}
    assert set(by_backend) == {"thread", "process"}
    for row in rows:
        assert row["records_per_s"] > 0
    # The multi-core win only exists where there are cores to win on.
    if (os.cpu_count() or 1) >= 4:
        assert by_backend["process"]["speedup_vs_thread"] >= 2.0
