"""Figure 4(b): per-task time breakdown (scheduler delay / task transfer /
compute) for the single-stage micro-benchmark at 128 machines.

Paper: Spark's per-task time is dominated by scheduling and task transfer;
Drizzle amortizes both with group scheduling, leaving compute dominant.
"""

from repro.bench.figures import fig4b_breakdown
from repro.bench.reporting import render_table


def test_fig4b_breakdown(benchmark, report):
    rows = benchmark.pedantic(fig4b_breakdown, rounds=1, iterations=1)
    table = render_table(
        ["system", "scheduler_delay_ms", "task_transfer_ms", "compute_ms"],
        [
            [r["system"], r["scheduler_delay_ms"], r["task_transfer_ms"], r["compute_ms"]]
            for r in rows
        ],
        title="Figure 4(b): per-task breakdown @128 machines "
              "(paper: Drizzle lowers scheduling + transfer below compute)",
    )
    report(table)
    by_system = {r["system"]: r for r in rows}
    spark = by_system["Spark"]
    drizzle = by_system["Drizzle, Group=100"]
    # Spark: coordination dominates compute per task.
    assert spark["scheduler_delay_ms"] + spark["task_transfer_ms"] > spark["compute_ms"] / 3
    # Drizzle: compute dominates.
    assert drizzle["scheduler_delay_ms"] + drizzle["task_transfer_ms"] < drizzle["compute_ms"]
