"""Figure 5(b): two-stage micro-batches (shuffle, 16 reducers): Spark vs
pre-scheduling only vs pre-scheduling + group scheduling (10 / 100).

Paper anchors: Drizzle achieves 2.7-5.5x speedup over Spark across cluster
sizes; pre-scheduling ALONE saves only ~20 ms at 128 machines (the group
is what amortizes scheduling); Drizzle two-stage batch ≈45 ms @128.
"""

from repro.bench.figures import fig5b_prescheduling
from repro.bench.reporting import render_table


def test_fig5b_prescheduling(benchmark, report):
    rows = benchmark.pedantic(fig5b_prescheduling, rounds=1, iterations=1)
    table = render_table(
        ["machines", "spark_ms", "only_pre_ms", "pre_g10_ms", "pre_g100_ms",
         "speedup_g100"],
        [
            [r["machines"], r["spark_ms"], r["only_pre_ms"], r["pre_g10_ms"],
             r["pre_g100_ms"], r["speedup_g100"]]
            for r in rows
        ],
        title="Figure 5(b): two-stage (shuffle) micro-batch times "
              "(paper: 2.7-5.5x vs Spark; pre-sched alone saves ~20ms @128; "
              "Drizzle ~45ms @128)",
    )
    report(table)
    at128 = rows[-1]
    assert 15 <= at128["spark_ms"] - at128["only_pre_ms"] <= 30
    assert 35 <= at128["pre_g100_ms"] <= 60
    assert 2.0 <= at128["speedup_g100"] <= 6.5
