"""Figure 9: Drizzle on the Yahoo benchmark vs the video-analytics
workload (session heartbeats: larger records, more shuffled data, session
skew).

Paper: similar median (≈350-400 ms), but the video workload's 95th
percentile rises to ≈780 ms vs ≈480 ms for Yahoo, driven by record size
and inherent key skew.
"""

from repro.bench.figures import fig9_workload_comparison
from repro.bench.reporting import render_cdf
from repro.common.stats import percentile


def test_fig9_video_workload(benchmark, report):
    series = benchmark.pedantic(fig9_workload_comparison, rounds=1, iterations=1)
    report(
        render_cdf(
            series,
            title="Figure 9: Drizzle on Yahoo vs video analytics (paper: "
                  "similar medians; video p95 ~780ms vs ~480ms)",
        )
    )
    m_yahoo = percentile(series["drizzle_yahoo"], 50)
    m_video = percentile(series["drizzle_video"], 50)
    p95_yahoo = percentile(series["drizzle_yahoo"], 95)
    p95_video = percentile(series["drizzle_video"], 95)
    assert 0.5 < m_video / m_yahoo < 2.0  # similar medians
    assert p95_video / m_video > 1.3 * (p95_yahoo / m_yahoo)  # fatter tail
