#!/usr/bin/env python
"""Batch analytics on the BSP engine: the substrate under Drizzle.

Exercises the Dataset API directly (no streaming): joins, keyed
aggregation with map-side combining, tree reduction (§3.6), and the
Table 2 workload analysis over a synthetic SQL corpus.

    python examples/batch_analytics.py
"""

from repro.bench.reporting import render_table
from repro.common.config import EngineConf, SchedulingMode
from repro.dag.dataset import parallelize
from repro.dag.plan import compile_plan, count_action, dict_action, reduce_action
from repro.engine.cluster import LocalCluster
from repro.workloads.queries import QueryCorpusGenerator, WorkloadAnalyzer, TABLE2_DISTRIBUTION


def main() -> None:
    conf = EngineConf(
        num_workers=4, slots_per_worker=2, scheduling_mode=SchedulingMode.DRIZZLE
    )
    with LocalCluster(conf) as cluster:
        # -- keyed aggregation with map-side combining ------------------
        orders = parallelize(
            [(f"user-{i % 50}", (i * 7) % 100) for i in range(10_000)], 8
        )
        spend = orders.reduce_by_key(lambda a, b: a + b, 4)
        totals = dict(cluster.collect(spend))
        print(f"aggregated spend for {len(totals)} users "
              f"(max: {max(totals.values())})")

        # -- join against a dimension table ------------------------------
        users = parallelize(
            [(f"user-{i}", "gold" if i % 10 == 0 else "basic") for i in range(50)], 4
        )
        joined = spend.join(users, 4)
        gold_spend = (
            joined.filter(lambda kv: kv[1][1] == "gold")
            .map(lambda kv: kv[1][0])
        )
        plan = compile_plan(gold_spend, reduce_action(lambda a, b: a + b))
        print(f"total gold-tier spend: {cluster.run_plan(plan)}")

        # -- tree reduction (§3.6 pre-scheduling structure) ---------------
        big = parallelize(range(100_000), 16).map(lambda x: x * x)
        tree = big.tree_reduce_stage(lambda a, b: a + b, fan_in=4).tree_reduce_stage(
            lambda a, b: a + b, fan_in=4
        )
        total = sum(cluster.collect(tree))
        assert total == sum(x * x for x in range(100_000))
        print(f"tree-reduced sum of squares: {total}")

        # -- count action -------------------------------------------------
        evens = parallelize(range(100_000), 16).filter(lambda x: x % 2 == 0)
        print(f"evens: {cluster.run_plan(compile_plan(evens, count_action()))}")

    # -- Table 2: workload analysis over a synthetic corpus --------------
    print("\nTable 2 (on 100k synthetic queries):")
    generator = QueryCorpusGenerator(seed=0)
    result = WorkloadAnalyzer().analyze(generator.generate(100_000))
    got = result.category_percentages()
    print(
        render_table(
            ["aggregate", "measured_pct", "paper_pct"],
            [[c, got[c], TABLE2_DISTRIBUTION[c]] for c in TABLE2_DISTRIBUTION],
        )
    )
    print(f"aggregation queries: {result.aggregation_fraction:.1%}; "
          f"partial-merge share: {result.partial_merge_fraction:.1%}")


if __name__ == "__main__":
    main()
