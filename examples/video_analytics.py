#!/usr/bin/env python
"""Video quality prediction service (§2.1 case study / Figure 9).

A streaming application consumes heartbeats from video clients, maintains
a per-session summary (event counts, buffering ratio, average bitrate)
that a prediction model would read, and must keep updating it on a tight
deadline.  Demonstrates:

* session-skewed heartbeat generation (Zipf popularity),
* the stateful session-summary pipeline on the real engine,
* elasticity: a machine is added mid-stream and picked up at the next
  group boundary (§3.3),
* the simulator's Figure 9 comparison of tail latency vs the Yahoo
  workload.

    python examples/video_analytics.py
"""

from repro.bench.figures import fig9_workload_comparison
from repro.bench.reporting import render_cdf
from repro.common.config import EngineConf, SchedulingMode
from repro.engine.cluster import LocalCluster
from repro.streaming.context import StreamingContext
from repro.streaming.sinks import IdempotentSink
from repro.streaming.sources import LogSource, RecordLog
from repro.workloads.video import VideoWorkload, attach_session_query


def main() -> None:
    conf = EngineConf(
        num_workers=2,
        slots_per_worker=2,
        scheduling_mode=SchedulingMode.DRIZZLE,
        group_size=2,
    )
    workload = VideoWorkload(num_sessions=100, seed=7)
    with LocalCluster(conf) as cluster:
        log = RecordLog(4)
        ctx = StreamingContext(cluster, LogSource(log), batch_interval_s=0.1)
        sessions = ctx.state_store("sessions")
        sink = IdempotentSink()
        attach_session_query(ctx, sessions, sink)

        # Two groups on 2 machines...
        workload.fill_log(log, 600, time_span_s=30.0)
        ctx.run_batches(4)
        print(f"after 4 batches on 2 machines: {len(sessions)} live sessions")

        # ...then scale out: the new machine participates from the next
        # group boundary onward (elasticity, §3.3).
        new_worker = cluster.add_worker()
        workload.fill_log(log, 600, time_span_s=30.0, start_time=30.0)
        ctx.run_batches(4)
        print(f"added {new_worker}; after 8 batches: {len(sessions)} sessions")

        top = sorted(sessions.items(), key=lambda kv: -kv[1].events)[:5]
        print("\nbusiest sessions (Zipf skew at work):")
        for session_id, s in top:
            print(
                f"  {session_id:12s} events={s.events:4d} "
                f"buffering={s.buffering_ratio:5.1%} "
                f"avg_bitrate={s.avg_bitrate:7.0f} kbps"
            )

        all_heartbeats = [
            record
            for p in range(log.num_partitions)
            for record in log.read(p, 0, log.end_offset(p))
        ]
        expected = workload.expected_summaries(all_heartbeats)
        total_events = sum(s.events for _sid, s in sessions.items())
        print(f"\ntotal heartbeats accounted: {total_events} (generated 1200)")
        assert total_events == 1200
        assert {sid for sid, _ in sessions.items()} == set(expected)

    print("\nFigure 9: tail-latency comparison at cluster scale (simulator):")
    series = fig9_workload_comparison(duration_s=120)
    print(render_cdf(series, title="Drizzle: Yahoo vs video analytics"))


if __name__ == "__main__":
    main()
