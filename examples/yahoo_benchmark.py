#!/usr/bin/env python
"""The Yahoo Streaming Benchmark (§5.3) end to end, three ways.

1. Micro-batch engine, *unoptimized* (groupby) data plane — the Figure 6
   configuration;
2. Micro-batch engine, *optimized* (reduceby with map-side combining,
   §3.5/§5.4) — the Figure 8 configuration;
3. The continuous-operator engine (Flink-style) with an event-time window
   operator.

All three compute per-(campaign, 10s-window) view counts over the same
generated ad-event log and must agree exactly.  Finally, the cluster
simulator projects the latency comparison to 128 machines at 20M events/s
— the scale the paper ran at.

    python examples/yahoo_benchmark.py
"""

from repro.bench.figures import yahoo_latency_cdf
from repro.bench.reporting import render_cdf
from repro.common.config import EngineConf, SchedulingMode
from repro.engine.cluster import LocalCluster
from repro.streaming.context import StreamingContext
from repro.streaming.sinks import IdempotentSink
from repro.streaming.sources import FixedBatchSource, RecordLog
from repro.workloads.yahoo import (
    YahooWorkload,
    attach_microbatch_query,
    build_continuous_job,
)

NUM_EVENTS = 2000
TIME_SPAN_S = 40.0
WINDOW_S = 10.0


def run_microbatch(workload, events, optimized):
    batches = [events[0:500], events[500:1000], events[1000:1500], events[1500:2000]]
    conf = EngineConf(
        num_workers=3,
        slots_per_worker=2,
        scheduling_mode=SchedulingMode.DRIZZLE,
        group_size=2,
        map_side_combine=optimized,
    )
    with LocalCluster(conf) as cluster:
        ctx = StreamingContext(cluster, FixedBatchSource(batches, 4), 0.1)
        store = ctx.state_store("windows")
        sink = IdempotentSink()
        attach_microbatch_query(
            ctx, workload, store, sink, window_s=WINDOW_S, optimized=optimized
        )
        ctx.run_batches(len(batches))
        return dict(store.items())


def run_continuous(workload, events):
    log = RecordLog(2)
    log.append_round_robin(events)
    sink = IdempotentSink()
    job = build_continuous_job(log, workload, sink, window_s=WINDOW_S)
    job.start()
    job.close_input_and_wait(timeout=30)
    return {(k, w): c for (k, w, c) in sink.all_records()}


def main() -> None:
    workload = YahooWorkload(num_campaigns=10, ads_per_campaign=3, seed=42)
    events = workload.generate(NUM_EVENTS, TIME_SPAN_S)
    reference = workload.expected_counts(events, WINDOW_S)

    unoptimized = run_microbatch(workload, events, optimized=False)
    optimized = run_microbatch(workload, events, optimized=True)
    continuous = run_continuous(workload, events)

    print(f"events: {NUM_EVENTS}, windows: {sorted({w for (_c, w) in reference})}")
    print("micro-batch groupby  == reference:", unoptimized == reference)
    print("micro-batch reduceby == reference:", optimized == reference)
    print("continuous (Flink)   == reference:", continuous == reference)

    top = sorted(reference.items(), key=lambda kv: -kv[1])[:5]
    print("\ntop (campaign, window) view counts:")
    for (campaign, window), count in top:
        print(f"  {campaign:12s} window {window}: {count}")

    print("\nProjecting to 128 machines / 20M events/s with the simulator")
    print("(this is the Figure 6(a) experiment; takes a few seconds)...")
    series = yahoo_latency_cdf(optimized=False, duration_s=120)
    print(render_cdf(series, title="Simulated event-latency CDF, unoptimized"))


if __name__ == "__main__":
    main()
