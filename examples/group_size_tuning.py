#!/usr/bin/env python
"""Automatic group-size tuning (§3.4) live on the real engine.

The AIMD tuner watches the fraction of group wall time spent in
centralized coordination and adjusts the group size: multiplicative
increase when overhead exceeds the upper bound, additive decrease below
the lower bound, with EWMA smoothing against transient spikes.

Here the micro-batches are tiny, so coordination dominates at group size 1
and the tuner grows the group until the overhead falls into its band.
Then we also run the simulator's cluster-resize trace (16 -> 128 -> 16
machines) to show re-convergence after environment changes.

    python examples/group_size_tuning.py
"""

from repro.bench.figures import group_tuning_trace
from repro.bench.reporting import render_table
from repro.common.config import EngineConf, SchedulingMode, TunerConf
from repro.engine.cluster import LocalCluster
from repro.streaming.context import StreamingContext
from repro.streaming.sources import FixedBatchSource


def main() -> None:
    tuner_conf = TunerConf(
        enabled=True,
        overhead_lower_bound=0.001,
        overhead_upper_bound=0.01,
        max_group_size=16,
    )
    conf = EngineConf(
        num_workers=3,
        slots_per_worker=2,
        scheduling_mode=SchedulingMode.DRIZZLE,
        group_size=1,
        tuner=tuner_conf,
    )
    num_batches = 40
    batches = [[f"w{b}-{i}" for i in range(4)] for b in range(num_batches)]
    with LocalCluster(conf) as cluster:
        ctx = StreamingContext(cluster, FixedBatchSource(batches, 4), 0.05)
        ctx.stream().map(lambda w: (w, 1)).reduce_by_key(
            lambda a, b: a + b, 2
        ).foreach_batch(lambda b, records: None)
        ctx.run_batches(num_batches)

        print("group sizes chosen per batch (real engine, AIMD):")
        print(" ", [s.group_size for s in ctx.batch_stats])
        tuner = cluster.driver.tuner
        assert tuner is not None
        print(f"final group size: {tuner.group_size}")
        print(f"smoothed overhead: {tuner.smoothed_overhead:.4f} "
              f"(bounds [{tuner_conf.overhead_lower_bound}, "
              f"{tuner_conf.overhead_upper_bound}])")
        actions = [d.action for d in tuner.history]
        print(f"tuner actions: increase={actions.count('increase')} "
              f"decrease={actions.count('decrease')} hold={actions.count('hold')}")

    print("\nsimulated cluster-resize trace (16 -> 128 -> 16 machines):")
    rows = group_tuning_trace()
    sampled = [rows[i] for i in (0, 20, 79, 90, 120, 159, 170, 200, 239)]
    print(
        render_table(
            ["step", "machines", "group_size", "smoothed_overhead", "action"],
            [[r["step"], r["machines"], r["group_size"], r["overhead"], r["action"]]
             for r in sampled],
        )
    )


if __name__ == "__main__":
    main()
