#!/usr/bin/env python
"""Live autoscaling with stateful key-range migration (§3.3).

A streaming wordcount rides out a 3x load spike: the elastic controller
scales the cluster out at a group boundary, migrates the state store's
key-range shards to the new machines over the ordinary transport, and
scales back in when the spike passes — and the final counts are
*byte-identical* to a run on a fixed-size cluster, because a resize moves
state instead of dropping it.

    python examples/elastic_scaling.py
"""

from repro.common.config import ElasticConf, EngineConf
from repro.common.metrics import (
    COUNT_MIGRATION_KEYS_MOVED,
    COUNT_MIGRATION_SHARDS_MOVED,
)
from repro.elastic import ElasticController, ScheduleScalingPolicy
from repro.engine.cluster import LocalCluster
from repro.streaming.context import StreamingContext
from repro.streaming.sources import FixedBatchSource

WORDS = "the quick brown fox jumps over the lazy dog again and again".split()
NUM_BATCHES = 12


def make_batches():
    batches = [
        [WORDS[(i + j) % len(WORDS)] for j in range(6)] for i in range(NUM_BATCHES)
    ]
    for i in range(4, 8):  # the spike: triple traffic mid-stream
        batches[i] = batches[i] * 3
    return batches


def run(schedule):
    """Streaming wordcount; ``schedule`` maps group boundary -> resize."""
    conf = EngineConf(
        num_workers=2,
        group_size=2,
        elastic=ElasticConf(enabled=False, shards_per_worker=2),
    )
    with LocalCluster(conf) as cluster:
        ctx = StreamingContext(cluster, FixedBatchSource(make_batches(), 4), 0.05)
        controller = None
        partitioner = None
        if schedule is not None:
            controller = ElasticController(
                cluster, policy=ScheduleScalingPolicy(schedule), batch_interval_s=0.05
            )
            ctx.set_elasticity(controller)
            # The provider re-resolves the shard layout every batch, so
            # post-resize groups hash with the flipped epoch.
            partitioner = ctx.shard_partitioner("counts")
        store = ctx.state_store("counts")
        (
            ctx.stream()
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda a, b: a + b, 4, partitioner=partitioner)
            .update_state(store, merge=lambda a, b: a + b)
        )
        ctx.run_batches(NUM_BATCHES)
        counts = sorted(store.items())
        snap = cluster.metrics.counters_snapshot()
        # Drained machines linger as processes but receive no placements.
        sizes = len(cluster.driver.placement_workers())
    return counts, snap, controller, sizes


def main() -> None:
    fixed, _, _, _ = run(None)

    # Scale out by 2 when the spike lands, back in when it passes.
    elastic, snap, controller, final_size = run({1: +2, 4: -2})

    print("resize plans applied at group boundaries:")
    for plan in controller.plans:
        what = ", ".join(plan.added) if plan.added else ", ".join(plan.removed)
        print(f"  delta={plan.delta:+d} [{what}] ({plan.reason})")
    print(
        f"shards migrated: {int(snap[COUNT_MIGRATION_SHARDS_MOVED])} "
        f"({int(snap[COUNT_MIGRATION_KEYS_MOVED])} keys shipped)"
    )
    print("final cluster size:", final_size)
    print("counts identical to fixed-size run:", elastic == fixed)


if __name__ == "__main__":
    main()
