#!/usr/bin/env python
"""A cluster whose driver and workers talk over real TCP sockets.

Selects the ``repro.net`` transport (``TransportConf(backend="tcp")``),
so every launch RPC, shuffle fetch, and completion report is framed,
serialized, and pushed through a loopback socket — then:

* runs a two-stage shuffle job and verifies the result is identical to
  the in-process transport (the backend is plumbing, not policy),
* prints the wire-level counters (`net.bytes_*`) and the per-method
  round-trip percentiles from the `net.call_latency.*` histograms,
* kills a worker's socket server mid-job and shows §3.3 recovery riding
  on connection-refused/reset instead of a simulated flag.

    python examples/network_cluster.py
"""

import threading

from repro.common.config import EngineConf, MonitorConf, SchedulingMode, TransportConf
from repro.common.metrics import (
    COUNT_NET_BYTES_RECEIVED,
    COUNT_NET_BYTES_SENT,
    COUNT_RECOVERIES,
    COUNT_RPC_MESSAGES,
    HIST_NET_CALL_LATENCY,
)
from repro.dag.dataset import parallelize
from repro.engine.cluster import LocalCluster


def keyed_sum(cluster, items=60, keys=4):
    ds = (
        parallelize(range(items), 6)
        .map(lambda x: (x % keys, x))
        .reduce_by_key(lambda a, b: a + b, 2)
    )
    return dict(cluster.collect(ds))


def expected(items=60, keys=4):
    out = {}
    for x in range(items):
        out[x % keys] = out.get(x % keys, 0) + x
    return out


def main() -> None:
    conf = EngineConf(
        num_workers=3,
        slots_per_worker=2,
        scheduling_mode=SchedulingMode.DRIZZLE,
        group_size=3,
        transport=TransportConf(backend="tcp"),
    )
    with LocalCluster(conf) as cluster:
        print("transport:", cluster.conf.transport.backend)
        print("driver hub:", f"{cluster.transport.address[0]}:<port>")
        result = keyed_sum(cluster)
        print("shuffle result over tcp == reference:", result == expected())

        counters = cluster.metrics.counters_snapshot()
        print(f"engine messages: {counters[COUNT_RPC_MESSAGES]:.0f}")
        print(
            "bytes on wire:",
            f"{counters[COUNT_NET_BYTES_SENT]:.0f} sent /",
            f"{counters[COUNT_NET_BYTES_RECEIVED]:.0f} received",
        )
        snap = cluster.metrics.snapshot()["histograms"]
        for name in sorted(snap):
            if name.startswith(HIST_NET_CALL_LATENCY + ".") and snap[name]["count"]:
                print(
                    f"  {name:35s} n={snap[name]['count']:<4.0f} "
                    f"p50={snap[name]['p50'] * 1e3:6.2f}ms "
                    f"p95={snap[name]['p95'] * 1e3:6.2f}ms"
                )

    # Crash a worker's socket server mid-job: the driver's heartbeat
    # monitor sees WorkerLost from the dead socket and §3.3 recovery
    # recomputes the lost partitions — same driver code as inproc.
    conf = EngineConf(
        num_workers=3,
        slots_per_worker=2,
        scheduling_mode=SchedulingMode.DRIZZLE,
        monitor=MonitorConf(
            enable_heartbeats=True,
            heartbeat_interval_s=0.05,
            heartbeat_timeout_s=0.2,
        ),
        transport=TransportConf(backend="tcp", max_retries=1, retry_backoff_s=0.01),
    )
    with LocalCluster(conf) as cluster:
        killer = threading.Timer(
            0.05, lambda: cluster.kill_worker("worker-1", notify_driver=False)
        )
        killer.start()
        ds = (
            parallelize(range(60), 6)
            .map(lambda x: (__import__("time").sleep(0.05), x)[1])
            .map(lambda x: (x % 4, x))
            .reduce_by_key(lambda a, b: a + b, 2)
        )
        result = dict(cluster.collect(ds))
        killer.join()
        recoveries = cluster.metrics.counters_snapshot().get(COUNT_RECOVERIES, 0.0)
        print("\nkilled worker-1's socket server mid-job (no notification)")
        print("result exact after tcp worker loss:", result == expected())
        print(f"recoveries: {recoveries:.0f}")


if __name__ == "__main__":
    main()
