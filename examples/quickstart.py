#!/usr/bin/env python
"""Quickstart: streaming word count with Drizzle-style group scheduling.

Runs a real in-process cluster (3 workers x 2 slots), streams words
through micro-batches in groups of 3, maintains running counts in a
checkpointed state store, and demonstrates exactly-once recovery by
deliberately corrupting the state and replaying from the last checkpoint.

    python examples/quickstart.py
"""

from repro.common.config import EngineConf, SchedulingMode
from repro.engine.cluster import LocalCluster
from repro.streaming.context import StreamingContext
from repro.streaming.sinks import IdempotentSink
from repro.streaming.sources import LogSource, RecordLog


def main() -> None:
    conf = EngineConf(
        num_workers=3,
        slots_per_worker=2,
        scheduling_mode=SchedulingMode.DRIZZLE,
        group_size=3,  # schedule 3 micro-batches per coordination round
    )
    with LocalCluster(conf) as cluster:
        log = RecordLog(num_partitions=4)
        ctx = StreamingContext(cluster, LogSource(log), batch_interval_s=0.1)

        counts = ctx.state_store("word_counts")
        sink = IdempotentSink()

        # Per-batch: tokenize -> (word, 1) -> reduce (with map-side
        # combining, §3.5); then merge into the running state.
        stream = (
            ctx.stream()
            .flat_map(str.split)
            .map(lambda word: (word, 1))
            .reduce_by_key(lambda a, b: a + b, num_partitions=3)
        )
        stream.update_state(counts, merge=lambda a, b: a + b)
        stream.sink_to(sink)

        sentences = [
            "the quick brown fox jumps over the lazy dog",
            "the dog barks",
            "a quick dog",
        ]
        for round_index in range(3):
            log.append_round_robin(sentences)
            ctx.run_batches(3)  # one group; checkpoint at the boundary

        print("word counts after 9 micro-batches:")
        for word, count in sorted(counts.items()):
            print(f"  {word:6s} {count}")

        # --- recovery demo -------------------------------------------
        before = dict(counts.items())
        counts.restore({"CORRUPTED": 1})  # simulate losing the state
        replayed = ctx.restore_and_replay()
        after = dict(counts.items())
        print(f"\nrecovered from checkpoint, replayed {replayed} batches")
        print("state identical after recovery:", after == before)
        print("sink committed batches:", sink.committed_batches())
        print("duplicate commits suppressed:", sink.duplicate_commits)

        # Coordination amortization at a glance:
        snap = cluster.metrics.counters_snapshot()
        print(f"\ndriver launch RPCs: {snap.get('count.launch_rpcs', 0):.0f} "
              f"(vs one per task per stage without group scheduling)")


if __name__ == "__main__":
    main()
