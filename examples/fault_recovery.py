#!/usr/bin/env python
"""Fault-tolerance comparison (§3.3 vs §2.2, the Figure 7 story) on the
REAL engines.

Scenario A — micro-batch (Drizzle): a machine is crashed mid-stream; the
driver detects it by heartbeat timeout, re-places lost tasks on surviving
machines with pre-populated dependencies, and the stream's results are
still exactly correct.

Scenario B — continuous operators (Flink-style): a single operator
instance is killed; the ENTIRE topology is stopped, rolled back to the
last aligned checkpoint, and replayed — the whole-cluster disruption the
paper measures.  The two-phase-commit sink still yields exactly-once.

Finally the simulator replays the paper's Figure 7 at 128 machines.

    python examples/fault_recovery.py
"""

import threading
import time

from repro.bench.figures import fig7_fault_tolerance
from repro.bench.reporting import render_table
from repro.common.config import EngineConf, MonitorConf, SchedulingMode
from repro.engine.cluster import LocalCluster
from repro.streaming.context import StreamingContext
from repro.streaming.sinks import IdempotentSink
from repro.streaming.sources import FixedBatchSource, RecordLog
from repro.workloads.yahoo import YahooWorkload, build_continuous_job


def microbatch_scenario() -> None:
    print("=== Scenario A: micro-batch engine, machine crash mid-stream ===")
    conf = EngineConf(
        num_workers=4,
        slots_per_worker=1,
        scheduling_mode=SchedulingMode.DRIZZLE,
        group_size=3,
        monitor=MonitorConf(
            enable_heartbeats=True,
            heartbeat_interval_s=0.03,
            heartbeat_timeout_s=0.12,
        ),
    )
    words = ["fox", "dog", "cat", "fox", "dog", "fox"]
    batches = [[words[(b + i) % 6] for i in range(60)] for b in range(6)]
    expected = {}
    for batch in batches:
        for w in batch:
            expected[w] = expected.get(w, 0) + 1

    with LocalCluster(conf) as cluster:
        ctx = StreamingContext(cluster, FixedBatchSource(batches, 4), 0.05)
        counts = ctx.state_store("counts")
        ctx.stream().map(lambda w: (w, 1)).reduce_by_key(
            lambda a, b: a + b, 3
        ).update_state(counts, merge=lambda a, b: a + b)

        # Crash a machine silently: only heartbeats reveal it.
        killer = threading.Timer(
            0.05, lambda: cluster.kill_worker("worker-2", notify_driver=False)
        )
        killer.start()
        ctx.run_batches(6)
        recoveries = cluster.metrics.counters_snapshot().get("count.recoveries", 0)
        print(f"  recoveries triggered: {recoveries:.0f}")
        print(f"  results exact after crash: {dict(counts.items()) == expected}")
        print(f"  survivors: {cluster.alive_workers()}")


def continuous_scenario() -> None:
    print("\n=== Scenario B: continuous engine, operator crash ===")
    workload = YahooWorkload(num_campaigns=6, ads_per_campaign=2, seed=3)
    log = RecordLog(2)
    workload.fill_log(log, 1000, time_span_s=40.0)
    sink = IdempotentSink()
    job = build_continuous_job(log, workload, sink, window_s=10.0)
    job.start()
    time.sleep(0.1)
    job.trigger_checkpoint()
    time.sleep(0.1)
    job.kill_operator_instance("window", 0)  # stop-the-world rollback
    job.close_input_and_wait(timeout=30)
    reference = workload.expected_counts(
        [r for p in range(2) for r in log.read(p, 0, log.end_offset(p))], 10.0
    )
    produced = {(k, w): c for (k, w, c) in sink.all_records()}
    print(f"  recoveries (whole-topology restarts): {job.recoveries}")
    print(f"  completed checkpoints before crash:   {job.completed_checkpoints()}")
    print(f"  exactly-once output after rollback:   {produced == reference}")


def simulated_figure7() -> None:
    print("\n=== Figure 7 at 128 machines (simulator) ===")
    results = fig7_fault_tolerance(duration_s=350)
    print(
        render_table(
            ["system", "normal_median_ms", "spike_s", "windows_disrupted",
             "recovery_time_s"],
            [
                [r.system, r.normal_median_s * 1e3, r.spike_s,
                 r.windows_disrupted, r.recovery_time_s]
                for r in results
            ],
        )
    )


def main() -> None:
    microbatch_scenario()
    continuous_scenario()
    simulated_figure7()


if __name__ == "__main__":
    main()
