#!/usr/bin/env python
"""Adaptive streaming: the §3.3/§3.5 adaptation machinery working together.

* **Sliding windows** — reduceByKeyAndWindow-style aggregation over the
  last N micro-batches;
* **Cross-batch re-optimization** (§3.5) — per-batch cardinality metrics
  feed a reducer-count optimizer whose recommendation takes effect at the
  next group boundary;
* **Elastic scaling** (§3.3) — a utilization policy adds machines when
  batches run hot and drains them when idle, applied only between groups.

    python examples/adaptive_streaming.py
"""

from repro.common.config import EngineConf, SchedulingMode
from repro.engine.cluster import LocalCluster
from repro.streaming.context import StreamingContext
from repro.streaming.elasticity import ElasticityController, UtilizationScalingPolicy
from repro.streaming.reoptimizer import (
    ReducerCountOptimizer,
    adaptive_reduce_by_key,
    attach_adaptive_output,
)
from repro.streaming.sinks import IdempotentSink
from repro.streaming.sliding import attach_sliding_window
from repro.streaming.sources import FixedBatchSource

NUM_BATCHES = 8


def main() -> None:
    # Batches 0-3 are small (20 keys); batches 4-7 explode to 600 keys —
    # the data-distribution change §3.5 re-optimizes for.
    batches = []
    for b in range(NUM_BATCHES):
        keys = 20 if b < 4 else 600
        batches.append([(f"key-{i}", 1) for i in range(keys)])

    conf = EngineConf(
        num_workers=2,
        slots_per_worker=2,
        scheduling_mode=SchedulingMode.DRIZZLE,
        group_size=2,
    )
    with LocalCluster(conf) as cluster:
        ctx = StreamingContext(cluster, FixedBatchSource(batches, 4), 0.05)

        # --- adaptive keyed reduction (§3.5) ---------------------------
        optimizer = ReducerCountOptimizer(
            target_records_per_reducer=100, initial_reducers=1, max_reducers=8
        )
        adapted = adaptive_reduce_by_key(ctx.stream(), lambda a, b: a + b, optimizer)
        cardinalities = {}
        attach_adaptive_output(
            adapted, optimizer,
            lambda b, records: cardinalities.update({b: len(records)}),
        )

        # --- sliding window over the last 3 batches --------------------
        window_sink = IdempotentSink()
        window_store = ctx.state_store("sliding")
        attach_sliding_window(
            ctx.stream().reduce_by_key(lambda a, b: a + b, 2),
            window_store, window=3, slide=1,
            merge=lambda a, b: a + b, sink=window_sink,
        )

        # --- elastic scaling (§3.3) -------------------------------------
        controller = ElasticityController(
            cluster,
            UtilizationScalingPolicy(
                batch_interval_s=0.05,
                scale_up_threshold=0.8,
                scale_down_threshold=0.05,
                min_workers=2,
                max_workers=6,
            ),
        )
        ctx.set_elasticity(controller)

        ctx.run_batches(NUM_BATCHES)

        print("per-batch output cardinality:", cardinalities)
        print("reducer recommendations over time:",
              [d.new_reducers for d in optimizer.history])
        print(f"final reducer count: {optimizer.current_reducers} "
              f"(started at 1; data grew 30x mid-stream)")

        last_window = dict(window_sink.records_for(NUM_BATCHES - 1))
        print(f"\nsliding window over batches 5-7: {len(last_window)} keys, "
              f"total count {sum(last_window.values())}")

        print("\nelasticity decisions at group boundaries:")
        for i, d in enumerate(controller.decisions):
            print(f"  group {i}: delta={d.delta_workers:+d} ({d.reason})")
        print("final cluster size:", len(cluster.alive_workers()))


if __name__ == "__main__":
    main()
