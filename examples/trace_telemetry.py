#!/usr/bin/env python
"""End-to-end tracing: record a traced streaming run, export it for
Perfetto, and print the per-phase latency breakdown from real spans.

Runs the quickstart word-count workload with ``TracingConf(enabled=True)``,
so every micro-batch becomes one span tree — driver-side scheduling and
launch-RPC windows, worker-side fetch/compute/report spans, checkpoints —
then:

* writes a Chrome/Perfetto ``trace_event`` JSON (open in ui.perfetto.dev),
* prints the Fig. 4b-style scheduling/transfer/compute decomposition per
  batch and per worker via the ``repro.obs`` analyzer,
* cross-checks span totals against the MetricsRegistry counters.

    python examples/trace_telemetry.py
"""

import os
import tempfile

from repro.common.config import EngineConf, SchedulingMode, TracingConf
from repro.common.metrics import TIME_COMPUTE, TIME_SCHEDULING, TIME_TASK_TRANSFER
from repro.engine.cluster import LocalCluster
from repro.obs import load_trace, phase_totals, summarize
from repro.streaming.context import StreamingContext
from repro.streaming.sinks import IdempotentSink
from repro.streaming.sources import LogSource, RecordLog


def main() -> None:
    conf = EngineConf(
        num_workers=3,
        slots_per_worker=2,
        scheduling_mode=SchedulingMode.DRIZZLE,
        group_size=3,
        tracing=TracingConf(enabled=True),
    )
    with LocalCluster(conf) as cluster:
        log = RecordLog(num_partitions=4)
        ctx = StreamingContext(cluster, LogSource(log), batch_interval_s=0.1)
        counts = ctx.state_store("word_counts")
        stream = (
            ctx.stream()
            .flat_map(str.split)
            .map(lambda word: (word, 1))
            .reduce_by_key(lambda a, b: a + b, num_partitions=3)
        )
        stream.update_state(counts, merge=lambda a, b: a + b)
        stream.sink_to(IdempotentSink())

        sentences = [
            "the quick brown fox jumps over the lazy dog",
            "the dog barks",
            "a quick dog",
        ]
        for _ in range(2):
            log.append_round_robin(sentences)
            ctx.run_batches(3)

        out = os.path.join(tempfile.mkdtemp(prefix="repro-trace-"), "trace.json")
        n = cluster.export_trace(out, fmt="perfetto")
        print(f"exported {n} span events to {out}")
        print("(open in https://ui.perfetto.dev or chrome://tracing)\n")

        events = load_trace(out)
        print(summarize(events))

        # Span windows share timestamps with the counter adds, so the
        # trace-derived totals agree with the aggregate metrics.
        totals = phase_totals(events)
        counters = cluster.metrics.counters_snapshot()
        pairs = [
            ("task.schedule", TIME_SCHEDULING),
            ("task.launch_rpc", TIME_TASK_TRANSFER),
            ("task.compute", TIME_COMPUTE),
        ]
        agree = True
        for span_name, metric in pairs:
            counter = counters.get(metric, 0.0)
            span_total = totals.get(span_name, 0.0)
            close = abs(span_total - counter) <= 0.05 * max(counter, 1e-9)
            agree = agree and close
            print(
                f"{span_name:16s} spans {span_total * 1e3:8.2f} ms | "
                f"{metric:20s} {counter * 1e3:8.2f} ms"
            )
        print("span totals agree with counters:", agree)


if __name__ == "__main__":
    main()
