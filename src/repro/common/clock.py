"""Clock abstractions.

Every component that needs the current time takes a :class:`Clock` so that
tests and the discrete-event simulator can control time deterministically.
Times are floats in seconds, matching ``time.monotonic``.
"""

from __future__ import annotations

import threading
import time


class Clock:
    """Interface: a monotonically non-decreasing source of time."""

    def now(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class WallClock(Clock):
    """Real time, backed by ``time.monotonic``."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class ManualClock(Clock):
    """A clock advanced explicitly by the test or simulator.

    ``sleep`` blocks the calling thread until another thread advances the
    clock far enough, which lets threaded components (e.g. the streaming
    job generator) be driven deterministically from tests.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._cond = threading.Condition()

    def now(self) -> float:
        with self._cond:
            return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot move a clock backwards")
        with self._cond:
            self._now += seconds
            self._cond.notify_all()

    def set_time(self, when: float) -> None:
        with self._cond:
            if when < self._now:
                raise ValueError("cannot move a clock backwards")
            self._now = when
            self._cond.notify_all()

    def sleep(self, seconds: float) -> None:
        with self._cond:
            deadline = self._now + seconds
            while self._now < deadline:
                self._cond.wait(timeout=1.0)
