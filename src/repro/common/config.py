"""Engine configuration.

One dataclass carries every knob; subsystem constructors take the whole
config so benchmarks can sweep a single object.  Validation happens once,
eagerly, in ``validate`` (called by the cluster constructors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.common.errors import ConfigError


class SchedulingMode(Enum):
    """Control-plane variants compared in the paper.

    * ``PER_BATCH`` — the Spark baseline: each micro-batch is scheduled
      independently, with a driver barrier between stages (Figure 1).
    * ``PRE_SCHEDULED`` — pre-scheduling only (group size 1): the
      intra-batch barrier is removed but batches are still scheduled one
      at a time (the "Only Pre-Scheduling" line of Figure 5(b)).
    * ``DRIZZLE`` — group scheduling + pre-scheduling (§3.1, §3.2).
    * ``PIPELINED`` — the §3.6 design alternative: scheduling of batch
      *i+1* overlaps execution of batch *i*; cost max(t_exec, t_sched).
    """

    PER_BATCH = "per_batch"
    PRE_SCHEDULED = "pre_scheduled"
    DRIZZLE = "drizzle"
    PIPELINED = "pipelined"


@dataclass
class TunerConf:
    """AIMD group-size tuner settings (§3.4)."""

    enabled: bool = False
    overhead_lower_bound: float = 0.05
    overhead_upper_bound: float = 0.20
    increase_factor: float = 2.0
    decrease_step: int = 2
    min_group_size: int = 1
    max_group_size: int = 1000
    ewma_alpha: float = 0.5

    def validate(self) -> None:
        if not 0.0 <= self.overhead_lower_bound < self.overhead_upper_bound <= 1.0:
            raise ConfigError(
                "tuner bounds must satisfy 0 <= lower < upper <= 1, got "
                f"[{self.overhead_lower_bound}, {self.overhead_upper_bound}]"
            )
        if self.increase_factor <= 1.0:
            raise ConfigError("increase_factor must be > 1")
        if self.decrease_step < 1:
            raise ConfigError("decrease_step must be >= 1")
        if not 1 <= self.min_group_size <= self.max_group_size:
            raise ConfigError(
                f"need 1 <= min_group_size <= max_group_size, got "
                f"[{self.min_group_size}, {self.max_group_size}]"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigError("ewma_alpha must be in (0, 1]")


@dataclass
class TracingConf:
    """End-to-end tracing (``repro.obs``).

    Off by default: when disabled every component holds the shared no-op
    recorder, so the instrumented paths cost one attribute access.  When
    enabled, the cluster wires one :class:`repro.obs.trace.TraceRecorder`
    through the driver, transport, and workers; spans are kept in memory
    (bounded by ``max_events``) and exported on demand.
    """

    enabled: bool = False
    # Upper bound on retained span events; overflow is counted, not kept.
    max_events: int = 200_000

    def validate(self) -> None:
        if self.max_events < 1:
            raise ConfigError("tracing max_events must be >= 1")


@dataclass
class SpeculationConf:
    """Speculative execution (straggler mitigation).

    Stragglers "can slow down jobs by 6-8x" (§1); the BSP substrate
    mitigates them by launching a second copy of any task that has been
    running far longer than its stage's median — first finisher wins
    (tasks are deterministic, so duplicates are harmless).
    """

    enabled: bool = False
    check_interval_s: float = 0.05
    # A task is a straggler once it runs longer than
    # max(min_runtime_s, multiplier * median completed duration).
    multiplier: float = 3.0
    min_runtime_s: float = 0.1
    # Only speculate once this fraction of the stage has finished (we need
    # a meaningful median).
    min_completed_fraction: float = 0.5

    def validate(self) -> None:
        if self.check_interval_s <= 0:
            raise ConfigError("check_interval_s must be positive")
        if self.multiplier <= 1.0:
            raise ConfigError("multiplier must be > 1")
        if self.min_runtime_s < 0:
            raise ConfigError("min_runtime_s must be >= 0")
        if not 0.0 < self.min_completed_fraction <= 1.0:
            raise ConfigError("min_completed_fraction must be in (0, 1]")


@dataclass
class EngineConf:
    """Configuration for the threaded BSP engine and the simulator."""

    num_workers: int = 4
    slots_per_worker: int = 4
    scheduling_mode: SchedulingMode = SchedulingMode.DRIZZLE
    group_size: int = 10
    # Checkpoint every N micro-batches; group boundaries are the natural
    # choice (§3.3), so this defaults to 0 meaning "at group boundaries".
    checkpoint_interval_batches: int = 0
    heartbeat_interval_s: float = 0.05
    heartbeat_timeout_s: float = 0.25
    # Map-side partial aggregation (§3.5) for reduce_by_key.
    map_side_combine: bool = True
    # Reuse map outputs from earlier micro-batches during recovery (§3.3).
    reuse_intermediate_on_recovery: bool = True
    tuner: TunerConf = field(default_factory=TunerConf)
    speculation: SpeculationConf = field(default_factory=SpeculationConf)
    tracing: TracingConf = field(default_factory=TracingConf)
    # Deterministic seed used by hash partitioners and workload generators.
    seed: int = 0

    def validate(self) -> None:
        if self.num_workers < 1:
            raise ConfigError("num_workers must be >= 1")
        if self.slots_per_worker < 1:
            raise ConfigError("slots_per_worker must be >= 1")
        if self.group_size < 1:
            raise ConfigError("group_size must be >= 1")
        if self.checkpoint_interval_batches < 0:
            raise ConfigError("checkpoint_interval_batches must be >= 0")
        if self.heartbeat_interval_s <= 0 or self.heartbeat_timeout_s <= 0:
            raise ConfigError("heartbeat intervals must be positive")
        if self.heartbeat_timeout_s < self.heartbeat_interval_s:
            raise ConfigError("heartbeat_timeout_s must be >= heartbeat_interval_s")
        self.tuner.validate()
        self.speculation.validate()
        self.tracing.validate()
        if (
            self.scheduling_mode is SchedulingMode.PER_BATCH
            and self.group_size != 1
            and not self.tuner.enabled
        ):
            # Per-batch mode is definitionally group size 1; normalize so
            # metrics comparisons are honest.
            self.group_size = 1

    @property
    def total_slots(self) -> int:
        return self.num_workers * self.slots_per_worker

    def effective_checkpoint_interval(self) -> int:
        """Micro-batches between checkpoints (group boundary by default)."""
        if self.checkpoint_interval_batches > 0:
            return self.checkpoint_interval_batches
        return self.group_size
