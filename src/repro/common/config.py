"""Engine configuration.

One dataclass carries every knob; subsystem constructors take the whole
config so benchmarks can sweep a single object.  Validation happens once,
eagerly, in ``validate`` (called by the cluster constructors).
"""

from __future__ import annotations

import os
import warnings
from dataclasses import MISSING as _MISSING
from dataclasses import dataclass, field, fields, is_dataclass
from enum import Enum
from typing import Any, Dict, Optional

from repro.common.errors import ConfigError


class SchedulingMode(Enum):
    """Control-plane variants compared in the paper.

    * ``PER_BATCH`` — the Spark baseline: each micro-batch is scheduled
      independently, with a driver barrier between stages (Figure 1).
    * ``PRE_SCHEDULED`` — pre-scheduling only (group size 1): the
      intra-batch barrier is removed but batches are still scheduled one
      at a time (the "Only Pre-Scheduling" line of Figure 5(b)).
    * ``DRIZZLE`` — group scheduling + pre-scheduling (§3.1, §3.2).
    * ``PIPELINED`` — the §3.6 design alternative: scheduling of batch
      *i+1* overlaps execution of batch *i*; cost max(t_exec, t_sched).
    """

    PER_BATCH = "per_batch"
    PRE_SCHEDULED = "pre_scheduled"
    DRIZZLE = "drizzle"
    PIPELINED = "pipelined"


@dataclass
class TunerConf:
    """AIMD group-size tuner settings (§3.4)."""

    enabled: bool = False
    overhead_lower_bound: float = 0.05
    overhead_upper_bound: float = 0.20
    increase_factor: float = 2.0
    decrease_step: int = 2
    min_group_size: int = 1
    max_group_size: int = 1000
    ewma_alpha: float = 0.5

    def validate(self) -> None:
        if not 0.0 <= self.overhead_lower_bound < self.overhead_upper_bound <= 1.0:
            raise ConfigError(
                "tuner bounds must satisfy 0 <= lower < upper <= 1, got "
                f"[{self.overhead_lower_bound}, {self.overhead_upper_bound}]"
            )
        if self.increase_factor <= 1.0:
            raise ConfigError("increase_factor must be > 1")
        if self.decrease_step < 1:
            raise ConfigError("decrease_step must be >= 1")
        if not 1 <= self.min_group_size <= self.max_group_size:
            raise ConfigError(
                f"need 1 <= min_group_size <= max_group_size, got "
                f"[{self.min_group_size}, {self.max_group_size}]"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigError("ewma_alpha must be in (0, 1]")


@dataclass
class TracingConf:
    """End-to-end tracing (``repro.obs``).

    Off by default: when disabled every component holds the shared no-op
    recorder, so the instrumented paths cost one attribute access.  When
    enabled, the cluster wires one :class:`repro.obs.trace.TraceRecorder`
    through the driver, transport, and workers; spans are kept in memory
    (bounded by ``max_events``) and exported on demand.
    """

    enabled: bool = False
    # Upper bound on retained span events; overflow is counted, not kept.
    max_events: int = 200_000

    def validate(self) -> None:
        if self.max_events < 1:
            raise ConfigError("tracing max_events must be >= 1")


@dataclass
class SpeculationConf:
    """Speculative execution (straggler mitigation).

    Stragglers "can slow down jobs by 6-8x" (§1); the BSP substrate
    mitigates them by launching a second copy of any task that has been
    running far longer than its stage's median — first finisher wins
    (tasks are deterministic, so duplicates are harmless).
    """

    enabled: bool = False
    check_interval_s: float = 0.05
    # A task is a straggler once it runs longer than
    # max(min_runtime_s, multiplier * median completed duration).
    multiplier: float = 3.0
    min_runtime_s: float = 0.1
    # Only speculate once this fraction of the stage has finished (we need
    # a meaningful median).
    min_completed_fraction: float = 0.5

    def validate(self) -> None:
        if self.check_interval_s <= 0:
            raise ConfigError("check_interval_s must be positive")
        if self.multiplier <= 1.0:
            raise ConfigError("multiplier must be > 1")
        if self.min_runtime_s < 0:
            raise ConfigError("min_runtime_s must be >= 0")
        if not 0.0 < self.min_completed_fraction <= 1.0:
            raise ConfigError("min_completed_fraction must be in (0, 1]")


EXECUTOR_BACKENDS = ("inline", "thread", "process")


def _default_backend() -> str:
    # CI matrices force a backend for a whole pytest run via the
    # environment instead of editing every EngineConf construction.
    return os.environ.get("REPRO_EXECUTOR_BACKEND", "thread")


@dataclass
class ExecutorConf:
    """How each worker runs its task slots (see ``docs/executors.md``).

    * ``inline`` — tasks run synchronously in the submitting thread:
      deterministic scheduling, ideal for tests and sim calibration.
    * ``thread`` — a thread pool per worker (the default): cheap, shares
      the GIL, fine for I/O-bound or tiny tasks.
    * ``process`` — a spawn-safe ``multiprocessing`` pool per worker:
      task closures cross the boundary as pickled bytes
      (:mod:`repro.dag.serde`), CPU-bound user code gets true
      multi-core parallelism.
    """

    backend: str = field(default_factory=_default_backend)
    # Start method for the process backend; "spawn" is the only one that
    # is safe with the engine's own threads in the parent.
    start_method: str = "spawn"

    def validate(self) -> None:
        if self.backend not in EXECUTOR_BACKENDS:
            raise ConfigError(
                f"executor backend must be one of {EXECUTOR_BACKENDS}, "
                f"got {self.backend!r}"
            )
        if self.start_method not in ("spawn", "fork", "forkserver"):
            raise ConfigError(
                f"executor start_method must be spawn/fork/forkserver, "
                f"got {self.start_method!r}"
            )


TRANSPORT_BACKENDS = ("inproc", "tcp")

COMPRESSION_MODES = ("off", "auto", "on")


def _default_transport_backend() -> str:
    # CI matrices force a transport for a whole pytest run via the
    # environment, mirroring REPRO_EXECUTOR_BACKEND.
    return os.environ.get("REPRO_TRANSPORT", "inproc")


def _default_compression() -> str:
    # CI forces the compressed wire format for a whole pytest run the same
    # way it forces the transport backend.
    return os.environ.get("REPRO_NET_COMPRESSION", "auto")


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "on", "yes")


def _default_record_blocks() -> bool:
    # REPRO_RECORD_BLOCKS=1 turns on columnar record blocks for a whole
    # pytest or bench run, mirroring REPRO_TEMPLATES / REPRO_TRANSPORT.
    return _env_flag("REPRO_RECORD_BLOCKS")


def _default_shm_shuffle() -> bool:
    # REPRO_SHM_SHUFFLE=1 arms the shared-memory shuffle fast path.
    return _env_flag("REPRO_SHM_SHUFFLE")


def _default_async_io() -> bool:
    # REPRO_NET_ASYNC=1 swaps the thread-per-connection MessageServer for
    # the asyncio event-loop server (repro.net.aio).
    return _env_flag("REPRO_NET_ASYNC")


@dataclass
class DataPlaneConf:
    """Wire-level data-plane knobs (see "Data plane" in
    ``docs/networking.md``).

    These govern the fast path for bulk payloads on the tcp transport:
    batched shuffle fetches, content-addressed stage-blob caching on the
    launch path, and per-frame payload compression.
    """

    # Concurrent per-peer fetch_buckets RPCs a reduce task may have in
    # flight (1 = sequential, the pre-fast-path behavior).
    max_concurrent_fetches: int = 8
    # "off" never compresses; "auto" compresses payloads at or above
    # compress_threshold_bytes (and keeps the result only if smaller);
    # "on" tries every payload — CI uses it to exercise the compressed
    # frames on small test traffic.
    compression: str = field(default_factory=_default_compression)
    compress_threshold_bytes: int = 4096
    # Serialized stage closures cached per transport, keyed by content
    # digest; 0 disables the cache and ships full plans in every launch.
    stage_blob_cache_entries: int = 64
    # Columnar record blocks (repro.data.blocks): shuffle buckets whose
    # keys/values are uniform ints/floats travel and aggregate as typed
    # arrays instead of List[tuple] — zero pickle on the fast shape.
    record_blocks: bool = field(default_factory=_default_record_blocks)
    # Shared-memory shuffle (repro.data.shm): co-located peers read map
    # outputs from multiprocessing.shared_memory segments instead of a
    # fetch_buckets RPC, falling back to the wire transparently.
    shm_shuffle: bool = field(default_factory=_default_shm_shuffle)
    # Event-loop server (repro.net.aio): one asyncio loop thread per
    # transport instead of a thread per accepted connection.
    async_io: bool = field(default_factory=_default_async_io)

    def validate(self) -> None:
        if self.max_concurrent_fetches < 1:
            raise ConfigError("max_concurrent_fetches must be >= 1")
        if self.compression not in COMPRESSION_MODES:
            raise ConfigError(
                f"compression must be one of {COMPRESSION_MODES}, "
                f"got {self.compression!r}"
            )
        if self.compress_threshold_bytes < 0:
            raise ConfigError("compress_threshold_bytes must be >= 0")
        if self.stage_blob_cache_entries < 0:
            raise ConfigError("stage_blob_cache_entries must be >= 0")


@dataclass
class TransportConf:
    """Message-transport selection and knobs (see ``docs/networking.md``).

    * ``inproc`` — the historical in-process registry/router: a call is a
      Python method call plus counters and optional injected latency.
    * ``tcp`` — :mod:`repro.net`: every driver↔worker and worker↔worker
      message is framed, serialized, and sent over a real loopback
      socket; the driver and workers only share a socket address.
    """

    backend: str = field(default_factory=_default_transport_backend)
    # Injected per-message latency, used by coordination benchmarks to
    # model a real network (applied on the send path of both backends).
    rpc_latency_s: float = 0.0
    # TCP dial timeout per attempt, and bounded-backoff retry budget for
    # refused/unreachable connects (a server that has not finished
    # binding yet is transient; one that stays refused is WorkerLost).
    connect_timeout_s: float = 1.0
    max_retries: int = 2
    retry_backoff_s: float = 0.02
    # End-to-end budget for one request/response round trip; a peer that
    # accepts but never answers surfaces as WorkerLost, not a hang.
    call_timeout_s: float = 30.0
    # Bulk-payload fast path: fetch batching, stage-blob caching, frame
    # compression.
    data_plane: DataPlaneConf = field(default_factory=DataPlaneConf)

    def validate(self) -> None:
        if self.backend not in TRANSPORT_BACKENDS:
            raise ConfigError(
                f"transport backend must be one of {TRANSPORT_BACKENDS}, "
                f"got {self.backend!r}"
            )
        if self.rpc_latency_s < 0:
            raise ConfigError("rpc_latency_s must be >= 0")
        if self.connect_timeout_s <= 0:
            raise ConfigError("connect_timeout_s must be positive")
        if self.call_timeout_s <= 0:
            raise ConfigError("call_timeout_s must be positive")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.retry_backoff_s < 0:
            raise ConfigError("retry_backoff_s must be >= 0")
        self.data_plane.validate()


def _default_telemetry_enabled() -> bool:
    # REPRO_TELEMETRY=1 arms the live telemetry plane for a whole pytest
    # or bench run, mirroring REPRO_TRANSPORT / REPRO_CHAOS_SEED.
    return os.environ.get("REPRO_TELEMETRY", "").strip().lower() in (
        "1",
        "true",
        "on",
        "yes",
    )


@dataclass
class TelemetryConf:
    """Cluster-wide live telemetry plane (:mod:`repro.obs.live`).

    When enabled, every worker keeps a private metrics registry and
    periodically ships *delta* snapshots of it to the driver — riding the
    heartbeat when ``MonitorConf.enable_heartbeats`` is on, or over the
    dedicated (uncounted) ``__metrics__`` plumbing path when it is off.
    The driver aggregates the deltas into a :class:`ClusterTelemetry`
    time-series store whose ``signals()`` feed the §3.4 tuner, the
    ``obs top`` / ``obs serve`` surfaces, and the SLO watchdog.
    """

    enabled: bool = field(default_factory=_default_telemetry_enabled)
    # Shipping cadence for the dedicated loop (heartbeats-off path); with
    # heartbeats on, deltas ride the heartbeat_interval_s cadence instead.
    interval_s: float = 0.05
    # Ring-buffer entries retained per (worker, metric) on the driver.
    retention: int = 512
    # Cap on histogram samples shipped in one delta; the remainder ships
    # on the next tick (bounds the payload of any single message).
    max_samples_per_delta: int = 512
    # Window over which signals() derives rates and percentiles.
    signal_window_s: float = 5.0
    # SLO watchdog thresholds, both in milliseconds; None disables a
    # check.  slo_p99_ms bounds per-stage task-latency p99,
    # slo_queue_delay_p99_ms bounds the cluster queueing-delay p99.
    slo_p99_ms: Optional[float] = None
    slo_queue_delay_p99_ms: Optional[float] = None

    def validate(self) -> None:
        if self.interval_s <= 0:
            raise ConfigError("telemetry interval_s must be positive")
        if self.retention < 2:
            raise ConfigError("telemetry retention must be >= 2")
        if self.max_samples_per_delta < 1:
            raise ConfigError("telemetry max_samples_per_delta must be >= 1")
        if self.signal_window_s <= 0:
            raise ConfigError("telemetry signal_window_s must be positive")
        for knob in ("slo_p99_ms", "slo_queue_delay_p99_ms"):
            value = getattr(self, knob)
            if value is not None and value <= 0:
                raise ConfigError(f"telemetry {knob} must be positive (or None)")


@dataclass
class MonitorConf:
    """Failure-detection (heartbeat) settings (§3.3)."""

    enable_heartbeats: bool = False
    heartbeat_interval_s: float = 0.05
    heartbeat_timeout_s: float = 0.25

    def validate(self) -> None:
        if self.heartbeat_interval_s <= 0 or self.heartbeat_timeout_s <= 0:
            raise ConfigError("heartbeat intervals must be positive")
        if self.heartbeat_timeout_s < self.heartbeat_interval_s:
            raise ConfigError("heartbeat_timeout_s must be >= heartbeat_interval_s")


# Known fault-plan profiles.  The authoritative template definitions
# live in repro.chaos.plan (which imports this tuple to stay in sync);
# validation happens here so a bad profile fails at conf time, before a
# cluster exists.
CHAOS_PROFILES = ("net", "workers", "storage", "streaming", "mixed", "elastic", "driver")


def _default_chaos_enabled() -> bool:
    # Arming via the environment lets CI soak whole pytest runs without
    # editing EngineConf constructions, mirroring REPRO_TRANSPORT.
    return bool(
        os.environ.get("REPRO_CHAOS_SEED") or os.environ.get("REPRO_CHAOS_PROFILE")
    )


def _default_chaos_seed() -> int:
    return int(os.environ.get("REPRO_CHAOS_SEED", "0") or "0")


def _default_chaos_profile() -> str:
    return os.environ.get("REPRO_CHAOS_PROFILE", "mixed")


@dataclass
class ChaosConf:
    """Deterministic fault injection (``repro.chaos``).

    Disarmed by default: every injection hook is a no-op unless
    ``enabled`` is true (set explicitly or via ``REPRO_CHAOS_SEED`` /
    ``REPRO_CHAOS_PROFILE``).  When armed, the cluster derives a
    :class:`repro.chaos.plan.FaultPlan` from ``(seed, profile,
    intensity)`` and installs a process-global injector for the cluster's
    lifetime; the same seed always yields the same fault schedule.
    """

    enabled: bool = field(default_factory=_default_chaos_enabled)
    seed: int = field(default_factory=_default_chaos_seed)
    profile: str = field(default_factory=_default_chaos_profile)
    # Scales the number of scheduled fault events (1.0 ≈ 6 events).
    intensity: float = 1.0
    # Hard cap on injected machine kills per run; the cluster further
    # clamps it to num_workers - 1 so a plan can never kill the last
    # survivor.
    max_worker_kills: int = 1

    def validate(self) -> None:
        if self.profile not in CHAOS_PROFILES:
            raise ConfigError(
                f"chaos profile must be one of {CHAOS_PROFILES}, "
                f"got {self.profile!r}"
            )
        if self.intensity <= 0:
            raise ConfigError("chaos intensity must be positive")
        if self.max_worker_kills < 0:
            raise ConfigError("chaos max_worker_kills must be >= 0")


def _default_templates_enabled() -> bool:
    # REPRO_TEMPLATES=1 arms execution templates for a whole pytest or
    # soak run, mirroring REPRO_TELEMETRY / REPRO_TRANSPORT.
    return os.environ.get("REPRO_TEMPLATES", "").strip().lower() in (
        "1",
        "true",
        "on",
        "yes",
    )


@dataclass
class TemplateConf:
    """Execution templates for O(1) steady-state group launches.

    After the first launch of a (plan, placement, group-size)
    combination, each worker caches the full instantiated group schedule
    — task descriptors, slot placement, and pre-scheduled shuffle wiring
    — keyed by a content digest.  Subsequent launches of the same shape
    become one small ``instantiate_template(template_id, batch_ids,
    epoch)`` RPC per worker instead of per-task payloads (Execution
    Templates, Mashayekhi et al.; see "Execution templates" in
    ``docs/networking.md``).  Templates are invalidated whenever cluster
    membership changes (worker join/leave/re-announce).
    """

    enabled: bool = field(default_factory=_default_templates_enabled)
    # Templates cached per worker (and tracked per peer on the driver's
    # transport); oldest-installed entries are evicted beyond this.
    max_per_worker: int = 32

    def validate(self) -> None:
        if self.max_per_worker < 1:
            raise ConfigError("templates max_per_worker must be >= 1")


# Names resolvable by ElasticController when no policy object is given;
# the authoritative constructors live in repro.elastic.policies.
ELASTIC_POLICIES = ("signals", "utilization")


def _default_elastic_enabled() -> bool:
    # REPRO_ELASTIC=1 arms the autoscaling controller for a whole pytest
    # or soak run, mirroring REPRO_TEMPLATES / REPRO_TELEMETRY.
    return os.environ.get("REPRO_ELASTIC", "").strip().lower() in (
        "1",
        "true",
        "on",
        "yes",
    )


@dataclass
class ElasticConf:
    """Live autoscaling + stateful key-range migration (:mod:`repro.elastic`).

    When enabled, the streaming context attaches an
    :class:`repro.elastic.controller.ElasticController` that consumes the
    cluster's live signals at every group boundary (§3.3 — "Drizzle
    updates the list of available resources and adjusts the tasks to be
    scheduled for the next group") and may add or drain workers between
    groups.  Stateful operator state is tracked per key-range shard so a
    resize moves only the minimal set of shards to the new layout, over
    the ordinary transport, inside the group-boundary barrier.
    """

    enabled: bool = field(default_factory=_default_elastic_enabled)
    # Cluster-size bounds the controller may move within (the policy's
    # own min/max are clamped to these).
    min_workers: int = 1
    max_workers: int = 8
    # Group boundaries to hold after a resize before the next decision
    # may fire (lets signals reflect the new layout before reacting).
    cooldown_groups: int = 1
    # Named policy used when no policy object is handed to the
    # controller: "signals" (live telemetry thresholds) or "utilization"
    # (batch wall-time vs interval).
    policy: str = "signals"
    # Key-range shards per worker in the initial shard map; more shards
    # means finer-grained (smaller) moves at each resize.
    shards_per_worker: int = 4

    def validate(self) -> None:
        if self.min_workers < 1:
            raise ConfigError("elastic min_workers must be >= 1")
        if self.max_workers < self.min_workers:
            raise ConfigError("elastic max_workers must be >= min_workers")
        if self.cooldown_groups < 0:
            raise ConfigError("elastic cooldown_groups must be >= 0")
        if self.policy not in ELASTIC_POLICIES:
            raise ConfigError(
                f"elastic policy must be one of {ELASTIC_POLICIES}, "
                f"got {self.policy!r}"
            )
        if self.shards_per_worker < 1:
            raise ConfigError("elastic shards_per_worker must be >= 1")


def _default_ha_enabled() -> bool:
    # REPRO_HA=1 arms the driver WAL for a whole pytest or soak run,
    # mirroring REPRO_TEMPLATES / REPRO_TELEMETRY.
    return _env_flag("REPRO_HA")


@dataclass
class HaConf:
    """Driver fault tolerance (:mod:`repro.ha`).

    When enabled, the driver journals control-plane transitions — session
    epochs, membership, group commits, streaming checkpoint metadata and
    sink high-water marks — to an append-only, CRC-framed write-ahead log
    at group boundaries (the paper's natural commit points, §3.3).  A
    crashed driver restarts via :meth:`LocalCluster.recover`, which
    replays snapshot + tail and resumes from the last committed group;
    the session epoch stamped into worker-bound messages fences off a
    zombie driver that lost the restart race.
    """

    enabled: bool = field(default_factory=_default_ha_enabled)
    # Directory holding wal.log + snapshot.bin; None lets the cluster
    # create a per-run temporary directory (useful for tests, useless for
    # an actual crash-restart — production runs should pin this).
    wal_dir: Optional[str] = None
    # fsync after every N appended records (1 = every record).  Group
    # commits and session records always force a sync regardless.
    fsync_every_n: int = 8
    # Compact the journal into a snapshot every N group-commit records so
    # replay cost stays O(live state), not O(history).
    snapshot_every_n_groups: int = 4

    def validate(self) -> None:
        if self.fsync_every_n < 1:
            raise ConfigError("ha fsync_every_n must be >= 1")
        if self.snapshot_every_n_groups < 1:
            raise ConfigError("ha snapshot_every_n_groups must be >= 1")


@dataclass
class EngineConf:
    """Configuration for the local BSP engine and the simulator."""

    num_workers: int = 4
    slots_per_worker: int = 4
    scheduling_mode: SchedulingMode = SchedulingMode.DRIZZLE
    group_size: int = 10
    # Checkpoint every N micro-batches; group boundaries are the natural
    # choice (§3.3), so this defaults to 0 meaning "at group boundaries".
    checkpoint_interval_batches: int = 0
    # Deprecated aliases for monitor.heartbeat_*; non-None values are
    # copied into ``monitor`` by validate() with a DeprecationWarning.
    heartbeat_interval_s: Optional[float] = None
    heartbeat_timeout_s: Optional[float] = None
    # Map-side partial aggregation (§3.5) for reduce_by_key.
    map_side_combine: bool = True
    # Reuse map outputs from earlier micro-batches during recovery (§3.3).
    reuse_intermediate_on_recovery: bool = True
    tuner: TunerConf = field(default_factory=TunerConf)
    speculation: SpeculationConf = field(default_factory=SpeculationConf)
    tracing: TracingConf = field(default_factory=TracingConf)
    executor: ExecutorConf = field(default_factory=ExecutorConf)
    transport: TransportConf = field(default_factory=TransportConf)
    monitor: MonitorConf = field(default_factory=MonitorConf)
    chaos: ChaosConf = field(default_factory=ChaosConf)
    telemetry: TelemetryConf = field(default_factory=TelemetryConf)
    templates: TemplateConf = field(default_factory=TemplateConf)
    elastic: ElasticConf = field(default_factory=ElasticConf)
    ha: HaConf = field(default_factory=HaConf)
    # Deadline for one stage (and for wait_job when no explicit timeout is
    # given): a stalled stage raises a descriptive StageTimeout naming the
    # pending tasks and their workers instead of blocking forever.  None
    # keeps the historical wait-forever behaviour.
    stage_timeout_s: Optional[float] = None
    # Per-task recovery retry budget: once a task has been re-attempted
    # this many times the job fails with RecoveryBudgetExceeded carrying
    # the fault history, instead of resubmitting forever.
    max_task_retries: int = 8
    # Deterministic seed used by hash partitioners and workload generators.
    seed: int = 0

    def validate(self) -> None:
        if self.num_workers < 1:
            raise ConfigError("num_workers must be >= 1")
        if self.slots_per_worker < 1:
            raise ConfigError("slots_per_worker must be >= 1")
        if self.group_size < 1:
            raise ConfigError("group_size must be >= 1")
        if self.checkpoint_interval_batches < 0:
            raise ConfigError("checkpoint_interval_batches must be >= 0")
        if self.heartbeat_interval_s is not None:
            warnings.warn(
                "EngineConf.heartbeat_interval_s is deprecated; use "
                "EngineConf(monitor=MonitorConf(heartbeat_interval_s=...))",
                DeprecationWarning,
                stacklevel=2,
            )
            self.monitor.heartbeat_interval_s = self.heartbeat_interval_s
            self.heartbeat_interval_s = None
        if self.heartbeat_timeout_s is not None:
            warnings.warn(
                "EngineConf.heartbeat_timeout_s is deprecated; use "
                "EngineConf(monitor=MonitorConf(heartbeat_timeout_s=...))",
                DeprecationWarning,
                stacklevel=2,
            )
            self.monitor.heartbeat_timeout_s = self.heartbeat_timeout_s
            self.heartbeat_timeout_s = None
        if self.stage_timeout_s is not None and self.stage_timeout_s <= 0:
            raise ConfigError("stage_timeout_s must be positive (or None)")
        if self.max_task_retries < 1:
            raise ConfigError("max_task_retries must be >= 1")
        self.tuner.validate()
        self.speculation.validate()
        self.tracing.validate()
        self.executor.validate()
        self.transport.validate()
        self.monitor.validate()
        self.chaos.validate()
        self.telemetry.validate()
        self.templates.validate()
        self.elastic.validate()
        self.ha.validate()
        if (
            self.scheduling_mode is SchedulingMode.PER_BATCH
            and self.group_size != 1
            and not self.tuner.enabled
        ):
            # Per-batch mode is definitionally group size 1; normalize so
            # metrics comparisons are honest.
            self.group_size = 1

    @property
    def total_slots(self) -> int:
        return self.num_workers * self.slots_per_worker

    def effective_checkpoint_interval(self) -> int:
        """Micro-batches between checkpoints (group boundary by default)."""
        if self.checkpoint_interval_batches > 0:
            return self.checkpoint_interval_batches
        return self.group_size

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (nested sub-confs included); the inverse of
        :meth:`from_dict`, so bench sweeps and CI matrices can declare
        configurations as data."""
        return _conf_to_dict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EngineConf":
        """Build an EngineConf from a (possibly nested) plain dict.

        Unknown keys — at any nesting level — raise :class:`ConfigError`
        listing the valid ones."""
        return _conf_from_dict(cls, data)


def _conf_to_dict(conf: Any) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for f in fields(conf):
        value = getattr(conf, f.name)
        if is_dataclass(value) and not isinstance(value, type):
            out[f.name] = _conf_to_dict(value)
        elif isinstance(value, Enum):
            out[f.name] = value.value
        else:
            out[f.name] = value
    return out


def _conf_from_dict(cls: type, data: Any) -> Any:
    if not isinstance(data, dict):
        raise ConfigError(f"{cls.__name__} expects a dict, got {type(data).__name__}")
    valid = {f.name: f for f in fields(cls)}
    unknown = sorted(set(data) - set(valid))
    if unknown:
        raise ConfigError(
            f"unknown {cls.__name__} key(s) {unknown}; "
            f"valid keys: {sorted(valid)}"
        )
    kwargs: Dict[str, Any] = {}
    for name, value in data.items():
        f = valid[name]
        sub_cls = f.default_factory if f.default_factory is not _MISSING else None
        if sub_cls is not None and is_dataclass(sub_cls) and isinstance(value, dict):
            kwargs[name] = _conf_from_dict(sub_cls, value)
        elif name == "scheduling_mode" and not isinstance(value, SchedulingMode):
            try:
                kwargs[name] = SchedulingMode(value)
            except ValueError as err:
                raise ConfigError(
                    f"unknown scheduling_mode {value!r}; valid: "
                    f"{[m.value for m in SchedulingMode]}"
                ) from err
        else:
            kwargs[name] = value
    return cls(**kwargs)
