"""Small statistics helpers used by metrics, the tuner, and benchmarks.

Kept dependency-free (no numpy) so the core library stays lightweight;
benchmarks may use numpy on top of these.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100].

    Matches numpy's default ("linear") method so benchmark tables agree
    with any numpy cross-checks.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return data[lo]
    frac = rank - lo
    # data[lo] + delta*frac (not the symmetric form) is exact when the two
    # neighbours are equal and never leaves [data[lo], data[hi]].
    return data[lo] + (data[hi] - data[lo]) * frac


def median(values: Sequence[float]) -> float:
    return percentile(values, 50.0)


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation (matches the paper's error bars usage)."""
    if not values:
        raise ValueError("stddev of empty sequence")
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, fraction <= value) points, sorted by value."""
    if not values:
        return []
    data = sorted(values)
    n = len(data)
    points: List[Tuple[float, float]] = []
    for i, v in enumerate(data, start=1):
        # Collapse duplicate x values, keeping the highest fraction.
        if points and points[-1][0] == v:
            points[-1] = (v, i / n)
        else:
            points.append((v, i / n))
    return points


@dataclass
class Summary:
    """Five-number-ish summary used by benchmark tables."""

    count: int
    mean: float
    p5: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        if not values:
            raise ValueError("summary of empty sequence")
        return cls(
            count=len(values),
            mean=mean(values),
            p5=percentile(values, 5),
            p50=percentile(values, 50),
            p95=percentile(values, 95),
            p99=percentile(values, 99),
            max=max(values),
        )


class ExponentialAverage:
    """Exponentially weighted moving average.

    The paper (§3.4) uses "exponentially averaged scheduling overhead
    measurements" so that transient latency spikes (e.g. GC pauses) do not
    destabilize the group-size tuner.
    """

    def __init__(self, alpha: float = 0.5):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value: float | None = None

    @property
    def value(self) -> float:
        if self._value is None:
            raise ValueError("no observations yet")
        return self._value

    @property
    def initialized(self) -> bool:
        return self._value is not None

    def update(self, sample: float) -> float:
        if self._value is None:
            self._value = float(sample)
        else:
            self._value = self.alpha * sample + (1.0 - self.alpha) * self._value
        return self._value


class Welford:
    """Online mean/variance accumulator (Welford's algorithm)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("no observations")
        return self._mean

    @property
    def variance(self) -> float:
        if self.count == 0:
            raise ValueError("no observations")
        if self.count == 1:
            return 0.0
        return self._m2 / self.count

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)
