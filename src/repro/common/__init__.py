"""Shared infrastructure: clocks, config, metrics, stats, errors."""

from repro.common.clock import Clock, ManualClock, WallClock
from repro.common.config import (
    EngineConf,
    ExecutorConf,
    MonitorConf,
    SchedulingMode,
    SpeculationConf,
    TracingConf,
    TransportConf,
    TunerConf,
)
from repro.common.errors import (
    CheckpointError,
    ConfigError,
    FetchFailed,
    PlanError,
    RecoverableError,
    ReproError,
    SerializationError,
    SimulationError,
    StreamingError,
    TaskError,
    WorkerLost,
)
from repro.common.metrics import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries
from repro.common.stats import ExponentialAverage, Summary, cdf_points, percentile

__all__ = [
    "Clock",
    "ManualClock",
    "WallClock",
    "EngineConf",
    "SchedulingMode",
    "TunerConf",
    "TracingConf",
    "ExecutorConf",
    "TransportConf",
    "MonitorConf",
    "SpeculationConf",
    "CheckpointError",
    "ConfigError",
    "FetchFailed",
    "PlanError",
    "RecoverableError",
    "ReproError",
    "SerializationError",
    "SimulationError",
    "StreamingError",
    "TaskError",
    "WorkerLost",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "ExponentialAverage",
    "Summary",
    "cdf_points",
    "percentile",
]
