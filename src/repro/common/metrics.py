"""Counter / timer registry.

Drizzle's group-size tuner (§3.4) is driven by counters that "track the
amount of time spent in various parts of the system"; the registry here is
that mechanism.  It is also used by benchmarks to extract the scheduler-
delay / task-transfer / compute breakdown of Figure 4(b).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List

from repro.common.clock import Clock, WallClock


class Counter:
    """A thread-safe additive counter."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def add(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class TimeSeries:
    """A thread-safe append-only list of samples."""

    def __init__(self, name: str):
        self.name = name
        self._samples: List[float] = []
        self._lock = threading.Lock()

    def record(self, sample: float) -> None:
        with self._lock:
            self._samples.append(sample)

    def snapshot(self) -> List[float]:
        with self._lock:
            return list(self._samples)

    def reset(self) -> None:
        with self._lock:
            self._samples.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)


class MetricsRegistry:
    """Named counters and series, created on first use."""

    def __init__(self, clock: Clock | None = None):
        self._clock = clock or WallClock()
        self._counters: Dict[str, Counter] = {}
        self._series: Dict[str, TimeSeries] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def series(self, name: str) -> TimeSeries:
        with self._lock:
            if name not in self._series:
                self._series[name] = TimeSeries(name)
            return self._series[name]

    @contextmanager
    def timed(self, name: str) -> Iterator[None]:
        """Accumulate elapsed wall time into counter ``name``."""
        start = self._clock.now()
        try:
            yield
        finally:
            self.counter(name).add(self._clock.now() - start)

    def counters_snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {name: c.value for name, c in self._counters.items()}

    def reset(self) -> None:
        with self._lock:
            for c in self._counters.values():
                c.reset()
            for s in self._series.values():
                s.reset()


# Canonical metric names shared between the engine and the tuner.
TIME_SCHEDULING = "time.scheduling"
TIME_TASK_TRANSFER = "time.task_transfer"
TIME_COMPUTE = "time.compute"
TIME_COORDINATION = "time.coordination"
COUNT_TASKS_LAUNCHED = "count.tasks_launched"
COUNT_RPC_MESSAGES = "count.rpc_messages"
# Launch messages sent by the centralized driver (the coordination cost
# that group scheduling amortizes, §3.1).
COUNT_LAUNCH_RPCS = "count.launch_rpcs"
COUNT_GROUPS_SCHEDULED = "count.groups_scheduled"
COUNT_BATCHES_EXECUTED = "count.batches_executed"
COUNT_CHECKPOINTS = "count.checkpoints"
COUNT_RECOVERIES = "count.recoveries"
COUNT_SPECULATIVE = "count.speculative_tasks"
