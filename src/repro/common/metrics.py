"""Counter / timer registry.

Drizzle's group-size tuner (§3.4) is driven by counters that "track the
amount of time spent in various parts of the system"; the registry here is
that mechanism.  It is also used by benchmarks to extract the scheduler-
delay / task-transfer / compute breakdown of Figure 4(b).
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterator, List, Optional

from repro.common.clock import Clock, WallClock
from repro.common.stats import percentile


class Counter:
    """A thread-safe additive counter."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def add(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


# Ring capacity for TimeSeries.  Generous on purpose: series record
# control-plane events (batches, groups, decisions), so even a multi-hour
# soak at ~10 samples/s fits without eviction; the bound only exists so
# an unattended streaming run cannot grow memory without limit.
DEFAULT_SERIES_MAX_SAMPLES = 65_536


class TimeSeries:
    """A thread-safe bounded ring of samples.

    Older samples are evicted once ``max_samples`` is reached; evictions
    are counted and surfaced as ``dropped`` in registry snapshots, so a
    summary computed over a truncated window says so explicitly.
    """

    def __init__(self, name: str, max_samples: int = DEFAULT_SERIES_MAX_SAMPLES):
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.name = name
        self._samples: Deque[float] = deque(maxlen=max_samples)
        self._dropped = 0
        self._lock = threading.Lock()

    def record(self, sample: float) -> None:
        with self._lock:
            if len(self._samples) == self._samples.maxlen:
                self._dropped += 1
            self._samples.append(sample)

    def snapshot(self) -> List[float]:
        with self._lock:
            return list(self._samples)

    @property
    def dropped(self) -> int:
        """Samples evicted from the ring since the last reset."""
        with self._lock:
            return self._dropped

    @property
    def max_samples(self) -> int:
        return self._samples.maxlen or 0

    def reset(self) -> None:
        with self._lock:
            self._samples.clear()
            self._dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)


class Gauge:
    """A thread-safe last-value metric (e.g. current group size)."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float = 1.0) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


def _summarize(samples: List[float]) -> Dict[str, float]:
    """p50/p95/p99 summary used for histogram and series snapshots."""
    if not samples:
        return {"count": 0}
    return {
        "count": len(samples),
        "sum": sum(samples),
        "mean": sum(samples) / len(samples),
        "p50": percentile(samples, 50),
        "p95": percentile(samples, 95),
        "p99": percentile(samples, 99),
        "max": max(samples),
    }


class Histogram:
    """A thread-safe sample accumulator with percentile summaries.

    Samples are kept exactly (these are control-plane events — thousands,
    not billions); ``summary()`` reports p50/p95/p99 via
    :func:`repro.common.stats.percentile`.
    """

    def __init__(self, name: str):
        self.name = name
        self._samples: List[float] = []
        self._lock = threading.Lock()

    def record(self, sample: float) -> None:
        with self._lock:
            self._samples.append(float(sample))

    def snapshot(self) -> List[float]:
        with self._lock:
            return list(self._samples)

    def summary(self) -> Dict[str, float]:
        return _summarize(self.snapshot())

    def reset(self) -> None:
        with self._lock:
            self._samples.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)


class MetricsRegistry:
    """Named counters, series, gauges, and histograms, created on first use."""

    def __init__(self, clock: Clock | None = None):
        self._clock = clock or WallClock()
        self._counters: Dict[str, Counter] = {}
        self._series: Dict[str, TimeSeries] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def series(self, name: str, max_samples: Optional[int] = None) -> TimeSeries:
        with self._lock:
            if name not in self._series:
                self._series[name] = TimeSeries(
                    name, max_samples or DEFAULT_SERIES_MAX_SAMPLES
                )
            return self._series[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name)
            return self._histograms[name]

    @contextmanager
    def timed(self, name: str) -> Iterator[None]:
        """Accumulate elapsed wall time into counter ``name`` AND record
        the individual sample into a same-named histogram, so timers
        yield percentiles rather than just totals."""
        start = self._clock.now()
        try:
            yield
        finally:
            elapsed = self._clock.now() - start
            self.counter(name).add(elapsed)
            self.histogram(name).record(elapsed)

    def counters_snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {name: c.value for name, c in self._counters.items()}

    def gauges_snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {name: g.value for name, g in self._gauges.items()}

    def histogram_names(self) -> List[str]:
        """Names of every histogram created so far (delta shippers walk
        these to find new samples without materializing summaries)."""
        with self._lock:
            return list(self._histograms)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """One unified snapshot: counters, gauges, and p50/p95/p99
        summaries of every histogram and series (JSON-serializable).
        Series summaries carry a ``dropped`` count: samples evicted from
        the bounded ring, i.e. how much history the summary is missing."""
        with self._lock:
            counters = {name: c.value for name, c in self._counters.items()}
            gauges = {name: g.value for name, g in self._gauges.items()}
            histograms = {name: h.summary() for name, h in self._histograms.items()}
            series = {
                name: {**_summarize(s.snapshot()), "dropped": s.dropped}
                for name, s in self._series.items()
            }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "series": series,
        }

    def reset(self) -> None:
        with self._lock:
            for c in self._counters.values():
                c.reset()
            for s in self._series.values():
                s.reset()
            for g in self._gauges.values():
                g.reset()
            for h in self._histograms.values():
                h.reset()


# Canonical metric names shared between the engine and the tuner.
TIME_SCHEDULING = "time.scheduling"
TIME_TASK_TRANSFER = "time.task_transfer"
TIME_COMPUTE = "time.compute"
TIME_COORDINATION = "time.coordination"
COUNT_TASKS_LAUNCHED = "count.tasks_launched"
COUNT_RPC_MESSAGES = "count.rpc_messages"
# Launch messages sent by the centralized driver (the coordination cost
# that group scheduling amortizes, §3.1).
COUNT_LAUNCH_RPCS = "count.launch_rpcs"
COUNT_GROUPS_SCHEDULED = "count.groups_scheduled"
COUNT_BATCHES_EXECUTED = "count.batches_executed"
COUNT_CHECKPOINTS = "count.checkpoints"
COUNT_RECOVERIES = "count.recoveries"
COUNT_SPECULATIVE = "count.speculative_tasks"
# Wire-level counters maintained by the tcp transport (repro.net): framed
# bytes actually written to / read from sockets, connections dialled, and
# connect retries spent against the bounded backoff budget.  The inproc
# transport never moves bytes, so these stay zero there — the difference
# IS the coordination cost the paper amortizes.
COUNT_NET_BYTES_SENT = "net.bytes_sent"
COUNT_NET_BYTES_RECEIVED = "net.bytes_received"
COUNT_NET_CONNECTIONS = "net.connections"
COUNT_NET_CONNECT_RETRIES = "net.connect_retries"
# Per-method round-trip latency histograms are registered as
# "{HIST_NET_CALL_LATENCY}.{method}" (e.g. "net.call_latency.launch_tasks").
HIST_NET_CALL_LATENCY = "net.call_latency"
# Data-plane fast path (see "Data plane" in docs/networking.md): batched
# shuffle pulls, payload bytes compression kept off the wire, and the
# content-addressed stage-blob cache on the launch path.  A cache "hit"
# is a launch that shipped only digest tokens to a worker; a "miss"
# attached the serialized stage blob (first ship or stage_miss reship).
COUNT_NET_FETCH_BATCHES = "net.fetch_batches"
# Dials to an address the pool had already connected to before — i.e.
# re-dials after an invalidation, idle-pool exhaustion, or a peer crash.
# Backoff between attempts is jittered so a thundering herd of redials
# after a server kill does not synchronize.
COUNT_NET_REDIALS = "net.redials"
HIST_NET_BUCKETS_PER_FETCH = "net.buckets_per_fetch"
COUNT_NET_BYTES_SAVED_COMPRESSION = "net.bytes_saved_compression"
COUNT_STAGE_CACHE_HIT = "serde.stage_cache_hit"
COUNT_STAGE_CACHE_MISS = "serde.stage_cache_miss"
# Execution templates (repro.core.templates): a "hit" is a steady-state
# group launch that crossed the wire as one instantiate_template RPC per
# worker; a "miss" shipped the full per-task group payload (first launch
# of a shape, or a template_miss reship after worker-side eviction); an
# "invalidated" counts one template dropped on a membership change.
# net.template_bytes_saved accumulates the full-launch wire size a hit
# avoided, minus the instantiate payload it sent instead.
# net.launch_bytes_sent isolates driver launch-path wire bytes from the
# O(group) fetch/report traffic so the bench can show bytes/group.
COUNT_TEMPLATE_HIT = "templates.hit"
COUNT_TEMPLATE_MISS = "templates.miss"
COUNT_TEMPLATE_INVALIDATED = "templates.invalidated"
COUNT_NET_TEMPLATE_BYTES_SAVED = "net.template_bytes_saved"
COUNT_NET_LAUNCH_BYTES_SENT = "net.launch_bytes_sent"
# Raw-speed data plane (see "Raw speed" in docs/networking.md).
# net.shm_hits counts map outputs a reducer read straight out of a
# shared-memory segment instead of a fetch_buckets round trip;
# net.shm_fallbacks counts shm lookups that missed and went to the wire.
# blocks.encoded/decoded count RecordBlocks that crossed a boundary in
# columnar (header + raw buffer) form; blocks.encode_ms accumulates the
# wall time spent in that encode path so the bench can report it.
COUNT_SHM_HITS = "net.shm_hits"
COUNT_SHM_FALLBACKS = "net.shm_fallbacks"
COUNT_BLOCKS_ENCODED = "blocks.encoded"
COUNT_BLOCKS_DECODED = "blocks.decoded"
COUNT_BLOCKS_ENCODE_MS = "blocks.encode_ms"
# Event-loop server (repro.net.aio): connections currently accepted and
# held open by the async server (a gauge, sampled by the bench).
GAUGE_NET_OPEN_CONNECTIONS = "net.open_connections"
# Fault injection (repro.chaos): every fault the injector fires counts
# once here and once on a per-kind counter named "chaos.<kind>"
# (e.g. "chaos.worker_kill") — a prefix family like net.call_latency.
# A scheduled fault withheld by a safety guard (kill budget) counts as
# suppressed instead.
COUNT_CHAOS_INJECTED = "chaos.injected"
COUNT_CHAOS_SUPPRESSED = "chaos.suppressed"
CHAOS_KIND_PREFIX = "chaos"
# Live telemetry plane (repro.obs.live).  The telemetry.* family is
# recorded into each worker's *private* telemetry registry (within a
# LocalCluster the main registry is shared, so per-worker attribution
# needs a separate one) and shipped to the driver as delta snapshots.
HIST_TELEMETRY_QUEUE_DELAY = "telemetry.queue_delay"  # accept -> run start
COUNT_TELEMETRY_TASKS = "telemetry.tasks"
COUNT_TELEMETRY_RECORDS = "telemetry.records"
GAUGE_TELEMETRY_BACKLOG = "telemetry.backlog"  # tasks parked on deps
# Per-stage task latency histograms are registered as
# "{TELEMETRY_STAGE_LATENCY_PREFIX}.{stage_index}" — a prefix family
# like net.call_latency.
TELEMETRY_STAGE_LATENCY_PREFIX = "telemetry.stage_latency"
# Driver-side telemetry bookkeeping (recorded on the driver registry).
COUNT_TELEMETRY_DELTAS = "telemetry.deltas_ingested"
GAUGE_TELEMETRY_STREAM_BACKLOG = "telemetry.stream_backlog"
HIST_TELEMETRY_BATCH_WALL = "telemetry.batch_wall"
# SLO watchdog: one count per threshold breach detected by the
# ClusterTelemetry store (paired with an "slo.violation" trace instant).
COUNT_SLO_VIOLATIONS = "slo.violations"
# Elastic autoscaling (repro.elastic.controller): every policy decision
# counts once (including delta-0 holds); a resize is a decision that
# actually changed the worker set at a group boundary, split out by
# direction on workers_added / workers_removed.
COUNT_ELASTIC_DECISIONS = "elastic.decisions"
COUNT_ELASTIC_RESIZES = "elastic.resizes"
COUNT_ELASTIC_WORKERS_ADDED = "elastic.workers_added"
COUNT_ELASTIC_WORKERS_REMOVED = "elastic.workers_removed"
# Key-range state migration (repro.elastic.migration): shards/keys that
# crossed the transport during resizes, moves aborted by a mid-migration
# WorkerLost, requeued retries after an abort, and the wall-clock spent
# inside the group-boundary barrier executing moves.
COUNT_MIGRATION_SHARDS_MOVED = "migration.shards_moved"
COUNT_MIGRATION_KEYS_MOVED = "migration.keys_moved"
COUNT_MIGRATION_ABORTS = "migration.aborts"
COUNT_MIGRATION_RETRIES = "migration.retries"
HIST_MIGRATION_WALL = "migration.wall_s"
# Re-established connections: a dial to an address whose previous
# connection was actually established before (net.redials also counts
# attempts that never connected; net.reconnects counts only dials that
# succeeded after a prior success — the wire-level "came back" signal).
COUNT_NET_RECONNECTS = "net.reconnects"
# Driver fault tolerance (repro.ha): control-plane WAL traffic, replay
# work done by recovery, and the fencing/parking behaviour of workers
# while a driver is down.  ha.wal_lag gauges records appended since the
# last fsync (0 = everything journaled is durable).
COUNT_HA_WAL_APPENDS = "ha.wal_appends"
COUNT_HA_WAL_FSYNCS = "ha.wal_fsyncs"
COUNT_HA_WAL_REPLAYS = "ha.wal_replays"
COUNT_HA_WAL_BYTES = "ha.wal_bytes"
COUNT_HA_WAL_SNAPSHOTS = "ha.wal_snapshots"
COUNT_HA_FENCED = "ha.fenced"
COUNT_HA_PARKED_REPORTS = "ha.parked_reports"
COUNT_HA_RECOVERIES = "ha.recoveries"
GAUGE_HA_WAL_LAG = "ha.wal_lag"
