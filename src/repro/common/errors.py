"""Exception hierarchy shared by every repro subsystem.

The engine distinguishes *recoverable* faults (a worker died, a fetch
failed) from *programming* errors (bad DAG, bad configuration).  Recovery
logic in :mod:`repro.engine.driver` only catches the recoverable family.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """Raised for invalid or inconsistent configuration values."""


class PlanError(ReproError):
    """Raised when a dataset DAG cannot be planned into stages."""


class RecoverableError(ReproError):
    """Base class for faults the engine is expected to recover from."""


class WorkerLost(RecoverableError):
    """A worker machine failed (crashed, was killed, or timed out)."""

    def __init__(self, worker_id: str, reason: str = "worker lost"):
        super().__init__(f"{reason}: {worker_id}")
        self.worker_id = worker_id
        self.reason = reason

    def __reduce__(self):
        # ``args`` holds the formatted message, not the constructor
        # arguments, so default pickling would rebuild with the wrong
        # signature; reports carrying these cross sockets (repro.net).
        return (WorkerLost, (self.worker_id, self.reason))


class FetchFailed(RecoverableError):
    """A reduce task failed to fetch a shuffle block from an upstream worker.

    Carries enough information for the driver to regenerate the lost map
    output (paper §3.3: "if the tasks encounter a failure in either sending
    or fetching outputs they forward the failure to the centralized
    scheduler").
    """

    def __init__(self, shuffle_id: int, map_index: int, worker_id: str):
        super().__init__(
            f"fetch failed: shuffle={shuffle_id} map={map_index} worker={worker_id}"
        )
        self.shuffle_id = shuffle_id
        self.map_index = map_index
        self.worker_id = worker_id

    def __reduce__(self):
        return (FetchFailed, (self.shuffle_id, self.map_index, self.worker_id))


class StageTimeout(RecoverableError):
    """A stage made no progress within the configured deadline.

    Raised by :meth:`repro.engine.driver.Driver.wait_job` and
    ``_await_stage`` when ``EngineConf.stage_timeout_s`` (or an explicit
    ``timeout``) expires, naming the stalled stage, its pending
    partitions, and the workers they were placed on — so an injected hang
    surfaces as a descriptive error instead of a wedged run.
    """

    def __init__(
        self,
        job_id: int,
        stage_index: int,
        pending,
        workers,
        timeout_s: float,
    ):
        pending = list(pending)
        workers = list(workers)
        shown = pending[:8]
        suffix = "..." if len(pending) > len(shown) else ""
        super().__init__(
            f"job {job_id} did not finish within {timeout_s}s: "
            f"stage {stage_index} stalled with {len(pending)} pending task(s) "
            f"(partitions {shown}{suffix}) on worker(s) {workers}"
        )
        self.job_id = job_id
        self.stage_index = stage_index
        self.pending = pending
        self.workers = workers
        self.timeout_s = timeout_s

    def __reduce__(self):
        return (
            StageTimeout,
            (self.job_id, self.stage_index, self.pending, self.workers, self.timeout_s),
        )


class RecoveryBudgetExceeded(ReproError):
    """A task kept failing past ``EngineConf.max_task_retries``.

    Deliberately *not* recoverable: the engine already spent its recovery
    budget, so the job fails with the accumulated fault history instead of
    retrying forever.
    """

    def __init__(self, what: str, attempts: int, fault_history=()):
        history = list(fault_history)
        shown = "; ".join(history[-8:]) or "none recorded"
        super().__init__(
            f"{what} exceeded the recovery budget after {attempts} attempt(s); "
            f"fault history: {shown}"
        )
        self.what = what
        self.attempts = attempts
        self.fault_history = history

    def __reduce__(self):
        return (RecoveryBudgetExceeded, (self.what, self.attempts, self.fault_history))


class SerializationError(ReproError):
    """A task payload (closure, capture, or record) cannot cross a process
    boundary.

    Raised by the closure serializer in :mod:`repro.dag.serde` with a
    message that names the offending capture, so users see
    "captured variable 'lock' ... is not picklable" instead of a raw
    :class:`pickle.PicklingError` surfacing from a worker pool.
    """


class TaskError(ReproError):
    """A task raised a non-recoverable exception from user code."""

    def __init__(self, task_id: str, cause: BaseException):
        super().__init__(f"task {task_id} failed: {cause!r}")
        self.task_id = task_id
        self.cause = cause

    def __reduce__(self):
        return (TaskError, (self.task_id, self.cause))


class CheckpointError(ReproError):
    """A checkpoint could not be written or restored."""


class DriverKilled(ReproError):
    """The chaos layer simulated a driver crash (``SITE_DRIVER``).

    Raised out of the streaming loop at the injection point so the
    workload can tear the cluster down exactly as an abrupt driver exit
    would — the WAL on disk is whatever was durably journaled before the
    kill — and then exercise :meth:`LocalCluster.recover`.
    """

    def __init__(self, where: str = "group_boundary"):
        super().__init__(f"driver killed by chaos injection at {where}")
        self.where = where

    def __reduce__(self):
        return (DriverKilled, (self.where,))


class StaleDriverEpoch(ReproError):
    """A worker fenced off a message stamped with an old driver session
    epoch (a zombie driver that lost a crash-restart race, §3.3-style
    control-plane fencing)."""

    def __init__(self, seen_epoch: int, adopted_epoch: int):
        super().__init__(
            f"stale driver epoch {seen_epoch} (worker adopted epoch "
            f"{adopted_epoch}); refusing zombie-driver message"
        )
        self.seen_epoch = seen_epoch
        self.adopted_epoch = adopted_epoch

    def __reduce__(self):
        return (StaleDriverEpoch, (self.seen_epoch, self.adopted_epoch))


class SimulationError(ReproError):
    """The discrete-event simulator detected an internal inconsistency."""


class StreamingError(ReproError):
    """Streaming-layer failure (job generation, source, or sink)."""
