"""Messages flowing through continuous-operator channels.

Data records, checkpoint barriers (for aligned snapshots, the Flink
mechanism referenced in §2.2), low-watermarks for event-time windowing,
and end-of-stream markers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class DataMsg:
    record: Any


@dataclass(frozen=True)
class BarrierMsg:
    """Checkpoint barrier: operators align on these across input channels
    and snapshot their state when barrier ``checkpoint_id`` has arrived on
    every channel."""

    checkpoint_id: int


@dataclass(frozen=True)
class WatermarkMsg:
    """Event-time low watermark: no record with event time below this will
    arrive on the emitting channel."""

    event_time: float


@dataclass(frozen=True)
class EndMsg:
    """End of stream on this channel."""
