"""Operator logic for the continuous-operator engine.

Each operator class is *pure logic*: it consumes records and produces
(possibly zero) output records, holds local state, and knows how to
snapshot/restore that state.  Threading, channels, barrier alignment and
watermark bookkeeping live in :mod:`repro.continuous.engine` — operators
stay testable in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Tuple

from repro.streaming.windows import window_end, window_for


class Operator:
    """Base class for a single *instance* of a logical operator."""

    def setup(self, instance_index: int, parallelism: int) -> None:
        self.instance_index = instance_index
        self.parallelism = parallelism

    def process(self, record: Any) -> Iterable[Any]:
        """Consume one record, yield zero or more output records."""
        raise NotImplementedError

    def on_watermark(self, watermark: float) -> Iterable[Any]:
        """React to an advancing event-time watermark (e.g. close windows)."""
        return ()

    def on_end(self) -> Iterable[Any]:
        """Flush at end-of-stream."""
        return ()

    def snapshot_state(self) -> Any:
        return None

    def restore_state(self, state: Any) -> None:
        if state is not None:
            raise ValueError(f"{type(self).__name__} is stateless, got state")


class MapOperator(Operator):
    """Stateless 1->1 transform."""

    def __init__(self, fn: Callable[[Any], Any]):
        self.fn = fn

    def process(self, record: Any) -> Iterable[Any]:
        yield self.fn(record)


class FlatMapOperator(Operator):
    def __init__(self, fn: Callable[[Any], Iterable[Any]]):
        self.fn = fn

    def process(self, record: Any) -> Iterable[Any]:
        return self.fn(record)


class FilterOperator(Operator):
    def __init__(self, fn: Callable[[Any], bool]):
        self.fn = fn

    def process(self, record: Any) -> Iterable[Any]:
        if self.fn(record):
            yield record


class KeyedReduceOperator(Operator):
    """Running per-key reduction; emits the updated (key, value) on every
    input record (continuous refinement, Flink-style)."""

    def __init__(self, fn: Callable[[Any, Any], Any]):
        self.fn = fn
        self._state: Dict[Any, Any] = {}

    def process(self, record: Any) -> Iterable[Any]:
        key, value = record
        if key in self._state:
            self._state[key] = self.fn(self._state[key], value)
        else:
            self._state[key] = value
        yield (key, self._state[key])

    def snapshot_state(self) -> Any:
        return dict(self._state)

    def restore_state(self, state: Any) -> None:
        self._state = dict(state) if state else {}


class WindowAggOperator(Operator):
    """Event-time tumbling-window aggregation with watermark-triggered
    emission — the Flink implementation of the Yahoo benchmark ("a window
    operator that collects events from the same window and triggers an
    update every 10 seconds", §5.3).

    Input records: ``(key, (event_time, value))``.
    Output on window close: ``(key, window_index, aggregate)``.
    """

    def __init__(self, fn: Callable[[Any, Any], Any], window_size: float):
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        self.fn = fn
        self.window_size = window_size
        self._state: Dict[Tuple[Any, int], Any] = {}

    def process(self, record: Any) -> Iterable[Any]:
        key, (event_time, value) = record
        w = window_for(event_time, self.window_size)
        slot = (key, w)
        if slot in self._state:
            self._state[slot] = self.fn(self._state[slot], value)
        else:
            self._state[slot] = value
        return ()

    def on_watermark(self, watermark: float) -> Iterable[Any]:
        closed: List[Tuple[Any, int, Any]] = []
        for (key, w), value in list(self._state.items()):
            if window_end(w, self.window_size) <= watermark:
                closed.append((key, w, value))
                del self._state[(key, w)]
        closed.sort(key=lambda t: (t[1], str(t[0])))
        return closed

    def on_end(self) -> Iterable[Any]:
        leftover = sorted(self._state.items(), key=lambda kv: (kv[0][1], str(kv[0][0])))
        self._state.clear()
        return [(key, w, value) for (key, w), value in leftover]

    def snapshot_state(self) -> Any:
        return dict(self._state)

    def restore_state(self, state: Any) -> None:
        self._state = dict(state) if state else {}


@dataclass
class OperatorSpec:
    """A logical operator: a factory for its parallel instances plus how
    its input is partitioned across them."""

    name: str
    factory: Callable[[], Operator]
    parallelism: int
    # "rebalance" (round-robin) or "hash" (by record[0], for keyed ops).
    partitioning: str = "rebalance"

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if self.partitioning not in ("rebalance", "hash"):
            raise ValueError(f"unknown partitioning {self.partitioning!r}")
