"""Continuous-operator streaming engine — the Flink-style baseline.

Long-running operators, direct worker-to-worker record flow, aligned
checkpoint barriers, and (crucially, for Fig. 7) stop-the-world rollback
recovery: a single instance failure rolls every operator back to the last
checkpoint and replays.
"""

from repro.continuous.engine import ContinuousJob, SourceSpec
from repro.continuous.messages import BarrierMsg, DataMsg, EndMsg, WatermarkMsg
from repro.continuous.operators import (
    FilterOperator,
    FlatMapOperator,
    KeyedReduceOperator,
    MapOperator,
    Operator,
    OperatorSpec,
    WindowAggOperator,
)

__all__ = [
    "ContinuousJob",
    "SourceSpec",
    "BarrierMsg",
    "DataMsg",
    "EndMsg",
    "WatermarkMsg",
    "FilterOperator",
    "FlatMapOperator",
    "KeyedReduceOperator",
    "MapOperator",
    "Operator",
    "OperatorSpec",
    "WindowAggOperator",
]
