"""Continuous-operator streaming engine (the "Flink" baseline of §2.2).

User programs are a chain of long-running operators, each with parallel
instances placed on their own threads.  Records flow directly between
operator instances through per-channel mailboxes — no centralized
scheduling or per-batch barriers.

Fault tolerance uses *aligned checkpoint barriers* (distributed snapshots):
the job manager injects a barrier at the sources; each instance blocks a
channel once the barrier arrives on it and snapshots its state when every
input channel has delivered the barrier, then forwards it.  Sinks stage
output between barriers and the job manager commits a checkpoint's staged
output only when every instance has acknowledged — two-phase-commit-style
exactly-once.

Recovery is the paper's point of comparison (Fig. 7): on any failure the
*entire* topology is stopped, every operator's state is rolled back to the
last completed checkpoint, sources rewind to the checkpointed offsets, and
all records since are replayed.  There is no partial or parallel recovery.
"""

from __future__ import annotations

import math
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import StreamingError
from repro.continuous.messages import BarrierMsg, DataMsg, EndMsg, WatermarkMsg
from repro.continuous.operators import Operator, OperatorSpec
from repro.dag.partitioning import _stable_hash
from repro.obs.names import SPAN_CHECKPOINT, SPAN_RECOVERY
from repro.obs.trace import NULL_RECORDER, Recorder
from repro.streaming.sinks import Sink
from repro.streaming.sources import RecordLog

_STOP = object()  # mailbox poison pill


@dataclass
class SourceSpec:
    """Reads a :class:`RecordLog` (one instance per log partition), stamps
    event times, and emits periodic watermarks."""

    log: RecordLog
    event_time_fn: Callable[[Any], float]
    watermark_every: int = 100
    stop_at_end: bool = True
    poll_interval_s: float = 0.002


class _Mailbox:
    """One instance's inbox: (channel_id, message) pairs."""

    def __init__(self) -> None:
        self._q: "queue.Queue" = queue.Queue()

    def put(self, channel: int, msg: Any) -> None:
        self._q.put((channel, msg))

    def put_stop(self) -> None:
        self._q.put((_STOP, _STOP))

    def get(self, timeout: Optional[float] = None) -> Tuple[Any, Any]:
        return self._q.get(timeout=timeout)


class _Instance(threading.Thread):
    """A running operator instance: mailbox loop with barrier alignment,
    watermark tracking and end-of-stream handling."""

    def __init__(
        self,
        job: "ContinuousJob",
        op_pos: int,
        spec: OperatorSpec,
        operator: Operator,
        num_inputs: int,
    ):
        super().__init__(name=f"{spec.name}-{operator.instance_index}", daemon=True)
        self.job = job
        self.op_pos = op_pos
        self.spec = spec
        self.operator = operator
        self.num_inputs = num_inputs
        self.mailbox = _Mailbox()
        self._blocked: set = set()
        self._stash: deque = deque()
        self._per_channel_wm: Dict[int, float] = {}
        self._current_wm = -math.inf
        self._ended: set = set()
        self._barrier_counts: Dict[int, int] = {}
        self._rr = 0
        self.dead = False  # set by failure injection

    # ------------------------------------------------------------------
    def run(self) -> None:
        while True:
            if self._stash and not self._blocked:
                channel, msg = self._stash.popleft()
            else:
                channel, msg = self.mailbox.get()
            if msg is _STOP:
                return
            if self.dead:
                return
            if channel in self._blocked:
                self._stash.append((channel, msg))
                continue
            if not self._handle(channel, msg):
                return

    def _handle(self, channel: int, msg: Any) -> bool:
        if isinstance(msg, DataMsg):
            for out in self.operator.process(msg.record):
                self._emit(out)
            return True
        if isinstance(msg, WatermarkMsg):
            self._per_channel_wm[channel] = max(
                self._per_channel_wm.get(channel, -math.inf), msg.event_time
            )
            self._maybe_advance_watermark()
            return True
        if isinstance(msg, BarrierMsg):
            live = self.num_inputs - len(self._ended)
            if not self.job.aligned_checkpoints:
                # Unaligned: never block; snapshot once every channel's
                # barrier has arrived.  Records processed meanwhile are in
                # the snapshot AND will be replayed (at-least-once).
                count = self._barrier_counts.get(msg.checkpoint_id, 0) + 1
                self._barrier_counts[msg.checkpoint_id] = count
                if count >= live:
                    del self._barrier_counts[msg.checkpoint_id]
                    self._snapshot_and_forward(msg.checkpoint_id)
                return True
            self._blocked.add(channel)
            if self._aligned(msg.checkpoint_id):
                self._snapshot_and_forward(msg.checkpoint_id)
                self._blocked.clear()
            return True
        if isinstance(msg, EndMsg):
            self._ended.add(channel)
            self._per_channel_wm[channel] = math.inf
            self._maybe_advance_watermark()
            if len(self._ended) >= self.num_inputs:
                for out in self.operator.on_end():
                    self._emit(out)
                self.job.broadcast_downstream(self.op_pos, EndMsg())
                self.job.instance_finished(self)
                return False
            return True
        raise StreamingError(f"unknown message {msg!r}")

    def _aligned(self, _checkpoint_id: int) -> bool:
        # Ended channels no longer carry barriers.
        live = self.num_inputs - len(self._ended)
        return len(self._blocked) >= live

    def _snapshot_and_forward(self, checkpoint_id: int) -> None:
        state = self.operator.snapshot_state()
        self.job.broadcast_downstream(self.op_pos, BarrierMsg(checkpoint_id))
        self.job.ack_checkpoint(
            checkpoint_id, self.spec.name, self.operator.instance_index, state
        )

    def _maybe_advance_watermark(self) -> None:
        if len(self._per_channel_wm) < self.num_inputs:
            return
        new_wm = min(self._per_channel_wm.values())
        if new_wm > self._current_wm:
            self._current_wm = new_wm
            for out in self.operator.on_watermark(new_wm):
                self._emit(out)
            if new_wm < math.inf:
                self.job.broadcast_downstream(self.op_pos, WatermarkMsg(new_wm))

    def _emit(self, record: Any) -> None:
        self._rr = self.job.send_downstream(self.op_pos, record, self._rr)


class _SinkInstance(threading.Thread):
    """Terminal instance: stages records between barriers; staged output
    travels with the checkpoint ack and is committed by the job manager
    when the checkpoint completes (two-phase commit)."""

    def __init__(self, job: "ContinuousJob", index: int, num_inputs: int):
        super().__init__(name=f"sink-{index}", daemon=True)
        self.job = job
        self.index = index
        self.num_inputs = num_inputs
        self.mailbox = _Mailbox()
        self._staged: List[Any] = []
        self._blocked: set = set()
        self._stash: deque = deque()
        self._ended: set = set()
        self._barrier_counts: Dict[int, int] = {}
        self.dead = False

    def run(self) -> None:
        while True:
            if self._stash and not self._blocked:
                channel, msg = self._stash.popleft()
            else:
                channel, msg = self.mailbox.get()
            if msg is _STOP:
                return
            if self.dead:
                return
            if channel in self._blocked:
                self._stash.append((channel, msg))
                continue
            if isinstance(msg, DataMsg):
                self._staged.append(msg.record)
            elif isinstance(msg, BarrierMsg):
                live = self.num_inputs - len(self._ended)
                if not self.job.aligned_checkpoints:
                    count = self._barrier_counts.get(msg.checkpoint_id, 0) + 1
                    self._barrier_counts[msg.checkpoint_id] = count
                    if count >= live:
                        del self._barrier_counts[msg.checkpoint_id]
                        staged, self._staged = self._staged, []
                        self.job.ack_sink(msg.checkpoint_id, self.index, staged)
                    continue
                self._blocked.add(channel)
                if len(self._blocked) >= live:
                    staged, self._staged = self._staged, []
                    self.job.ack_sink(msg.checkpoint_id, self.index, staged)
                    self._blocked.clear()
            elif isinstance(msg, EndMsg):
                self._ended.add(channel)
                if len(self._ended) >= self.num_inputs:
                    staged, self._staged = self._staged, []
                    self.job.sink_ended(self.index, staged)
                    return
            # Watermarks carry no information for the sink.


class _SourceInstance(threading.Thread):
    """Reads one log partition, stamps event times, injects barriers on
    request from the job manager."""

    def __init__(self, job: "ContinuousJob", spec: SourceSpec, partition: int,
                 start_offset: int):
        super().__init__(name=f"source-{partition}", daemon=True)
        self.job = job
        self.spec = spec
        self.partition = partition
        self.offset = start_offset
        self._pending_barriers: "queue.Queue[int]" = queue.Queue()
        self._stop_flag = threading.Event()
        self._max_event_time = -math.inf
        self._since_wm = 0
        self._rr = 0
        self.dead = False

    def request_barrier(self, checkpoint_id: int) -> None:
        self._pending_barriers.put(checkpoint_id)

    def stop(self) -> None:
        self._stop_flag.set()

    def run(self) -> None:
        log = self.spec.log
        while not self._stop_flag.is_set() and not self.dead:
            try:
                checkpoint_id = self._pending_barriers.get_nowait()
            except queue.Empty:
                checkpoint_id = None
            if checkpoint_id is not None:
                self.job.broadcast_downstream(-1, BarrierMsg(checkpoint_id))
                self.job.ack_checkpoint(
                    checkpoint_id, "source", self.partition, {"offset": self.offset}
                )
                continue
            end = log.end_offset(self.partition)
            if self.offset >= end:
                if self.spec.stop_at_end and self.job.input_closed.is_set():
                    break
                time.sleep(self.spec.poll_interval_s)
                continue
            record = log.read(self.partition, self.offset, self.offset + 1)[0]
            self.offset += 1
            et = self.spec.event_time_fn(record)
            self._max_event_time = max(self._max_event_time, et)
            self._rr = self.job.send_downstream(-1, record, self._rr)
            self._since_wm += 1
            if self._since_wm >= self.spec.watermark_every:
                self._since_wm = 0
                self.job.broadcast_downstream(
                    -1, WatermarkMsg(self._max_event_time)
                )
        if not self.dead and not self._stop_flag.is_set():
            if self._max_event_time > -math.inf:
                self.job.broadcast_downstream(-1, WatermarkMsg(self._max_event_time))
            self.job.broadcast_downstream(-1, EndMsg())


@dataclass
class _CompletedCheckpoint:
    checkpoint_id: int
    operator_states: Dict[Tuple[str, int], Any]
    source_offsets: Dict[int, int]


class ContinuousJob:
    """Job manager + topology for one continuous streaming job."""

    def __init__(
        self,
        source: SourceSpec,
        operators: List[OperatorSpec],
        sink: Sink,
        sink_parallelism: int = 1,
        aligned_checkpoints: bool = True,
        tracer: Optional[Recorder] = None,
    ):
        if not operators:
            raise StreamingError("need at least one operator")
        self.source_spec = source
        self.operator_specs = operators
        self.user_sink = sink
        self.sink_parallelism = sink_parallelism
        self.tracer = tracer if tracer is not None else NULL_RECORDER
        # Aligned barriers block already-barriered channels until the
        # barrier arrives everywhere: a consistent cut, hence exactly-once
        # (Flink's default).  Unaligned mode keeps processing while waiting
        # for the remaining barriers, so records that overtook the cut are
        # included in the snapshot AND replayed after recovery ->
        # at-least-once (the sync vs async checkpoint trade-off of
        # section 2.2: no alignment stall, weaker semantics).
        self.aligned_checkpoints = aligned_checkpoints
        self.input_closed = threading.Event()
        self.finished = threading.Event()
        self.records_processed: List = []

        self._lock = threading.Lock()
        self._sources: List[_SourceInstance] = []
        self._instances: List[List[_Instance]] = []
        self._sinks: List[_SinkInstance] = []
        self._next_checkpoint_id = 0
        self._pending_acks: Dict[int, Dict[Tuple[str, int], Any]] = {}
        self._pending_sink_staged: Dict[int, Dict[int, List[Any]]] = {}
        self._completed: List[_CompletedCheckpoint] = []
        self._sink_ended: Dict[int, List[Any]] = {}
        self._finished_instances: set = set()
        self._started = False
        self.recoveries = 0
        self.checkpoint_times: List[float] = []
        # checkpoint_id -> open ``checkpoint`` span (barrier injection to
        # commit, i.e. the paper's "checkpoint duration").
        self._cp_spans: Dict[int, Any] = {}

    # ------------------------------------------------------------------
    # Topology wiring
    # ------------------------------------------------------------------
    def _total_instances(self) -> int:
        return (
            self.source_spec.log.num_partitions
            + sum(s.parallelism for s in self.operator_specs)
            + self.sink_parallelism
        )

    def start(
        self,
        restore_from: Optional[_CompletedCheckpoint] = None,
    ) -> None:
        if self._started:
            raise StreamingError("job already started")
        self._started = True
        self._finished_instances = set()
        num_source = self.source_spec.log.num_partitions
        self._instances = []
        prev_parallelism = num_source
        for pos, spec in enumerate(self.operator_specs):
            row: List[_Instance] = []
            for i in range(spec.parallelism):
                op = spec.factory()
                op.setup(i, spec.parallelism)
                if restore_from is not None:
                    op.restore_state(
                        restore_from.operator_states.get((spec.name, i))
                    )
                row.append(_Instance(self, pos, spec, op, prev_parallelism))
            self._instances.append(row)
            prev_parallelism = spec.parallelism
        self._sinks = [
            _SinkInstance(self, i, prev_parallelism)
            for i in range(self.sink_parallelism)
        ]
        self._sources = []
        for p in range(num_source):
            start_offset = 0
            if restore_from is not None:
                start_offset = restore_from.source_offsets.get(p, 0)
            self._sources.append(
                _SourceInstance(self, self.source_spec, p, start_offset)
            )
        for row in self._instances:
            for inst in row:
                inst.start()
        for sink in self._sinks:
            sink.start()
        for src in self._sources:
            src.start()

    # ------------------------------------------------------------------
    # Routing (called from instance threads)
    # ------------------------------------------------------------------
    def _downstream_of(self, op_pos: int):
        """(mailboxes, partitioning) for the layer after ``op_pos``;
        op_pos == -1 means the sources."""
        next_pos = op_pos + 1
        if next_pos < len(self.operator_specs):
            spec = self.operator_specs[next_pos]
            return [inst.mailbox for inst in self._instances[next_pos]], spec.partitioning
        return [s.mailbox for s in self._sinks], "rebalance"

    def _channel_of(self, op_pos: int, sender_index: int) -> int:
        return sender_index

    def send_downstream(self, op_pos: int, record: Any, rr: int) -> int:
        mailboxes, partitioning = self._downstream_of(op_pos)
        sender = self._sender_index(op_pos)
        if partitioning == "hash":
            key = record[0]
            target = _stable_hash(key) % len(mailboxes)
        else:
            target = rr % len(mailboxes)
            rr += 1
        mailboxes[target].put(sender, DataMsg(record))
        return rr

    def broadcast_downstream(self, op_pos: int, msg: Any) -> None:
        mailboxes, _ = self._downstream_of(op_pos)
        sender = self._sender_index(op_pos)
        for mb in mailboxes:
            mb.put(sender, msg)

    def _sender_index(self, op_pos: int) -> int:
        ident = threading.current_thread()
        if isinstance(ident, (_Instance,)):
            return ident.operator.instance_index
        if isinstance(ident, _SourceInstance):
            return ident.partition
        if isinstance(ident, _SinkInstance):
            return ident.index
        return 0

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def trigger_checkpoint(self) -> int:
        with self._lock:
            checkpoint_id = self._next_checkpoint_id
            self._next_checkpoint_id += 1
            self._pending_acks[checkpoint_id] = {}
            self._pending_sink_staged[checkpoint_id] = {}
            if self.tracer.enabled:
                self._cp_spans[checkpoint_id] = self.tracer.start_span(
                    SPAN_CHECKPOINT,
                    root=True,
                    actor="jobmanager",
                    checkpoint_id=checkpoint_id,
                    aligned=self.aligned_checkpoints,
                )
        for src in self._sources:
            src.request_barrier(checkpoint_id)
        return checkpoint_id

    def ack_checkpoint(
        self, checkpoint_id: int, op_name: str, index: int, state: Any
    ) -> None:
        with self._lock:
            acks = self._pending_acks.get(checkpoint_id)
            if acks is None:
                return
            acks[(op_name, index)] = state
            self._maybe_complete(checkpoint_id)

    def ack_sink(self, checkpoint_id: int, index: int, staged: List[Any]) -> None:
        with self._lock:
            if checkpoint_id not in self._pending_acks:
                return
            self._pending_sink_staged[checkpoint_id][index] = staged
            self._pending_acks[checkpoint_id][("sink", index)] = None
            self._maybe_complete(checkpoint_id)

    def _maybe_complete(self, checkpoint_id: int) -> None:
        acks = self._pending_acks[checkpoint_id]
        if len(acks) < self._total_instances():
            return
        operator_states = {
            key: state for key, state in acks.items() if key[0] not in ("source", "sink")
        }
        source_offsets = {
            idx: state["offset"]
            for (name, idx), state in acks.items()
            if name == "source"
        }
        completed = _CompletedCheckpoint(checkpoint_id, operator_states, source_offsets)
        self._completed.append(completed)
        self.checkpoint_times.append(time.monotonic())
        staged_by_sink = self._pending_sink_staged.pop(checkpoint_id)
        del self._pending_acks[checkpoint_id]
        records: List[Any] = []
        for idx in sorted(staged_by_sink):
            records.extend(staged_by_sink[idx])
        self.user_sink.commit(checkpoint_id, records)
        span = self._cp_spans.pop(checkpoint_id, None)
        if span is not None:
            span.annotate(instances=len(acks), committed_records=len(records))
            span.end()

    def completed_checkpoints(self) -> int:
        with self._lock:
            return len(self._completed)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def instance_finished(self, instance: "_Instance") -> None:
        with self._lock:
            self._finished_instances.add(
                (instance.spec.name, instance.operator.instance_index)
            )

    def sink_ended(self, index: int, staged: List[Any]) -> None:
        with self._lock:
            self._sink_ended[index] = staged
            if len(self._sink_ended) >= self.sink_parallelism:
                records: List[Any] = []
                for idx in sorted(self._sink_ended):
                    records.extend(self._sink_ended[idx])
                if records:
                    self.user_sink.commit(self._next_checkpoint_id, records)
                self.finished.set()

    def close_input_and_wait(self, timeout: float = 30.0) -> None:
        """Declare the log complete and wait for the topology to drain."""
        self.input_closed.set()
        if not self.finished.wait(timeout):
            raise StreamingError("continuous job did not finish in time")

    # ------------------------------------------------------------------
    # Failure injection + global restart recovery
    # ------------------------------------------------------------------
    def kill_operator_instance(self, op_name: str, index: int) -> None:
        """Crash one instance, then perform whole-topology recovery: stop
        everything, roll back to the last completed checkpoint, replay."""
        for row in self._instances:
            for inst in row:
                if inst.spec.name == op_name and inst.operator.instance_index == index:
                    inst.dead = True
                    inst.mailbox.put_stop()
        self.recover()

    def recover(self) -> None:
        """Stop-the-world rollback to the last completed checkpoint."""
        with self.tracer.start_span(
            SPAN_RECOVERY, root=True, actor="jobmanager", kind="global_restart"
        ) as span:
            self._stop_all()
            with self._lock:
                self.recoveries += 1
                restore = self._completed[-1] if self._completed else None
                # Uncommitted checkpoints and staged sink output (and their
                # open checkpoint spans) are discarded.
                for cp_id, cp_span in list(self._cp_spans.items()):
                    cp_span.annotate(aborted=True)
                    cp_span.end()
                    del self._cp_spans[cp_id]
                self._pending_acks.clear()
                self._pending_sink_staged.clear()
                self._sink_ended.clear()
            self._started = False
            self.start(restore_from=restore)
            span.annotate(
                restored_checkpoint=None if restore is None else restore.checkpoint_id
            )

    def _stop_all(self) -> None:
        for src in self._sources:
            src.stop()
        for src in self._sources:
            src.join(timeout=5.0)
        for row in self._instances:
            for inst in row:
                inst.mailbox.put_stop()
        for sink in self._sinks:
            sink.mailbox.put_stop()
        for row in self._instances:
            for inst in row:
                inst.join(timeout=5.0)
        for sink in self._sinks:
            sink.join(timeout=5.0)

    def shutdown(self) -> None:
        self._stop_all()
