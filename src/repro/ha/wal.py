"""Append-only, CRC-framed write-ahead log for the driver control plane.

On-disk format — one *record* per journaled transition, the
:mod:`repro.net.framing` layout adapted for storage (a CRC field replaces
the response/request kind, because disk corruption is torn writes and
bit rot, not desynchronized streams):

====== ====== ===========================================================
offset size   field
====== ====== ===========================================================
0      2      magic ``b"RW"``
2      1      format version (1)
3      1      record type tag (currently always 1 = pickled record)
4      4      payload length, unsigned big-endian
8      4      CRC32 of the payload, unsigned big-endian
12     n      payload: pickled ``(record_type, payload_dict)``
====== ====== ===========================================================

Durability model: appends accumulate in the OS page cache and are
fsynced every ``fsync_every_n`` records (group commits force a sync), so
a crash can lose at most the unsynced suffix — never a prefix, never the
snapshot.  The reader is correspondingly *prefix-tolerant*: a truncated
header, short payload, or CRC mismatch at the tail ends replay cleanly
at the last good record instead of poisoning it (torn tails are the
expected crash artifact, not an error).

Compaction: :meth:`WriteAheadLog.compact` writes the folded live state
as a single-record ``snapshot.bin`` (tmp + fsync + atomic rename), then
truncates ``wal.log`` — replay cost stays O(live state), not O(history).
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import CheckpointError
from repro.common.metrics import (
    COUNT_HA_WAL_APPENDS,
    COUNT_HA_WAL_BYTES,
    COUNT_HA_WAL_FSYNCS,
    COUNT_HA_WAL_REPLAYS,
    COUNT_HA_WAL_SNAPSHOTS,
    GAUGE_HA_WAL_LAG,
)

MAGIC = b"RW"
VERSION = 1
RT_RECORD = 1

HEADER = struct.Struct(">2sBBII")
HEADER_SIZE = HEADER.size  # 12 bytes

# Corruption guard, mirroring repro.net.framing: a garbled length field
# must not read as a multi-gigabyte allocation.
MAX_RECORD = 1 << 30

LOG_NAME = "wal.log"
SNAPSHOT_NAME = "snapshot.bin"


@dataclass(frozen=True)
class WalRecord:
    """One replayed journal record."""

    record_type: str
    payload: Dict[str, Any]


def encode_record(record_type: str, payload: Dict[str, Any]) -> bytes:
    """One framed record: header + pickled ``(record_type, payload)``."""
    body = pickle.dumps((record_type, payload), protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_RECORD:
        raise CheckpointError(
            f"WAL record of {len(body)} bytes exceeds the record limit"
        )
    return HEADER.pack(MAGIC, VERSION, RT_RECORD, len(body), zlib.crc32(body)) + body


def _decode_records(data: bytes) -> Tuple[List[WalRecord], int]:
    """Decode a byte stream of framed records, tolerating a torn tail.

    Returns ``(records, dropped_bytes)``: every record up to the first
    truncated/corrupt frame, and how many trailing bytes were dropped.
    Corruption never raises — a WAL tail damaged by the very crash we are
    recovering from must not block that recovery.
    """
    records: List[WalRecord] = []
    offset = 0
    total = len(data)
    while offset + HEADER_SIZE <= total:
        magic, version, rtype, length, crc = HEADER.unpack_from(data, offset)
        if magic != MAGIC or version != VERSION or rtype != RT_RECORD:
            break
        if length > MAX_RECORD or offset + HEADER_SIZE + length > total:
            break
        body = data[offset + HEADER_SIZE : offset + HEADER_SIZE + length]
        if zlib.crc32(body) != crc:
            break
        try:
            record_type, payload = pickle.loads(body)
        except Exception:
            break
        records.append(WalRecord(str(record_type), payload))
        offset += HEADER_SIZE + length
    return records, total - offset


def read_wal_records(path: str) -> Tuple[List[WalRecord], int]:
    """Replay one WAL file from disk; missing file reads as empty."""
    try:
        with open(path, "rb") as f:
            data = f.read()
    except FileNotFoundError:
        return [], 0
    return _decode_records(data)


def _fsync_dir(dirname: str) -> None:
    # Make the rename itself durable; best-effort on platforms where
    # directories cannot be opened/fsynced.
    try:
        fd = os.open(dirname, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class WriteAheadLog:
    """The driver's journal file pair: ``snapshot.bin`` + ``wal.log``."""

    def __init__(self, wal_dir: str, fsync_every_n: int = 8, metrics=None):
        if fsync_every_n < 1:
            raise CheckpointError("fsync_every_n must be >= 1")
        self.wal_dir = wal_dir
        self.fsync_every_n = fsync_every_n
        self.metrics = metrics
        os.makedirs(wal_dir, exist_ok=True)
        self.log_path = os.path.join(wal_dir, LOG_NAME)
        self.snapshot_path = os.path.join(wal_dir, SNAPSHOT_NAME)
        self._file = open(self.log_path, "ab")
        self._unsynced = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def append(
        self, record_type: str, payload: Dict[str, Any], force_sync: bool = False
    ) -> None:
        if self._closed:
            raise CheckpointError("append on a closed WriteAheadLog")
        frame = encode_record(record_type, payload)
        self._file.write(frame)
        self._unsynced += 1
        if self.metrics is not None:
            self.metrics.counter(COUNT_HA_WAL_APPENDS).add(1)
            self.metrics.counter(COUNT_HA_WAL_BYTES).add(len(frame))
            self.metrics.gauge(GAUGE_HA_WAL_LAG).set(self._unsynced)
        if force_sync or self._unsynced >= self.fsync_every_n:
            self.sync()

    def sync(self) -> None:
        """Flush + fsync; after this every appended record is durable."""
        if self._closed or self._unsynced == 0:
            return
        self._file.flush()
        os.fsync(self._file.fileno())
        self._unsynced = 0
        if self.metrics is not None:
            self.metrics.counter(COUNT_HA_WAL_FSYNCS).add(1)
            self.metrics.gauge(GAUGE_HA_WAL_LAG).set(0)

    def compact(self, state: Dict[str, Any]) -> None:
        """Fold the live state into ``snapshot.bin`` and truncate the log.

        The snapshot lands via tmp-file + fsync + atomic rename, so a
        crash during compaction leaves either the old snapshot + full
        log or the new snapshot — never a half-written snapshot.
        """
        if self._closed:
            raise CheckpointError("compact on a closed WriteAheadLog")
        self.sync()
        tmp_path = self.snapshot_path + ".tmp"
        frame = encode_record("snapshot", state)
        with open(tmp_path, "wb") as tmp:
            tmp.write(frame)
            tmp.flush()
            os.fsync(tmp.fileno())
        os.replace(tmp_path, self.snapshot_path)
        _fsync_dir(self.wal_dir)
        # Only now is the snapshot durable; the log prefix it covers can go.
        self._file.truncate(0)
        self._file.flush()
        os.fsync(self._file.fileno())
        self._unsynced = 0
        if self.metrics is not None:
            self.metrics.counter(COUNT_HA_WAL_SNAPSHOTS).add(1)
            self.metrics.counter(COUNT_HA_WAL_BYTES).add(len(frame))
            self.metrics.gauge(GAUGE_HA_WAL_LAG).set(0)

    def close(self) -> None:
        if self._closed:
            return
        try:
            self.sync()
        finally:
            self._closed = True
            self._file.close()

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def load(self) -> Tuple[Optional[Dict[str, Any]], List[WalRecord], Dict[str, int]]:
        """Replay snapshot + tail from this WAL's directory.

        Returns ``(snapshot_state, tail_records, stats)``; see
        :func:`load_wal` for the semantics.
        """
        return load_wal(self.wal_dir, metrics=self.metrics)


def load_wal(
    wal_dir: str, metrics=None
) -> Tuple[Optional[Dict[str, Any]], List[WalRecord], Dict[str, int]]:
    """Replay a WAL directory: the snapshot (if any) plus the log tail.

    Returns ``(snapshot_state, tail_records, stats)`` where ``stats``
    counts records replayed and tail bytes dropped as torn.  Never raises
    on corruption — the whole point is surviving a crashed writer.
    """
    snap_records, snap_dropped = read_wal_records(
        os.path.join(wal_dir, SNAPSHOT_NAME)
    )
    snapshot: Optional[Dict[str, Any]] = None
    if snap_records and snap_records[0].record_type == "snapshot":
        snapshot = snap_records[0].payload
    tail, tail_dropped = read_wal_records(os.path.join(wal_dir, LOG_NAME))
    replayed = len(tail) + (1 if snapshot is not None else 0)
    if metrics is not None and replayed:
        metrics.counter(COUNT_HA_WAL_REPLAYS).add(replayed)
    return (
        snapshot,
        tail,
        {
            "records_replayed": len(tail),
            "snapshot_loaded": 1 if snapshot is not None else 0,
            "torn_bytes_dropped": tail_dropped + snap_dropped,
        },
    )
