"""The control-plane journal: what the driver must remember to restart.

Every record folds deterministically into one live-state dict, so the
journal IS the fold — replay applies the same ``_fold`` the writer used,
and compaction just persists the folded dict.  Journaled transitions
(the §3.3 group-boundary commit points, per ISSUE 10):

* ``session`` — a new driver session epoch (always fsynced: the epoch is
  the fencing token, it must never be resurrected lower).
* ``membership`` — the live worker set + template epoch after a
  join/decommission.
* ``job`` — job submission/completion bookkeeping.
* ``group_commit`` — one committed streaming group: batch ids, a digest
  of map-output locations, and the sink high-water mark (always
  fsynced: this is the recovery line).
* ``checkpoint`` — streaming checkpoint metadata plus the state-store
  snapshots needed to resume without re-running history.
* ``shard_map`` — a key-range shard-map flip at an elastic boundary.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.common.metrics import COUNT_HA_RECOVERIES
from repro.ha.wal import WalRecord, WriteAheadLog, load_wal


def _initial_state() -> Dict[str, Any]:
    return {
        "epoch": 0,
        "workers": [],
        "template_epoch": 0,
        "jobs": {"submitted": 0, "completed": 0, "open": []},
        "committed_batches": set(),
        "last_group": None,
        "checkpoint": None,
        "shard_map": None,
    }


def _fold(state: Dict[str, Any], record: WalRecord) -> None:
    """Apply one journal record to the live-state dict (writer and
    replayer share this, so they cannot disagree)."""
    payload = record.payload
    rtype = record.record_type
    if rtype == "session":
        state["epoch"] = max(state["epoch"], int(payload["epoch"]))
    elif rtype == "membership":
        state["workers"] = list(payload["workers"])
        state["template_epoch"] = int(payload.get("template_epoch", 0))
    elif rtype == "job":
        jobs = state["jobs"]
        key = payload.get("key")
        if payload["event"] == "submitted":
            jobs["submitted"] += 1
            if key is not None and key not in jobs["open"]:
                jobs["open"].append(key)
        elif payload["event"] == "completed":
            jobs["completed"] += 1
            if key in jobs["open"]:
                jobs["open"].remove(key)
    elif rtype == "group_commit":
        state["committed_batches"].update(payload["batch_ids"])
        state["last_group"] = {
            "batch_ids": list(payload["batch_ids"]),
            "locations_digest": payload.get("locations_digest", ""),
            "sink_hwm": sorted(payload.get("sink_hwm") or payload["batch_ids"]),
        }
        # A committed group retires the jobs it carried.
        jobs = state["jobs"]
        jobs["open"] = [
            k for k in jobs["open"] if k not in set(payload.get("job_keys", []))
        ]
    elif rtype == "checkpoint":
        state["checkpoint"] = {
            "batch_index": int(payload["batch_index"]),
            "next_batch": int(payload["next_batch"]),
            "state_snapshots": payload.get("state_snapshots", {}),
            "extra": payload.get("extra", {}),
        }
    elif rtype == "shard_map":
        state["shard_map"] = payload.get("shard_map")
    # Unknown record types fold to nothing: an old reader replaying a
    # newer journal skips what it does not understand.


def _fold_all(
    snapshot: Optional[Dict[str, Any]], tail: List[WalRecord]
) -> Dict[str, Any]:
    state = _initial_state()
    if snapshot is not None:
        state.update(snapshot)
        # Sets pickle fine but a hand-edited snapshot may carry a list.
        state["committed_batches"] = set(state.get("committed_batches") or ())
    for record in tail:
        _fold(state, record)
    return state


@dataclass
class RecoveredState:
    """What a crashed driver's journal says the world looked like."""

    session_epoch: int
    workers: List[str]
    template_epoch: int
    committed_batches: frozenset
    checkpoint: Optional[Dict[str, Any]]
    shard_map: Any
    jobs: Dict[str, Any]
    replay_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def next_batch(self) -> int:
        """First batch the restarted streaming loop should run."""
        if self.checkpoint is not None:
            return int(self.checkpoint.get("next_batch", 0))
        return 0


def _recovered_from(state: Dict[str, Any], stats: Dict[str, int]) -> RecoveredState:
    return RecoveredState(
        session_epoch=int(state["epoch"]),
        workers=list(state["workers"]),
        template_epoch=int(state["template_epoch"]),
        committed_batches=frozenset(state["committed_batches"]),
        checkpoint=state["checkpoint"],
        shard_map=state["shard_map"],
        jobs=dict(state["jobs"]),
        replay_stats=dict(stats),
    )


class ControlJournal:
    """Drives the WAL on behalf of the driver/streaming control plane.

    Thread-safe: the driver journals membership and job events from its
    own lock while the streaming loop journals group commits.
    """

    def __init__(
        self,
        wal_dir: str,
        fsync_every_n: int = 8,
        snapshot_every_n_groups: int = 4,
        metrics=None,
    ):
        self.wal = WriteAheadLog(wal_dir, fsync_every_n=fsync_every_n, metrics=metrics)
        self.snapshot_every_n_groups = max(1, snapshot_every_n_groups)
        self.metrics = metrics
        self._lock = threading.Lock()
        snapshot, tail, stats = self.wal.load()
        self._state = _fold_all(snapshot, tail)
        # The world as the previous incarnation left it, before this
        # session touches anything; LocalCluster.recover reads this.
        self.recovered = _recovered_from(self._state, stats)
        self._groups_since_compact = 0

    @property
    def wal_dir(self) -> str:
        return self.wal.wal_dir

    def open_session(self) -> int:
        """Claim the next driver session epoch (fenced, durable)."""
        with self._lock:
            epoch = int(self._state["epoch"]) + 1
            self._state["epoch"] = epoch
            self.wal.append("session", {"epoch": epoch}, force_sync=True)
            return epoch

    def _append(self, record_type: str, payload: Dict[str, Any], force_sync: bool):
        record = WalRecord(record_type, payload)
        _fold(self._state, record)
        self.wal.append(record_type, payload, force_sync=force_sync)

    def record_membership(self, workers, template_epoch: int = 0) -> None:
        with self._lock:
            self._append(
                "membership",
                {"workers": sorted(workers), "template_epoch": template_epoch},
                force_sync=False,
            )

    def record_job(self, event: str, job_id: int, key: Any = None) -> None:
        with self._lock:
            self._append(
                "job", {"event": event, "job_id": job_id, "key": key}, force_sync=False
            )

    def record_group_commit(
        self,
        batch_ids,
        locations_digest: str = "",
        sink_hwm=None,
        job_keys=None,
    ) -> None:
        """One streaming group committed — the durable recovery line."""
        with self._lock:
            self._append(
                "group_commit",
                {
                    "batch_ids": list(batch_ids),
                    "locations_digest": locations_digest,
                    "sink_hwm": sorted(sink_hwm) if sink_hwm is not None else None,
                    "job_keys": list(job_keys or ()),
                },
                force_sync=True,
            )
            self._groups_since_compact += 1
            if self._groups_since_compact >= self.snapshot_every_n_groups:
                self.wal.compact(self._state)
                self._groups_since_compact = 0

    def record_checkpoint(
        self, batch_index: int, next_batch: int, state_snapshots, extra=None
    ) -> None:
        with self._lock:
            self._append(
                "checkpoint",
                {
                    "batch_index": batch_index,
                    "next_batch": next_batch,
                    "state_snapshots": state_snapshots,
                    "extra": dict(extra or {}),
                },
                force_sync=True,
            )

    def record_shard_map(self, shard_map) -> None:
        with self._lock:
            self._append("shard_map", {"shard_map": shard_map}, force_sync=False)

    def sync(self) -> None:
        with self._lock:
            self.wal.sync()

    def close(self) -> None:
        with self._lock:
            self.wal.close()

    @staticmethod
    def recover(wal_dir: str, metrics=None) -> RecoveredState:
        """Read-only replay of a WAL directory into a RecoveredState."""
        snapshot, tail, stats = load_wal(wal_dir, metrics=metrics)
        state = _fold_all(snapshot, tail)
        if metrics is not None:
            metrics.counter(COUNT_HA_RECOVERIES).add(1)
        return _recovered_from(state, stats)
