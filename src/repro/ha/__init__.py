"""Driver fault tolerance: control-plane WAL + crash-restart recovery.

The driver is the only stateful singleton in the engine; everything else
already survives chaos (worker kills, dropped frames, mid-migration
losses).  This package closes that gap with three pieces:

* :mod:`repro.ha.wal` — an append-only, fsync-batched, CRC-framed
  write-ahead log (the ``repro.net.framing`` record style, on disk) with
  snapshot compaction and a torn-tail-tolerant reader.
* :mod:`repro.ha.journal` — the control-plane journal layered on the
  WAL: session epochs, membership + template epochs, job events, group
  commits (the §3.3 commit points), streaming checkpoint metadata and
  sink high-water marks, folded into a live-state dict so compaction and
  replay stay O(live state).
* Session-epoch fencing — the journal hands out a monotonically
  increasing driver session epoch; the driver stamps it into
  worker-bound messages so a zombie driver's traffic is refused
  (:class:`repro.common.errors.StaleDriverEpoch`) instead of corrupting
  a recovered run.

Entry points: ``LocalCluster`` opens a journal when ``HaConf.enabled``;
``LocalCluster.recover(wal_dir)`` rebuilds a cluster from the journal.
"""

from repro.ha.journal import ControlJournal, RecoveredState
from repro.ha.wal import WalRecord, WriteAheadLog, read_wal_records

__all__ = [
    "ControlJournal",
    "RecoveredState",
    "WalRecord",
    "WriteAheadLog",
    "read_wal_records",
]
