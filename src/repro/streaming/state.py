"""Streaming state and synchronous checkpoints (§3.3).

State is keyed (e.g. ``(campaign, window) -> count``) and updated once per
micro-batch from that batch's aggregated output.  Checkpoints are
synchronous, taken at group boundaries by default, and capture everything
needed to resume: the batch index, a deep snapshot of every state store,
and the source position (which batches were planned).

Recovery = restore the last checkpoint, roll the source back, and replay
the suffix of micro-batches; deterministic batch contents plus idempotent
sinks give exactly-once output (prefix integrity).
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


class StateStore:
    """A named key->state map with snapshot/restore."""

    def __init__(self, name: str):
        self.name = name
        self._state: Dict[Any, Any] = {}
        self._lock = threading.Lock()

    def get(self, key: Any, default: Any = None) -> Any:
        with self._lock:
            return self._state.get(key, default)

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            self._state[key] = value

    def delete(self, key: Any) -> None:
        with self._lock:
            self._state.pop(key, None)

    def update_many(
        self, updates: Dict[Any, Any], merge: Callable[[Any, Any], Any]
    ) -> None:
        """Merge a batch of (key, value) aggregates into the state."""
        with self._lock:
            for key, value in updates.items():
                if key in self._state:
                    self._state[key] = merge(self._state[key], value)
                else:
                    self._state[key] = value

    def items(self) -> List:
        with self._lock:
            return list(self._state.items())

    def __len__(self) -> int:
        with self._lock:
            return len(self._state)

    def snapshot(self) -> Dict[Any, Any]:
        with self._lock:
            return copy.deepcopy(self._state)

    def restore(self, snapshot: Dict[Any, Any]) -> None:
        with self._lock:
            self._state = copy.deepcopy(snapshot)


@dataclass
class Checkpoint:
    """One synchronous checkpoint."""

    batch_index: int  # last batch whose effects are included
    state_snapshots: Dict[str, Dict[Any, Any]]
    extra: Dict[str, Any] = field(default_factory=dict)


class CheckpointStore:
    """Holds checkpoints; ``latest()`` is what recovery restores from."""

    def __init__(self, keep: int = 3):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.keep = keep
        self._checkpoints: List[Checkpoint] = []
        self._lock = threading.Lock()

    def save(self, checkpoint: Checkpoint) -> None:
        with self._lock:
            self._checkpoints.append(checkpoint)
            if len(self._checkpoints) > self.keep:
                self._checkpoints = self._checkpoints[-self.keep :]

    def latest(self) -> Optional[Checkpoint]:
        with self._lock:
            return self._checkpoints[-1] if self._checkpoints else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._checkpoints)
