"""Streaming state and synchronous checkpoints (§3.3).

State is keyed (e.g. ``(campaign, window) -> count``) and updated once per
micro-batch from that batch's aggregated output.  Checkpoints are
synchronous, taken at group boundaries by default, and capture everything
needed to resume: the batch index, a deep snapshot of every state store,
and the source position (which batches were planned).

Recovery = restore the last checkpoint, roll the source back, and replay
the suffix of micro-batches; deterministic batch contents plus idempotent
sinks give exactly-once output (prefix integrity).
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set


class StateStore:
    """A named key->state map with snapshot/restore."""

    def __init__(self, name: str):
        self.name = name
        self._state: Dict[Any, Any] = {}
        self._lock = threading.Lock()

    def get(self, key: Any, default: Any = None) -> Any:
        with self._lock:
            return self._state.get(key, default)

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            self._state[key] = value

    def delete(self, key: Any) -> None:
        with self._lock:
            self._state.pop(key, None)

    def update_many(
        self, updates: Dict[Any, Any], merge: Callable[[Any, Any], Any]
    ) -> None:
        """Merge a batch of (key, value) aggregates into the state."""
        with self._lock:
            for key, value in updates.items():
                if key in self._state:
                    self._state[key] = merge(self._state[key], value)
                else:
                    self._state[key] = value

    def items(self) -> List:
        with self._lock:
            return list(self._state.items())

    def __len__(self) -> int:
        with self._lock:
            return len(self._state)

    def snapshot(self) -> Dict[Any, Any]:
        with self._lock:
            return copy.deepcopy(self._state)

    def restore(self, snapshot: Dict[Any, Any]) -> None:
        with self._lock:
            self._state = copy.deepcopy(snapshot)


class ShardedStateStore(StateStore):
    """A :class:`StateStore` whose keyspace is tracked per key-range shard.

    The driver-side store stays the authority for checkpoints and emitted
    windows (so results are byte-identical across resizes); on top of
    that it keeps the bookkeeping the migration plane
    (:mod:`repro.elastic.migration`) needs:

    * *dirty keys* — keys updated (or deleted: tombstones) since the
      owning worker's shard copy was last synchronized.  A migrating
      shard's payload is the source worker's base copy overlaid with the
      driver's dirty delta for that range, so the worker-held state is
      load-bearing and the wire genuinely carries it.
    * :meth:`delta_for_range` / :meth:`mark_range_synced` — the overlay
      and the acknowledgement that a destination now holds the current
      contents of a range.

    Recovery restores make every key dirty again: worker copies may be
    stale or gone after a replay, and a full overlay is always correct.
    """

    def __init__(self, name: str):
        super().__init__(name)
        self._dirty: Set[Any] = set()
        self._tombstones: Set[Any] = set()

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            self._state[key] = value
            self._dirty.add(key)
            self._tombstones.discard(key)

    def delete(self, key: Any) -> None:
        with self._lock:
            existed = key in self._state or key in self._dirty
            self._state.pop(key, None)
            if existed:
                self._tombstones.add(key)
            self._dirty.discard(key)

    def update_many(
        self, updates: Dict[Any, Any], merge: Callable[[Any, Any], Any]
    ) -> None:
        super().update_many(updates, merge)
        with self._lock:
            self._dirty.update(updates)
            self._tombstones.difference_update(updates)

    def restore(self, snapshot: Dict[Any, Any]) -> None:
        super().restore(snapshot)
        with self._lock:
            self._dirty = set(self._state)
            self._tombstones = set()

    def extract_range(self, key_range: Any) -> Dict[Any, Any]:
        """Authoritative current contents of ``key_range`` (the recovery
        payload when a move's source worker is gone)."""
        with self._lock:
            return {
                k: copy.deepcopy(v)
                for k, v in self._state.items()
                if key_range.contains_key(k)
            }

    def delta_for_range(self, key_range: Any) -> Dict[str, Any]:
        """Updates and deletions inside ``key_range`` since its last sync,
        as ``{"updates": {...}, "deleted": [...]}``."""
        with self._lock:
            updates = {
                k: copy.deepcopy(self._state[k])
                for k in self._dirty
                if k in self._state and key_range.contains_key(k)
            }
            deleted = [k for k in self._tombstones if key_range.contains_key(k)]
        return {"updates": updates, "deleted": deleted}

    def mark_range_synced(self, key_range: Any) -> None:
        """A destination acked ``key_range``: its worker copy is current."""
        with self._lock:
            self._dirty = {k for k in self._dirty if not key_range.contains_key(k)}
            self._tombstones = {
                k for k in self._tombstones if not key_range.contains_key(k)
            }


@dataclass
class Checkpoint:
    """One synchronous checkpoint."""

    batch_index: int  # last batch whose effects are included
    state_snapshots: Dict[str, Dict[Any, Any]]
    extra: Dict[str, Any] = field(default_factory=dict)


class CheckpointStore:
    """Holds checkpoints; ``latest()`` is what recovery restores from."""

    def __init__(self, keep: int = 3):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.keep = keep
        self._checkpoints: List[Checkpoint] = []
        self._lock = threading.Lock()

    def save(self, checkpoint: Checkpoint) -> None:
        with self._lock:
            self._checkpoints.append(checkpoint)
            if len(self._checkpoints) > self.keep:
                self._checkpoints = self._checkpoints[-self.keep :]

    def latest(self) -> Optional[Checkpoint]:
        with self._lock:
            return self._checkpoints[-1] if self._checkpoints else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._checkpoints)
