"""DStreams: discretized streams as per-batch Dataset factories.

A :class:`DStream` describes a transformation pipeline applied to every
micro-batch.  Nothing runs until an *output operation*
(``foreach_batch`` / ``sink_to`` / ``update_state``) registers the stream
with its :class:`~repro.streaming.context.StreamingContext`; the context's
job generator then compiles one job per (output op, batch) and submits
them in groups (§3.1, §4).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, TYPE_CHECKING

from repro.dag.dataset import Dataset
from repro.dag.partitioning import Partitioner

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.streaming.context import StreamingContext
    from repro.streaming.sinks import Sink
    from repro.streaming.state import StateStore


class DStream:
    """A stream of micro-batches; each batch materializes as a Dataset."""

    def __init__(self, ctx: "StreamingContext"):
        self.ctx = ctx

    def dataset_for(self, batch_index: int) -> Dataset:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Per-batch transformations (mirror the Dataset API)
    # ------------------------------------------------------------------
    def transform(self, fn: Callable[[Dataset], Dataset]) -> "DStream":
        return _TransformedDStream(self, fn)

    def map(self, fn: Callable[[Any], Any]) -> "DStream":
        return self.transform(lambda ds: ds.map(fn))

    def filter(self, fn: Callable[[Any], bool]) -> "DStream":
        return self.transform(lambda ds: ds.filter(fn))

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "DStream":
        return self.transform(lambda ds: ds.flat_map(fn))

    def map_partitions(self, fn) -> "DStream":
        return self.transform(lambda ds: ds.map_partitions(fn))

    def reduce_by_key(
        self,
        fn: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
        partitioner: Any = None,
    ) -> "DStream":
        """Per-batch keyed reduction; with map-side combining enabled this
        is the optimized (`reduceby`) data plane of §5.4.

        ``partitioner`` may be a :class:`~repro.dag.partitioning.Partitioner`
        or a zero-argument callable returning one (or ``None``).  The
        callable form is resolved per batch, so an elastic resize between
        groups re-partitions the *next* batch under the flipped shard-map
        epoch (see :meth:`StreamingContext.shard_partitioner`)."""

        def _apply(ds):
            p = partitioner() if callable(partitioner) else partitioner
            return ds.reduce_by_key(fn, num_partitions, partitioner=p)

        return self.transform(_apply)

    def group_by_key(self, num_partitions: Optional[int] = None) -> "DStream":
        """Per-batch grouping without combining (the `groupby` plane)."""
        return self.transform(lambda ds: ds.group_by_key(num_partitions))

    def partition_by(self, partitioner: Partitioner) -> "DStream":
        return self.transform(lambda ds: ds.partition_by(partitioner))

    # ------------------------------------------------------------------
    # Output operations
    # ------------------------------------------------------------------
    def foreach_batch(
        self, callback: Callable[[int, List[Any]], None]
    ) -> None:
        """Collect each batch's records to the driver and invoke
        ``callback(batch_index, records)`` in batch order."""
        self.ctx.register_output(self, callback)

    def sink_to(self, sink: "Sink") -> None:
        """Commit each batch's records to a sink keyed by batch id."""
        self.ctx.register_output(
            self, lambda batch_index, records: sink.commit(batch_index, records)
        )

    def update_state(
        self,
        store: "StateStore",
        merge: Callable[[Any, Any], Any],
        emit: Optional[Callable[["StateStore", int], List[Any]]] = None,
        sink: Optional["Sink"] = None,
    ) -> None:
        """Stateful aggregation: each batch's (key, value) pairs are merged
        into ``store``; ``emit(store, batch_index)`` may then produce
        records (e.g. closed windows) that are committed to ``sink``.

        State mutations happen in the context's batch-ordered callback
        path, so checkpoint/replay sees a consistent sequence.
        """

        def callback(batch_index: int, records: List[Any]) -> None:
            store.update_many(dict(records), merge)
            if emit is not None:
                out = emit(store, batch_index)
                if sink is not None:
                    sink.commit(batch_index, out)

        self.ctx.register_output(self, callback)


class _TransformedDStream(DStream):
    def __init__(self, parent: DStream, fn: Callable[[Dataset], Dataset]):
        super().__init__(parent.ctx)
        self.parent = parent
        self.fn = fn

    def dataset_for(self, batch_index: int) -> Dataset:
        return self.fn(self.parent.dataset_for(batch_index))


class SourceDStream(DStream):
    """The root stream: batches come from the context's StreamSource."""

    def __init__(self, ctx: "StreamingContext"):
        super().__init__(ctx)

    def dataset_for(self, batch_index: int) -> Dataset:
        batch_range = self.ctx.source.plan_batch(batch_index)
        return self.ctx.source.dataset_for(batch_range)
