"""Cross-batch query re-optimization (§3.5, "Optimization across batches
and queries").

"During every micro-batch, a number of metrics about the execution are
collected.  These metrics are aggregated at the end of a group and passed
on to a query optimizer to determine if an alternate query plan would
perform better."

Here the re-optimizable plan property is the *reduce parallelism*: the
optimizer watches per-batch keyed-output cardinality and recommends a
reducer count targeting a fixed number of records per reducer.  Because
the streaming job generator compiles plans at group-submission time, a
recommendation takes effect exactly at the next group boundary — plans
inside a group stay fixed, as §3.6 requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Tuple

from repro.common.errors import StreamingError
from repro.common.stats import ExponentialAverage


@dataclass
class OptimizerDecision:
    batch_index: int
    observed_records: int
    smoothed_records: float
    previous_reducers: int
    new_reducers: int


class ReducerCountOptimizer:
    """Chooses reduce parallelism from observed per-batch cardinality."""

    def __init__(
        self,
        target_records_per_reducer: int = 1000,
        min_reducers: int = 1,
        max_reducers: int = 64,
        initial_reducers: int = 4,
        ewma_alpha: float = 0.4,
    ):
        if target_records_per_reducer < 1:
            raise StreamingError("target_records_per_reducer must be >= 1")
        if not 1 <= min_reducers <= initial_reducers <= max_reducers:
            raise StreamingError(
                "need 1 <= min_reducers <= initial_reducers <= max_reducers"
            )
        self.target = target_records_per_reducer
        self.min_reducers = min_reducers
        self.max_reducers = max_reducers
        self._reducers = initial_reducers
        self._ewma = ExponentialAverage(alpha=ewma_alpha)
        self.history: List[OptimizerDecision] = []

    @property
    def current_reducers(self) -> int:
        """The recommendation the next plan compilation should use."""
        return self._reducers

    def observe(self, batch_index: int, output_records: int) -> OptimizerDecision:
        """Feed one batch's keyed-output cardinality."""
        if output_records < 0:
            raise StreamingError("output_records must be >= 0")
        smoothed = self._ewma.update(float(output_records))
        previous = self._reducers
        proposed = max(1, round(smoothed / self.target))
        new = min(max(proposed, self.min_reducers), self.max_reducers)
        self._reducers = new
        decision = OptimizerDecision(
            batch_index=batch_index,
            observed_records=output_records,
            smoothed_records=smoothed,
            previous_reducers=previous,
            new_reducers=new,
        )
        self.history.append(decision)
        return decision


def adaptive_reduce_by_key(
    stream,
    fn: Callable[[Any, Any], Any],
    optimizer: ReducerCountOptimizer,
):
    """A per-batch keyed reduction whose parallelism follows the
    optimizer's current recommendation.

    The reducer count is read at *plan-compilation* time (when the job
    generator builds a group), so it changes only between group
    boundaries.  Pair with :func:`attach_adaptive_output` so observed
    cardinalities feed back into the optimizer.
    """
    return stream.transform(
        lambda ds: ds.reduce_by_key(fn, optimizer.current_reducers)
    )


def attach_adaptive_output(
    stream,
    optimizer: ReducerCountOptimizer,
    callback: Callable[[int, List[Tuple[Any, Any]]], None],
) -> None:
    """Register an output op that feeds each batch's output cardinality to
    the optimizer before invoking ``callback`` (metrics collected per
    micro-batch, consumed at group boundaries — §3.5)."""

    def wrapped(batch_index: int, records: List[Tuple[Any, Any]]) -> None:
        optimizer.observe(batch_index, len(records))
        callback(batch_index, records)

    stream.ctx.register_output(stream, wrapped)
