"""Micro-batch streaming on the BSP engine (the Spark Streaming analogue)."""

from repro.streaming.context import BatchStats, StreamingContext
from repro.streaming.dstream import DStream, SourceDStream
from repro.streaming.elasticity import (
    ElasticityController,
    ScalingDecision,
    ScalingPolicy,
    UtilizationScalingPolicy,
)
from repro.streaming.reoptimizer import (
    ReducerCountOptimizer,
    adaptive_reduce_by_key,
    attach_adaptive_output,
)
from repro.streaming.sliding import SlidingWindowAggregator, attach_sliding_window
from repro.streaming.sinks import AppendSink, EpochFencedSink, IdempotentSink, Sink
from repro.streaming.sources import (
    BatchRange,
    FixedBatchSource,
    LogSource,
    RateSource,
    RecordLog,
    StreamSource,
)
from repro.streaming.state import Checkpoint, CheckpointStore, StateStore
from repro.streaming.windows import WindowEmitter, window_end, window_for

__all__ = [
    "BatchStats",
    "StreamingContext",
    "ElasticityController",
    "ScalingDecision",
    "ScalingPolicy",
    "UtilizationScalingPolicy",
    "ReducerCountOptimizer",
    "adaptive_reduce_by_key",
    "attach_adaptive_output",
    "SlidingWindowAggregator",
    "attach_sliding_window",
    "DStream",
    "SourceDStream",
    "AppendSink",
    "EpochFencedSink",
    "IdempotentSink",
    "Sink",
    "BatchRange",
    "FixedBatchSource",
    "LogSource",
    "RateSource",
    "RecordLog",
    "StreamSource",
    "Checkpoint",
    "CheckpointStore",
    "StateStore",
    "WindowEmitter",
    "window_end",
    "window_for",
]
