"""Output sinks.

:class:`IdempotentSink` commits output *per batch id* and ignores
re-commits of a batch it has already seen — combined with deterministic
replay this yields exactly-once output semantics across failures and
checkpoint-restore recovery.  :class:`AppendSink` has no dedup and shows
the at-least-once duplicates a naive sink would produce (used by tests to
demonstrate the difference).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Sequence, Tuple


class Sink:
    def commit(self, batch_id: int, records: Sequence[Any]) -> bool:
        """Deliver one batch's output; returns False if it was a duplicate
        that the sink suppressed."""
        raise NotImplementedError


class IdempotentSink(Sink):
    """Transactional, batch-id-deduplicating sink (exactly-once)."""

    def __init__(self) -> None:
        self._by_batch: Dict[int, List[Any]] = {}
        self._lock = threading.Lock()
        self.duplicate_commits = 0

    def commit(self, batch_id: int, records: Sequence[Any]) -> bool:
        with self._lock:
            if batch_id in self._by_batch:
                self.duplicate_commits += 1
                return False
            self._by_batch[batch_id] = list(records)
            return True

    def committed_batches(self) -> List[int]:
        with self._lock:
            return sorted(self._by_batch)

    def records_for(self, batch_id: int) -> List[Any]:
        with self._lock:
            return list(self._by_batch.get(batch_id, []))

    def all_records(self) -> List[Any]:
        """Every record, in batch order — the stream's total output."""
        with self._lock:
            out: List[Any] = []
            for batch_id in sorted(self._by_batch):
                out.extend(self._by_batch[batch_id])
            return out


class EpochFencedSink(IdempotentSink):
    """Idempotent sink with driver session-epoch fencing (repro.ha).

    Two extensions over :class:`IdempotentSink`, both for the
    crash-restart window:

    * ``restore_ledger(batch_ids)`` — seed the dedup ledger from the
      journal's committed-batch high-water mark, so a restarted driver
      re-running the suffix cannot double-emit a batch whose commit the
      crashed incarnation already delivered (re-commits return False and
      count as duplicates, exactly as for an in-memory replay).
    * ``adopt_epoch(epoch)`` / epoch-stamped commits — a commit from a
      session epoch *older* than the newest adopted one comes from a
      zombie driver and is refused outright (not recorded, not counted
      as a duplicate): only the restarted driver's output lands.
    """

    def __init__(self) -> None:
        super().__init__()
        self._epoch = 0
        self.fenced_commits = 0

    def adopt_epoch(self, epoch: int) -> None:
        with self._lock:
            self._epoch = max(self._epoch, int(epoch))

    def restore_ledger(self, batch_ids: Sequence[int]) -> None:
        """Mark ``batch_ids`` as already committed (records unknown —
        they were delivered by the previous incarnation)."""
        with self._lock:
            for batch_id in batch_ids:
                self._by_batch.setdefault(int(batch_id), [])

    def commit(
        self, batch_id: int, records: Sequence[Any], epoch: int = 0
    ) -> bool:
        with self._lock:
            if epoch:
                if epoch < self._epoch:
                    self.fenced_commits += 1
                    return False
                self._epoch = max(self._epoch, epoch)
            if batch_id in self._by_batch:
                self.duplicate_commits += 1
                return False
            self._by_batch[batch_id] = list(records)
            return True


class AppendSink(Sink):
    """No dedup: replayed batches append duplicates (at-least-once)."""

    def __init__(self) -> None:
        self._records: List[Tuple[int, Any]] = []
        self._lock = threading.Lock()

    def commit(self, batch_id: int, records: Sequence[Any]) -> bool:
        with self._lock:
            for r in records:
                self._records.append((batch_id, r))
            return True

    def all_records(self) -> List[Any]:
        with self._lock:
            return [r for _b, r in self._records]

    def commits(self) -> List[Tuple[int, Any]]:
        with self._lock:
            return list(self._records)
