"""Output sinks.

:class:`IdempotentSink` commits output *per batch id* and ignores
re-commits of a batch it has already seen — combined with deterministic
replay this yields exactly-once output semantics across failures and
checkpoint-restore recovery.  :class:`AppendSink` has no dedup and shows
the at-least-once duplicates a naive sink would produce (used by tests to
demonstrate the difference).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Sequence, Tuple


class Sink:
    def commit(self, batch_id: int, records: Sequence[Any]) -> bool:
        """Deliver one batch's output; returns False if it was a duplicate
        that the sink suppressed."""
        raise NotImplementedError


class IdempotentSink(Sink):
    """Transactional, batch-id-deduplicating sink (exactly-once)."""

    def __init__(self) -> None:
        self._by_batch: Dict[int, List[Any]] = {}
        self._lock = threading.Lock()
        self.duplicate_commits = 0

    def commit(self, batch_id: int, records: Sequence[Any]) -> bool:
        with self._lock:
            if batch_id in self._by_batch:
                self.duplicate_commits += 1
                return False
            self._by_batch[batch_id] = list(records)
            return True

    def committed_batches(self) -> List[int]:
        with self._lock:
            return sorted(self._by_batch)

    def records_for(self, batch_id: int) -> List[Any]:
        with self._lock:
            return list(self._by_batch.get(batch_id, []))

    def all_records(self) -> List[Any]:
        """Every record, in batch order — the stream's total output."""
        with self._lock:
            out: List[Any] = []
            for batch_id in sorted(self._by_batch):
                out.extend(self._by_batch[batch_id])
            return out


class AppendSink(Sink):
    """No dedup: replayed batches append duplicates (at-least-once)."""

    def __init__(self) -> None:
        self._records: List[Tuple[int, Any]] = []
        self._lock = threading.Lock()

    def commit(self, batch_id: int, records: Sequence[Any]) -> bool:
        with self._lock:
            for r in records:
                self._records.append((batch_id, r))
            return True

    def all_records(self) -> List[Any]:
        with self._lock:
            return [r for _b, r in self._records]

    def commits(self) -> List[Tuple[int, Any]]:
        with self._lock:
            return list(self._records)
