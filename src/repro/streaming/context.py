"""StreamingContext: the job generator and batch loop.

Mirrors the Drizzle port of Spark Streaming (§4): instead of generating
and scheduling one job per micro-batch, the generator submits *a group of
micro-batches at once*, sized by the driver's current group size (which
the §3.4 AIMD tuner may be adjusting live).  Output callbacks — sink
commits and state updates — always run in batch order.

Checkpoints are synchronous, taken at group boundaries (§3.3);
``restore_and_replay`` rolls state and source back to the last checkpoint
and replays the suffix of batches with ``reuse=True`` so surviving map
outputs are not recomputed (lineage reuse).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.chaos.injector import chaos_hit
from repro.chaos.plan import (
    KIND_CHECKPOINT_KILL,
    KIND_DRIVER_KILL,
    SITE_DRIVER,
    SITE_STREAM_CHECKPOINT,
    SITE_STREAM_GROUP,
)
from repro.common.clock import Clock, WallClock
from repro.common.errors import DriverKilled, StreamingError
from repro.common.metrics import COUNT_CHECKPOINTS, COUNT_HA_RECOVERIES
from repro.dag.plan import PhysicalPlan, collect_action, compile_plan
from repro.engine.cluster import LocalCluster
from repro.obs.names import SPAN_CHECKPOINT, SPAN_RECOVERY
from repro.obs.trace import NULL_RECORDER
from repro.streaming.dstream import DStream, SourceDStream
from repro.streaming.sources import LogSource, StreamSource
from repro.streaming.state import (
    Checkpoint,
    CheckpointStore,
    ShardedStateStore,
    StateStore,
)


@dataclass
class OutputOp:
    """One registered output operation."""

    index: int
    stream: DStream
    callback: Callable[[int, List[Any]], None]


@dataclass
class BatchStats:
    """Timing record for one processed micro-batch."""

    batch_index: int
    group_id: int
    group_size: int
    wall_time_s: float  # group wall time attributed to this batch
    completed_at: float


class StreamingContext:
    """Drives a streaming application over a :class:`LocalCluster`."""

    def __init__(
        self,
        cluster: LocalCluster,
        source: StreamSource,
        batch_interval_s: float = 0.1,
        checkpoint_store: Optional[CheckpointStore] = None,
        clock: Optional[Clock] = None,
    ):
        if batch_interval_s <= 0:
            raise StreamingError("batch_interval_s must be positive")
        self.cluster = cluster
        self.driver = cluster.driver
        self.conf = cluster.conf
        self.source = source
        self.batch_interval_s = batch_interval_s
        self.checkpoints = checkpoint_store or CheckpointStore()
        self.clock = clock or WallClock()
        tracer = getattr(cluster, "tracer", None)
        self.tracer = tracer if tracer is not None else NULL_RECORDER
        self.output_ops: List[OutputOp] = []
        self.state_stores: Dict[str, StateStore] = {}
        self.next_batch = 0
        self.batch_stats: List[BatchStats] = []
        self._group_seq = 0
        self._batches_since_checkpoint = 0
        self._lock = threading.Lock()
        self._elasticity = None  # optional Elastic(ity)Controller
        if getattr(self.conf, "elastic", None) is not None and self.conf.elastic.enabled:
            # The live autoscaler (repro.elastic): imported here, not at
            # module top, because repro.elastic.controller is pure
            # driver-side logic with no streaming dependency — and the
            # attach is conditional on conf.
            from repro.elastic.controller import ElasticController

            self.set_elasticity(
                ElasticController(cluster, batch_interval_s=batch_interval_s)
            )

    def set_elasticity(self, controller) -> None:
        """Attach an elastic-scaling controller, consulted at every group
        boundary (§3.3: resources adjust between groups, never within).
        A :class:`repro.elastic.ElasticController` additionally gets every
        sharded state store registered for key-range migration."""
        self._elasticity = controller
        if hasattr(controller, "register_store"):
            for store in self.state_stores.values():
                if isinstance(store, ShardedStateStore):
                    controller.register_store(store)

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def stream(self) -> DStream:
        return SourceDStream(self)

    def register_output(
        self, stream: DStream, callback: Callable[[int, List[Any]], None]
    ) -> None:
        self.output_ops.append(OutputOp(len(self.output_ops), stream, callback))

    def state_store(self, name: str) -> StateStore:
        """Create-or-get a named state store (included in checkpoints).

        With an elastic controller attached the store is sharded: its
        keyspace is tracked per key-range shard so a resize migrates
        state instead of dropping it."""
        if name not in self.state_stores:
            if self._elasticity is not None and hasattr(
                self._elasticity, "register_store"
            ):
                store: StateStore = ShardedStateStore(name)
                self.state_stores[name] = store
                self._elasticity.register_store(store)
            else:
                self.state_stores[name] = StateStore(name)
        return self.state_stores[name]

    def shard_partitioner(self, name: str):
        """A per-batch partitioner provider for ``name``'s shard layout:
        pass to :meth:`DStream.reduce_by_key` so each batch hashes with
        the *current* shard-map epoch — after a resize flips the epoch at
        a group boundary, the next group's tasks hash to the new layout.
        Returns ``None`` from the provider when no elastic controller (or
        no such store) is attached, which falls back to the default hash
        partitioner."""
        self.state_store(name)  # ensure the store exists and is registered

        def _provider():
            controller = self._elasticity
            if controller is None or not hasattr(controller, "partitioner_for"):
                return None
            return controller.partitioner_for(name)

        return _provider

    # ------------------------------------------------------------------
    # The job generator / batch loop
    # ------------------------------------------------------------------
    def run_batches(self, n: int) -> None:
        """Process the next ``n`` micro-batches, submitting them to the
        engine in groups of the driver's current group size."""
        if not self.output_ops:
            raise StreamingError("no output operations registered")
        if n < 0:
            raise StreamingError("n must be >= 0")
        remaining = n
        while remaining > 0:
            group_size = max(1, min(self.driver.current_group_size, remaining))
            batch_indices = range(self.next_batch, self.next_batch + group_size)
            self._run_group(batch_indices)
            self.next_batch += group_size
            remaining -= group_size
            self._journal_group_commit(batch_indices)
            self._driver_chaos("boundary")
            telemetry = getattr(self.cluster, "telemetry", None)
            if telemetry is not None:
                telemetry.observe_stream_backlog(remaining)
            self._batches_since_checkpoint += group_size
            if (
                self._batches_since_checkpoint
                >= self.conf.effective_checkpoint_interval()
            ):
                self.checkpoint()
            if chaos_hit(SITE_STREAM_GROUP) is not None:
                # KIND_FORCE_REPLAY: simulate a driver restart at a group
                # boundary — restore the latest checkpoint and replay the
                # suffix.  Exactly-once means the replay must not change
                # any state or sink output.
                self.restore_and_replay()
            if self._elasticity is not None:
                self._elasticity.at_group_boundary(self.batch_stats)

    def _driver_chaos(self, where: str) -> None:
        """A scheduled driver kill (repro.ha chaos): raise out of the
        batch loop *as if the driver process died here*.  Placement
        matters — ``mid_group`` fires before the group's commit is
        journaled and ``mid_checkpoint`` before the checkpoint record, so
        the WAL's contents match what a real crash at that point leaves."""
        fault = chaos_hit(SITE_DRIVER, method=where)
        if fault is not None and fault.kind == KIND_DRIVER_KILL:
            raise DriverKilled(where)

    def _journal_group_commit(self, batch_indices: range) -> None:
        """Journal one committed group — the durable recovery line (§3.3
        group boundary): the batch ids it carried, which output jobs they
        retired, a digest of where their map outputs live, and the sink
        high-water mark implied by the in-order callbacks having run."""
        journal = getattr(self.cluster, "journal", None)
        if journal is None:
            return
        job_keys = [
            (op.index, batch_index)
            for batch_index in batch_indices
            for op in self.output_ops
        ]
        journal.record_group_commit(
            list(batch_indices),
            locations_digest=self._locations_digest(job_keys),
            sink_hwm=list(batch_indices),
            job_keys=job_keys,
        )

    def _locations_digest(self, job_keys: List[Any]) -> str:
        """Stable digest of the group's map-output locations, journaled so
        a recovering driver can tell whether worker-held shuffle state
        still matches what the committed group produced."""
        items: List[Any] = []
        for key in job_keys:
            job_id = self.driver._job_ids_by_key.get(key)
            job = self.driver.jobs.get(job_id) if job_id is not None else None
            if job is not None:
                items.append((key, sorted(job.map_status.items())))
        return hashlib.sha1(repr(items).encode()).hexdigest()

    def _run_group(self, batch_indices: range, reuse: bool = True) -> None:
        self._driver_chaos("mid_group")
        start = self.clock.now()
        plans: List[PhysicalPlan] = []
        keys: List[Any] = []
        for batch_index in batch_indices:
            # Planning the batch pins its source offsets (sticky replay).
            self.source.plan_batch(batch_index)
            for op in self.output_ops:
                dataset = op.stream.dataset_for(batch_index)
                plans.append(
                    compile_plan(
                        dataset,
                        collect_action(),
                        map_side_combine=self.conf.map_side_combine,
                    )
                )
                keys.append((op.index, batch_index))
        results = self.driver.run_group(plans, job_keys=keys, reuse=reuse)
        wall = self.clock.now() - start
        telemetry = getattr(self.cluster, "telemetry", None)
        if telemetry is not None:
            for _ in batch_indices:
                telemetry.observe_batch(wall / max(len(batch_indices), 1))
        group_id = self._group_seq
        self._group_seq += 1
        # Deliver callbacks strictly in batch order.
        cursor = 0
        for batch_index in batch_indices:
            for op in self.output_ops:
                op.callback(batch_index, results[cursor])
                cursor += 1
            self.batch_stats.append(
                BatchStats(
                    batch_index=batch_index,
                    group_id=group_id,
                    group_size=len(batch_indices),
                    wall_time_s=wall / max(len(batch_indices), 1),
                    completed_at=self.clock.now(),
                )
            )

    # ------------------------------------------------------------------
    # Checkpointing and recovery (§3.3)
    # ------------------------------------------------------------------
    def checkpoint(self) -> Checkpoint:
        """Synchronous checkpoint at a group boundary."""
        self._driver_chaos("mid_checkpoint")
        fault = chaos_hit(SITE_STREAM_CHECKPOINT)
        if fault is not None and fault.kind == KIND_CHECKPOINT_KILL:
            # A machine dies while the checkpoint is being taken; the
            # checkpoint itself is driver-side state, so it completes, and
            # the next group exercises recovery onto fewer machines.
            alive = self.cluster.alive_workers()
            if len(alive) > 1:
                self.cluster.kill_worker(alive[-1], notify_driver=True)
        with self.tracer.start_span(
            SPAN_CHECKPOINT, root=True, actor="driver", batch_index=self.next_batch - 1
        ) as span:
            cp = Checkpoint(
                batch_index=self.next_batch - 1,
                state_snapshots={
                    name: store.snapshot() for name, store in self.state_stores.items()
                },
                extra={"next_batch": self.next_batch},
            )
            self.checkpoints.save(cp)
            journal = getattr(self.cluster, "journal", None)
            if journal is not None:
                journal.record_checkpoint(
                    cp.batch_index,
                    self.next_batch,
                    cp.state_snapshots,
                    extra=cp.extra,
                )
            self._batches_since_checkpoint = 0
            self.cluster.metrics.counter(COUNT_CHECKPOINTS).add(1)
            # Shuffle data at or before the checkpoint is no longer needed
            # for recovery; GC it cluster-wide.
            self._gc_through(cp.batch_index)
            span.annotate(stores=len(cp.state_snapshots))
        return cp

    def _gc_through(self, batch_index: int) -> None:
        for job_key, job_id in list(self.driver._job_ids_by_key.items()):
            if not (isinstance(job_key, tuple) and len(job_key) == 2):
                continue
            _op_index, b = job_key
            if b <= batch_index:
                self.driver.drop_job(job_id)

    def restore_and_replay(self) -> int:
        """Recover as after a driver/state loss: restore the latest
        checkpoint, roll the source back, and replay every batch after it.
        Returns the number of batches replayed."""
        with self.tracer.start_span(
            SPAN_RECOVERY, root=True, actor="driver", kind="restore_and_replay"
        ) as span:
            cp = self.checkpoints.latest()
            restored_through = cp.batch_index if cp is not None else -1
            for name, store in self.state_stores.items():
                if cp is not None and name in cp.state_snapshots:
                    store.restore(cp.state_snapshots[name])
                else:
                    store.restore({})
            if isinstance(self.source, LogSource):
                self.source.forget_after(restored_through)
            first_replay = restored_through + 1
            last = self.next_batch - 1
            if first_replay > last:
                span.annotate(restored_through=restored_through, replayed=0)
                return 0
            # Parallel recovery: the whole suffix is replayed as one group,
            # reusing any intermediate outputs that survived (§3.3).
            self._run_group(range(first_replay, last + 1), reuse=True)
            span.annotate(
                restored_through=restored_through,
                replayed=last - first_replay + 1,
            )
        return last - first_replay + 1

    def restore_from_recovery(self, state) -> int:
        """Resume this (rebuilt) context from a crashed driver's journal.

        ``state`` is the :class:`repro.ha.RecoveredState` a
        ``LocalCluster.recover(wal_dir)`` exposes.  State stores are
        restored from the last *journaled* checkpoint's snapshots, the
        source is rolled back to it, and ``next_batch`` is set so the
        batch loop re-runs exactly the suffix the journal never saw
        commit.  Returns the first batch the resumed loop will run.
        Callers must have rebuilt the pipeline (outputs + state stores
        under the same names) against the recovered cluster first."""
        with self.tracer.start_span(
            SPAN_RECOVERY, root=True, actor="driver", kind="restore_from_recovery"
        ) as span:
            cp_data = state.checkpoint
            if cp_data is not None:
                snapshots = cp_data.get("state_snapshots", {})
                for name, store in self.state_stores.items():
                    store.restore(dict(snapshots.get(name, {})))
                # Seed the journal's checkpoint into the in-memory store so
                # a later restore_and_replay rolls back to it, not to zero.
                self.checkpoints.save(
                    Checkpoint(
                        batch_index=int(cp_data["batch_index"]),
                        state_snapshots=snapshots,
                        extra=dict(cp_data.get("extra", {})),
                    )
                )
                self.next_batch = int(cp_data["next_batch"])
            else:
                for store in self.state_stores.values():
                    store.restore({})
                self.next_batch = 0
            if isinstance(self.source, LogSource):
                self.source.forget_after(self.next_batch - 1)
            self._batches_since_checkpoint = 0
            self.cluster.metrics.counter(COUNT_HA_RECOVERIES).add(1)
            span.annotate(
                next_batch=self.next_batch,
                committed=len(state.committed_batches),
            )
        return self.next_batch
