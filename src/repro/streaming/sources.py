"""Streaming input sources.

The central abstraction is a :class:`RecordLog` — a Kafka-like partitioned,
offset-addressed, replayable log.  Batch *b* of a stream reads a
deterministic offset range from each partition, which gives the engine
deterministic replay (the foundation of micro-batch fault tolerance).

Following §4 of the paper, offset *metadata is computed on the workers*:
the per-batch Dataset's ``source_fn`` closes over the log and the batch
index, and each worker task resolves its own partition's offsets — the
centralized driver never touches per-partition metadata.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence

from repro.common.errors import StreamingError
from repro.dag.dataset import SourceDataset


class RecordLog:
    """A partitioned append-only log with offset-based reads."""

    def __init__(self, num_partitions: int):
        if num_partitions < 1:
            raise StreamingError("num_partitions must be >= 1")
        self.num_partitions = num_partitions
        self._partitions: List[List[Any]] = [[] for _ in range(num_partitions)]
        self._lock = threading.Lock()

    def append(self, partition: int, record: Any) -> int:
        """Append one record; returns its offset."""
        with self._lock:
            part = self._partitions[partition]
            part.append(record)
            return len(part) - 1

    def append_batch(self, partition: int, records: Sequence[Any]) -> None:
        with self._lock:
            self._partitions[partition].extend(records)

    def append_round_robin(self, records: Sequence[Any]) -> None:
        with self._lock:
            for i, record in enumerate(records):
                self._partitions[i % self.num_partitions].append(record)

    def end_offset(self, partition: int) -> int:
        with self._lock:
            return len(self._partitions[partition])

    def end_offsets(self) -> List[int]:
        with self._lock:
            return [len(p) for p in self._partitions]

    def read(self, partition: int, start: int, end: int) -> List[Any]:
        """Read [start, end) from one partition; replayable at any time."""
        with self._lock:
            part = self._partitions[partition]
            if start < 0 or end > len(part) or start > end:
                raise StreamingError(
                    f"invalid range [{start}, {end}) for partition {partition} "
                    f"with {len(part)} records"
                )
            return part[start:end]

    def total_records(self) -> int:
        with self._lock:
            return sum(len(p) for p in self._partitions)


@dataclass(frozen=True)
class BatchRange:
    """The offset ranges one micro-batch consumes: per-partition [start, end)."""

    batch_index: int
    starts: tuple
    ends: tuple

    def records_in(self, partition: int) -> int:
        return self.ends[partition] - self.starts[partition]

    def total(self) -> int:
        return sum(e - s for s, e in zip(self.starts, self.ends))


class StreamSource:
    """Base class: turns batch indices into Datasets + tracks positions."""

    @property
    def num_partitions(self) -> int:
        raise NotImplementedError

    def plan_batch(self, batch_index: int) -> BatchRange:
        """Decide (deterministically, given the log contents) what batch
        ``batch_index`` consumes.  Must be callable repeatedly (replay)."""
        raise NotImplementedError

    def dataset_for(self, batch_range: BatchRange) -> SourceDataset:
        raise NotImplementedError


class LogSource(StreamSource):
    """Reads everything appended to a :class:`RecordLog` since the last
    planned batch — the behaviour of a receiver-less Kafka direct stream.

    Batch planning is *sticky*: once batch *b* is planned its range is
    remembered, so replay after a failure consumes identical data
    (prefix integrity).
    """

    def __init__(self, log: RecordLog):
        self.log = log
        self._planned: Dict[int, BatchRange] = {}
        self._cursor: List[int] = [0] * log.num_partitions
        self._lock = threading.Lock()

    @property
    def num_partitions(self) -> int:
        return self.log.num_partitions

    def plan_batch(self, batch_index: int) -> BatchRange:
        with self._lock:
            if batch_index in self._planned:
                return self._planned[batch_index]
            expected = len(self._planned)
            if batch_index != expected:
                raise StreamingError(
                    f"batches must be planned in order: expected {expected}, "
                    f"got {batch_index}"
                )
            starts = tuple(self._cursor)
            ends = tuple(self.log.end_offsets())
            batch_range = BatchRange(batch_index, starts, ends)
            self._planned[batch_index] = batch_range
            self._cursor = list(ends)
            return batch_range

    def dataset_for(self, batch_range: BatchRange) -> SourceDataset:
        log = self.log

        def partition_fn(partition: int) -> List[Any]:
            # Executed on the worker: per-partition offset metadata is
            # resolved here, not in the driver (§4).
            return log.read(
                partition, batch_range.starts[partition], batch_range.ends[partition]
            )

        return SourceDataset(partition_fn, log.num_partitions)

    def forget_after(self, batch_index: int) -> None:
        """Drop planning decisions after ``batch_index`` (checkpoint
        restore rolls the source back; replay will re-plan)."""
        with self._lock:
            doomed = [b for b in self._planned if b > batch_index]
            for b in doomed:
                del self._planned[b]
            if self._planned:
                last = max(self._planned)
                self._cursor = list(self._planned[last].ends)
            else:
                self._cursor = [0] * self.log.num_partitions

    def planned_through(self) -> int:
        with self._lock:
            return len(self._planned) - 1


class FixedBatchSource(StreamSource):
    """A source with pre-defined per-batch data — deterministic tests and
    benchmarks (each inner list is split across partitions round-robin)."""

    def __init__(self, batches: Sequence[Sequence[Any]], num_partitions: int):
        self._batches = [list(b) for b in batches]
        self._num_partitions = num_partitions

    @property
    def num_partitions(self) -> int:
        return self._num_partitions

    @property
    def num_batches(self) -> int:
        return len(self._batches)

    def plan_batch(self, batch_index: int) -> BatchRange:
        if not 0 <= batch_index < len(self._batches):
            raise StreamingError(f"batch {batch_index} out of range")
        n = len(self._batches[batch_index])
        per = [len(range(p, n, self._num_partitions)) for p in range(self._num_partitions)]
        return BatchRange(batch_index, tuple([0] * self._num_partitions), tuple(per))

    def dataset_for(self, batch_range: BatchRange) -> SourceDataset:
        data = self._batches[batch_range.batch_index]
        parts = self._num_partitions

        def partition_fn(partition: int) -> List[Any]:
            return data[partition::parts]

        return SourceDataset(partition_fn, parts)


class RateSource(StreamSource):
    """Generates ``records_per_batch`` synthetic records per batch using a
    caller-supplied generator ``make(batch_index, i) -> record``."""

    def __init__(
        self,
        make: Callable[[int, int], Any],
        records_per_batch: int,
        num_partitions: int,
    ):
        if records_per_batch < 0:
            raise StreamingError("records_per_batch must be >= 0")
        self.make = make
        self.records_per_batch = records_per_batch
        self._num_partitions = num_partitions

    @property
    def num_partitions(self) -> int:
        return self._num_partitions

    def plan_batch(self, batch_index: int) -> BatchRange:
        n = self.records_per_batch
        parts = self._num_partitions
        per = [len(range(p, n, parts)) for p in range(parts)]
        return BatchRange(batch_index, tuple([0] * parts), tuple(per))

    def dataset_for(self, batch_range: BatchRange) -> SourceDataset:
        make = self.make
        n = self.records_per_batch
        parts = self._num_partitions
        b = batch_range.batch_index

        def partition_fn(partition: int) -> List[Any]:
            return [make(b, i) for i in range(partition, n, parts)]

        return SourceDataset(partition_fn, parts)
