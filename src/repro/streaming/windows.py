"""Tumbling event-time windows and watermark-based emission.

The Yahoo streaming benchmark (§5.3) groups events into 10-second
tumbling windows per ad campaign and measures, for each window, how long
after the window *ends* its final event was processed.  These helpers
implement the window arithmetic and an emit policy that closes windows
once the stream's processing time passes their end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.streaming.state import StateStore


def window_for(event_time: float, window_size: float, offset: float = 0.0) -> int:
    """Index of the tumbling window containing ``event_time``."""
    if window_size <= 0:
        raise ValueError("window_size must be positive")
    return int((event_time - offset) // window_size)


def window_end(window_index: int, window_size: float, offset: float = 0.0) -> float:
    return offset + (window_index + 1) * window_size


@dataclass
class WindowEmitter:
    """Closes tumbling windows when the watermark passes their end.

    State keys are ``(group_key, window_index)``.  ``watermark_for`` maps a
    batch index to the stream's event-time watermark (for a synthetic
    source this is simply ``batch_index * batch_interval``).  Emitted
    records are ``(group_key, window_index, aggregate)`` triples; each
    window is emitted exactly once.
    """

    window_size: float
    watermark_for: Callable[[int], float]
    allowed_lateness: float = 0.0

    def __call__(self, store: StateStore, batch_index: int) -> List[Tuple]:
        watermark = self.watermark_for(batch_index) - self.allowed_lateness
        closed: List[Tuple] = []
        for key, value in store.items():
            group_key, window_index = key
            if window_end(window_index, self.window_size) <= watermark:
                closed.append((group_key, window_index, value))
                store.delete(key)
        closed.sort(key=lambda t: (t[1], str(t[0])))
        return closed
