"""Elastic scaling policies (§3.3, Elasticity) — compatibility shim.

The policy layer moved to :mod:`repro.elastic.policies` and the live
controller that actually applies decisions (with stateful key-range
shard migration) lives in :mod:`repro.elastic.controller`.  This module
re-exports both so existing imports keep working.

:class:`ElasticityController` remains the simple *advisory* controller:
it applies add/decommission decisions but does not migrate operator
state.  New code should use :class:`repro.elastic.ElasticController`,
which a :class:`~repro.streaming.context.StreamingContext` attaches
automatically when ``EngineConf.elastic.enabled``.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from repro.elastic.controller import ElasticController, ScalePlan
from repro.elastic.policies import (
    ScalingDecision,
    ScalingPolicy,
    ScheduleScalingPolicy,
    SignalScalingPolicy,
    UtilizationScalingPolicy,
    resolve_policy,
)


class ElasticityController:
    """Applies a policy's decisions to a LocalCluster at group boundaries.

    Advisory predecessor of :class:`repro.elastic.ElasticController`:
    resizes the worker set but moves no operator state (fine for
    stateless pipelines and for tests that only exercise membership).
    """

    def __init__(self, cluster, policy: ScalingPolicy):
        self.cluster = cluster
        self.policy = policy
        self.decisions: List[ScalingDecision] = []

    def at_group_boundary(self, batch_stats: Sequence[Any]) -> ScalingDecision:
        # Count only schedulable machines (excludes ones already draining).
        workers = self.cluster.driver.placement_workers()
        decision = self.policy.decide(batch_stats, len(workers))
        self.decisions.append(decision)
        if decision.delta_workers > 0:
            for _ in range(decision.delta_workers):
                self.cluster.add_worker()
        elif decision.delta_workers < 0:
            # Graceful removal: drained from placement, running work
            # completes, removed machines are the highest-numbered ones.
            for worker_id in sorted(workers)[decision.delta_workers :]:
                self.cluster.decommission_worker(worker_id)
        return decision


__all__ = [
    "ElasticController",
    "ElasticityController",
    "ScalePlan",
    "ScalingDecision",
    "ScalingPolicy",
    "ScheduleScalingPolicy",
    "SignalScalingPolicy",
    "UtilizationScalingPolicy",
    "resolve_policy",
]
