"""Elastic scaling policies (§3.3, Elasticity).

"we integrate with existing cluster managers ... and the application
layer can choose policies on when to request or relinquish resources.  At
the end of a group boundary, Drizzle updates the list of available
resources and adjusts the tasks to be scheduled for the next group."

A policy inspects recent batch timings and recommends a resize; the
streaming context applies recommendations only at group boundaries, so
in-flight groups are never disturbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.common.errors import StreamingError
from repro.streaming.context import BatchStats


@dataclass(frozen=True)
class ScalingDecision:
    """Recommendation for the next group boundary."""

    delta_workers: int  # >0 add, <0 remove, 0 hold
    reason: str


class ScalingPolicy:
    """Interface: called once per completed group."""

    def decide(
        self, recent: Sequence[BatchStats], current_workers: int
    ) -> ScalingDecision:
        raise NotImplementedError


class UtilizationScalingPolicy(ScalingPolicy):
    """Scale on the ratio of batch processing time to the batch interval.

    * ratio above ``scale_up_threshold``  -> request one more machine
      (the system is close to falling behind);
    * ratio below ``scale_down_threshold`` -> relinquish one machine
      (diurnal troughs: "more than 10x difference in load between peak
      and non-peak durations", §1);
    * otherwise hold.
    """

    def __init__(
        self,
        batch_interval_s: float,
        scale_up_threshold: float = 0.8,
        scale_down_threshold: float = 0.3,
        min_workers: int = 1,
        max_workers: int = 1024,
        lookback_batches: int = 6,
    ):
        if batch_interval_s <= 0:
            raise StreamingError("batch_interval_s must be positive")
        if not 0.0 < scale_down_threshold < scale_up_threshold:
            raise StreamingError("need 0 < scale_down < scale_up")
        if not 1 <= min_workers <= max_workers:
            raise StreamingError("need 1 <= min_workers <= max_workers")
        if lookback_batches < 1:
            raise StreamingError("lookback_batches must be >= 1")
        self.batch_interval_s = batch_interval_s
        self.scale_up_threshold = scale_up_threshold
        self.scale_down_threshold = scale_down_threshold
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.lookback_batches = lookback_batches

    def decide(
        self, recent: Sequence[BatchStats], current_workers: int
    ) -> ScalingDecision:
        window = list(recent)[-self.lookback_batches :]
        if not window:
            return ScalingDecision(0, "no data")
        utilization = sum(s.wall_time_s for s in window) / (
            len(window) * self.batch_interval_s
        )
        if utilization > self.scale_up_threshold and current_workers < self.max_workers:
            return ScalingDecision(
                +1, f"utilization {utilization:.2f} > {self.scale_up_threshold}"
            )
        if (
            utilization < self.scale_down_threshold
            and current_workers > self.min_workers
        ):
            return ScalingDecision(
                -1, f"utilization {utilization:.2f} < {self.scale_down_threshold}"
            )
        return ScalingDecision(0, f"utilization {utilization:.2f} in band")


class ElasticityController:
    """Applies a policy's decisions to a LocalCluster at group boundaries."""

    def __init__(self, cluster, policy: ScalingPolicy):
        self.cluster = cluster
        self.policy = policy
        self.decisions: List[ScalingDecision] = []

    def at_group_boundary(self, batch_stats: Sequence[BatchStats]) -> ScalingDecision:
        # Count only schedulable machines (excludes ones already draining).
        workers = self.cluster.driver.placement_workers()
        decision = self.policy.decide(batch_stats, len(workers))
        self.decisions.append(decision)
        if decision.delta_workers > 0:
            for _ in range(decision.delta_workers):
                self.cluster.add_worker()
        elif decision.delta_workers < 0:
            # Graceful removal: drained from placement, running work
            # completes, removed machines are the highest-numbered ones.
            for worker_id in sorted(workers)[decision.delta_workers :]:
                self.cluster.decommission_worker(worker_id)
        return decision
