"""Sliding windows over micro-batches.

Spark-Streaming-style ``reduceByKeyAndWindow``: keep each micro-batch's
keyed aggregate, and every ``slide`` batches emit the merge of the last
``window`` batches.  State is a bounded deque of per-batch aggregates, so
it participates in checkpoints like any driver-side state (stored inside a
:class:`~repro.streaming.state.StateStore` under reserved keys, keeping
snapshot/restore and replay semantics identical to tumbling windows).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import StreamingError
from repro.streaming.state import StateStore

_BATCHES_KEY = "__sliding_batches__"


class SlidingWindowAggregator:
    """Merges per-batch (key, value) aggregates into sliding windows.

    Use via :func:`attach_sliding_window`; also usable standalone:

    >>> store = StateStore("w")
    >>> agg = SlidingWindowAggregator(store, window=3, slide=1,
    ...                               merge=lambda a, b: a + b)
    >>> agg.on_batch(0, [("k", 1)])
    [('k', 1)]
    >>> agg.on_batch(1, [("k", 2)])
    [('k', 3)]
    """

    def __init__(
        self,
        store: StateStore,
        window: int,
        slide: int,
        merge: Callable[[Any, Any], Any],
    ):
        if window < 1:
            raise StreamingError("window must be >= 1 batch")
        if slide < 1 or slide > window:
            raise StreamingError("need 1 <= slide <= window")
        self.store = store
        self.window = window
        self.slide = slide
        self.merge = merge

    def on_batch(
        self, batch_index: int, pairs: List[Tuple[Any, Any]]
    ) -> Optional[List[Tuple[Any, Any]]]:
        """Record one batch's aggregate; returns the merged window when the
        slide boundary is reached, else None.

        ``pairs`` may be a plain list or a columnar
        :class:`~repro.data.blocks.RecordBlock` — both iterate as
        ``(key, value)`` tuples, so ``dict(pairs)`` normalises either.
        """
        batches: List[Tuple[int, Dict[Any, Any]]] = self.store.get(_BATCHES_KEY, [])
        # Replay safety: a re-delivered batch replaces its old aggregate.
        batches = [(b, d) for (b, d) in batches if b != batch_index]
        batches.append((batch_index, dict(pairs)))
        batches = [
            (b, d) for (b, d) in batches if b > batch_index - self.window
        ]
        batches.sort()
        self.store.put(_BATCHES_KEY, batches)
        if (batch_index + 1) % self.slide != 0:
            return None
        merged: Dict[Any, Any] = {}
        for _b, aggregate in batches:
            for key, value in aggregate.items():
                if key in merged:
                    merged[key] = self.merge(merged[key], value)
                else:
                    merged[key] = value
        return sorted(merged.items(), key=lambda kv: str(kv[0]))


def attach_sliding_window(
    stream,
    store: StateStore,
    window: int,
    slide: int,
    merge: Callable[[Any, Any], Any],
    sink=None,
    callback: Optional[Callable[[int, List[Tuple[Any, Any]]], None]] = None,
) -> SlidingWindowAggregator:
    """Register a sliding-window output op on a keyed, per-batch-reduced
    DStream.  Emissions go to ``sink`` (committed per batch id) and/or
    ``callback(batch_index, merged_pairs)``."""
    aggregator = SlidingWindowAggregator(store, window, slide, merge)

    def on_batch(batch_index: int, records: List[Tuple[Any, Any]]) -> None:
        merged = aggregator.on_batch(batch_index, records)
        if merged is None:
            return
        if sink is not None:
            sink.commit(batch_index, merged)
        if callback is not None:
            callback(batch_index, merged)

    stream.ctx.register_output(stream, on_batch)
    return aggregator
