"""Map-side partial aggregation (paper §3.5).

The paper's workload analysis (Table 2) found >95 % of aggregation queries
use *partial-merge* aggregates (count, sum, min, max, first, last), whose
computation can be pre-combined on the map side, shrinking shuffle traffic.
An :class:`Aggregator` captures the three functions Spark-style combiners
need; :func:`combine_locally` is the map-side pass and
:func:`merge_combiners_iter` is the reduce-side merge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Tuple

from repro.data.blocks import RecordBlock

KV = Tuple[Any, Any]


@dataclass(frozen=True)
class Aggregator:
    """create_combiner / merge_value / merge_combiners triple."""

    create_combiner: Callable[[Any], Any]
    merge_value: Callable[[Any, Any], Any]
    merge_combiners: Callable[[Any, Any], Any]

    @classmethod
    def from_reduce(cls, fn: Callable[[Any, Any], Any]) -> "Aggregator":
        """Aggregator for a plain commutative+associative reduce function."""
        return cls(
            create_combiner=lambda v: v,
            merge_value=fn,
            merge_combiners=fn,
        )

    @classmethod
    def from_zero(
        cls,
        zero: Callable[[], Any],
        seq_op: Callable[[Any, Any], Any],
        comb_op: Callable[[Any, Any], Any],
    ) -> "Aggregator":
        """Aggregator for aggregate_by_key-style (zero, seq, comb)."""
        return cls(
            create_combiner=lambda v: seq_op(zero(), v),
            merge_value=seq_op,
            merge_combiners=comb_op,
        )


def combine_locally(pairs: Iterable[KV], agg: Aggregator) -> Dict[Any, Any]:
    """Map-side combine: fold all values for each key into one combiner."""
    combined: Dict[Any, Any] = {}
    for key, value in pairs:
        if key in combined:
            combined[key] = agg.merge_value(combined[key], value)
        else:
            combined[key] = agg.create_combiner(value)
    return combined


def merge_combiners_iter(
    streams: Iterable[Iterable[KV]], agg: Aggregator
) -> Iterator[KV]:
    """Reduce-side merge of already-combined (key, combiner) streams."""
    merged: Dict[Any, Any] = {}
    for stream in streams:
        if isinstance(stream, RecordBlock):
            stream.reduce_into(merged, agg.merge_combiners)
            continue
        for key, comb in stream:
            if key in merged:
                merged[key] = agg.merge_combiners(merged[key], comb)
            else:
                merged[key] = comb
    return iter(merged.items())


def reduce_values_iter(
    streams: Iterable[Iterable[KV]], agg: Aggregator
) -> Iterator[KV]:
    """Reduce-side aggregation of *raw* (key, value) streams — the path
    taken when map-side combining is disabled (the groupby configuration
    of Figure 6, as opposed to the reduceby configuration of Figure 8)."""
    merged: Dict[Any, Any] = {}
    for stream in streams:
        if isinstance(stream, RecordBlock):
            stream.reduce_into(merged, agg.merge_value, agg.create_combiner)
            continue
        for key, value in stream:
            if key in merged:
                merged[key] = agg.merge_value(merged[key], value)
            else:
                merged[key] = agg.create_combiner(value)
    return iter(merged.items())


def group_values_iter(streams: Iterable[Iterable[KV]]) -> Iterator[KV]:
    """Reduce-side grouping for group_by_key: (key, [values...])."""
    grouped: Dict[Any, List[Any]] = {}
    for stream in streams:
        if isinstance(stream, RecordBlock):
            stream.group_into(grouped)
            continue
        for key, value in stream:
            grouped.setdefault(key, []).append(value)
    return iter(grouped.items())
