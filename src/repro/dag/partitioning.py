"""Partitioners: how shuffle output keys map to reduce partitions."""

from __future__ import annotations

import zlib
from typing import Any


def _stable_hash(key: Any) -> int:
    """Deterministic hash across runs (Python's ``hash`` of str is salted
    per process, which would break deterministic replay of shuffles)."""
    if isinstance(key, int):
        return key
    if isinstance(key, bytes):
        return zlib.crc32(key)
    if isinstance(key, str):
        return zlib.crc32(key.encode("utf-8"))
    if isinstance(key, tuple):
        h = 0x811C9DC5
        for part in key:
            h = (h * 31 + _stable_hash(part)) & 0x7FFFFFFF
        return h
    return hash(key)


class Partitioner:
    """Maps a key to a partition in [0, num_partitions)."""

    def __init__(self, num_partitions: int):
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions

    def partition(self, key: Any) -> int:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.num_partitions == other.num_partitions  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_partitions))


class HashPartitioner(Partitioner):
    """The default: stable hash modulo partition count."""

    def partition(self, key: Any) -> int:
        return _stable_hash(key) % self.num_partitions


class RangePartitioner(Partitioner):
    """Partitions by sorted key-range boundaries.

    ``boundaries`` are the upper bounds (exclusive) of the first
    ``num_partitions - 1`` partitions; keys must be comparable with them.
    """

    def __init__(self, boundaries: list):
        super().__init__(len(boundaries) + 1)
        self.boundaries = list(boundaries)

    def partition(self, key: Any) -> int:
        # Linear scan: boundaries lists are tiny (== reducer count).
        for i, bound in enumerate(self.boundaries):
            if key < bound:
                return i
        return len(self.boundaries)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RangePartitioner) and self.boundaries == other.boundaries

    def __hash__(self) -> int:
        return hash(("RangePartitioner", tuple(self.boundaries)))
