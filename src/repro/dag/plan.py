"""Physical planning: logical dataset DAG + action -> stages and shuffles.

The planner fuses narrow chains into per-stage pipelines and cuts stages
at shuffle dependencies (Figure 1 of the paper).  The resulting
:class:`PhysicalPlan` is engine-agnostic: the threaded engine executes the
stage functions for real; the simulator uses only the stage/shuffle
*shape* plus a cost model.

Map-side combining (§3.5) is resolved **at plan time**: the same logical
DAG compiles to different map-output and reduce-merge functions depending
on ``map_side_combine``, so the engine never needs to re-interpret shuffle
payloads.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import PlanError
from repro.core.prescheduling import all_to_all_deps, tree_reduce_deps
from repro.dag.combiners import (
    Aggregator,
    combine_locally,
    group_values_iter,
    merge_combiners_iter,
    reduce_values_iter,
)
from repro.dag.dataset import (
    CoGroupDataset,
    Dataset,
    NarrowDataset,
    ShuffledDataset,
    SourceDataset,
    TreeStageDataset,
    UnionDataset,
)
from repro.dag.partitioning import Partitioner

PipelineOp = Callable[[int, Iterator], Iterator]
# fetched[input_index] -> list of per-map-task streams
InputMerge = Callable[[int, List[List[Iterable]]], Iterator]
MapOutputFn = Callable[[int, Iterator], Dict[int, List]]


# ----------------------------------------------------------------------
# Plan data structures
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShuffleSpec:
    """One shuffle dependency between a map stage and a reduce stage."""

    shuffle_id: int
    num_maps: int
    partitioner: Partitioner
    structure: str = "all"  # "all" (all-to-all) or "tree" (§3.6)
    fan_in: int = 0

    @property
    def num_reducers(self) -> int:
        return self.partitioner.num_partitions

    def reduce_deps(self, reducer_index: int) -> frozenset:
        """Which map outputs reducer ``reducer_index`` must wait for —
        the dependency set used by pre-scheduling (§3.2, §3.6)."""
        if self.structure == "tree":
            return tree_reduce_deps(
                self.shuffle_id, self.num_maps, reducer_index, self.fan_in
            )
        return all_to_all_deps(self.shuffle_id, self.num_maps)

    def map_indices_for_reducer(self, reducer_index: int) -> List[int]:
        return sorted(m for (_sid, m) in self.reduce_deps(reducer_index))


@dataclass
class StageSpec:
    """One stage: a fused narrow pipeline with typed input and output."""

    stage_index: int
    num_tasks: int
    pipeline: PipelineOp
    source_fn: Optional[Callable[[int], Iterable]] = None
    locality: Optional[Sequence[Optional[str]]] = None
    input_shuffles: Tuple[ShuffleSpec, ...] = ()
    input_merge: Optional[InputMerge] = None
    output_shuffle: Optional[ShuffleSpec] = None
    map_output_fn: Optional[MapOutputFn] = None
    action_fn: Optional[Callable[[int, Iterator], Any]] = None
    parents: Tuple[int, ...] = ()

    @property
    def is_result(self) -> bool:
        return self.action_fn is not None

    def task_dependencies(self, partition: int) -> frozenset:
        """Union of dependency sets over every input shuffle."""
        deps: set = set()
        for spec in self.input_shuffles:
            deps |= spec.reduce_deps(partition)
        return frozenset(deps)


@dataclass
class PhysicalPlan:
    """Stages in topological order; the last stage is the result stage."""

    stages: List[StageSpec]
    finalize: Callable[[List[Any]], Any]

    def __post_init__(self) -> None:
        if not self.stages:
            raise PlanError("plan has no stages")
        if not self.stages[-1].is_result:
            raise PlanError("last stage must be the result stage")
        for i, stage in enumerate(self.stages):
            if stage.stage_index != i:
                raise PlanError("stage indices must be dense and ordered")

    @property
    def result_stage(self) -> StageSpec:
        return self.stages[-1]

    @property
    def num_shuffles(self) -> int:
        return sum(1 for s in self.stages if s.output_shuffle is not None)

    def total_tasks(self) -> int:
        return sum(s.num_tasks for s in self.stages)


@dataclass(frozen=True)
class Action:
    """What to do with the final stage's records."""

    name: str
    action_fn: Callable[[int, Iterator], Any]
    finalize: Callable[[List[Any]], Any]


def collect_action() -> Action:
    return Action("collect", lambda _p, it: list(it), _concat)


def count_action() -> Action:
    return Action("count", lambda _p, it: sum(1 for _ in it), lambda parts: sum(parts))


def reduce_action(fn: Callable[[Any, Any], Any]) -> Action:
    def local(_p: int, it: Iterator) -> List[Any]:
        acc = None
        seen = False
        for x in it:
            acc = x if not seen else fn(acc, x)
            seen = True
        return [acc] if seen else []

    def final(parts: List[List[Any]]) -> Any:
        values = [v for part in parts for v in part]
        if not values:
            raise PlanError("reduce of empty dataset")
        return functools.reduce(fn, values)

    return Action("reduce", local, final)


def dict_action() -> Action:
    """Collect (key, value) pairs into a dict (keys must be unique)."""
    return Action(
        "collect_dict",
        lambda _p, it: list(it),
        lambda parts: dict(kv for part in parts for kv in part),
    )


def foreach_action(fn: Callable[[Any], None]) -> Action:
    """Apply a side-effecting function per record on the workers."""

    def local(_p: int, it: Iterator) -> int:
        n = 0
        for x in it:
            fn(x)
            n += 1
        return n

    return Action("foreach", local, lambda parts: sum(parts))


def _concat(parts: List[List[Any]]) -> List[Any]:
    out: List[Any] = []
    for part in parts:
        out.extend(part)
    return out


# ----------------------------------------------------------------------
# Pipeline / merge helpers
# ----------------------------------------------------------------------
def _compose(ops: Sequence[PipelineOp]) -> PipelineOp:
    ops = list(ops)

    def pipeline(partition: int, it: Iterator) -> Iterator:
        for op in ops:
            it = op(partition, it)
        return it

    return pipeline


def _flatten_streams(fetched_one: List[List[Iterable]]) -> List[Iterable]:
    if len(fetched_one) != 1:
        raise PlanError(f"expected one input shuffle, got {len(fetched_one)}")
    return fetched_one[0]


def _make_hash_map_output(
    spec: ShuffleSpec, aggregator: Optional[Aggregator], combine: bool
) -> MapOutputFn:
    partitioner = spec.partitioner

    def map_output(_partition: int, it: Iterator) -> Dict[int, List]:
        buckets: Dict[int, List] = {r: [] for r in range(spec.num_reducers)}
        if combine and aggregator is not None:
            by_bucket: Dict[int, List] = {}
            for kv in it:
                by_bucket.setdefault(partitioner.partition(kv[0]), []).append(kv)
            for r, pairs in by_bucket.items():
                buckets[r] = list(combine_locally(pairs, aggregator).items())
        else:
            for kv in it:
                buckets[partitioner.partition(kv[0])].append(kv)
        return buckets

    return map_output


def _make_tree_map_output(
    spec: ShuffleSpec, fn: Callable[[Any, Any], Any]
) -> MapOutputFn:
    def map_output(partition: int, it: Iterator) -> Dict[int, List]:
        acc = None
        seen = False
        for x in it:
            acc = x if not seen else fn(acc, x)
            seen = True
        bucket = partition // spec.fan_in
        return {bucket: ([acc] if seen else [])}

    return map_output


def _make_cogroup_merge(mode: str) -> InputMerge:
    def merge(_partition: int, fetched: List[List[Iterable]]) -> Iterator:
        if len(fetched) != 2:
            raise PlanError(f"cogroup expects two input shuffles, got {len(fetched)}")
        left: Dict[Any, List[Any]] = {}
        right: Dict[Any, List[Any]] = {}
        for stream in fetched[0]:
            for k, v in stream:
                left.setdefault(k, []).append(v)
        for stream in fetched[1]:
            for k, v in stream:
                right.setdefault(k, []).append(v)
        if mode == "cogroup":
            for k in left.keys() | right.keys():
                yield (k, (left.get(k, []), right.get(k, [])))
            return
        for k, lvs in left.items():
            rvs = right.get(k)
            if rvs is None:
                if mode == "left":
                    for lv in lvs:
                        yield (k, (lv, None))
                continue
            for lv in lvs:
                for rv in rvs:
                    yield (k, (lv, rv))

    return merge


def _make_union_map_output(spec: ShuffleSpec) -> MapOutputFn:
    """Round-robin raw records across the union's reduce partitions."""

    def map_output(_partition: int, it: Iterator) -> Dict[int, List]:
        buckets: Dict[int, List] = {r: [] for r in range(spec.num_reducers)}
        for i, record in enumerate(it):
            buckets[i % spec.num_reducers].append(record)
        return buckets

    return map_output


# ----------------------------------------------------------------------
# The planner
# ----------------------------------------------------------------------
class _OpenStage:
    """A stage under construction during the DAG walk."""

    def __init__(self, num_tasks: int):
        self.num_tasks = num_tasks
        self.ops: List[PipelineOp] = []
        self.source_fn: Optional[Callable[[int], Iterable]] = None
        self.locality: Optional[Sequence[Optional[str]]] = None
        self.input_shuffles: Tuple[ShuffleSpec, ...] = ()
        self.input_merge: Optional[InputMerge] = None
        self.parents: Tuple[int, ...] = ()


class _Planner:
    def __init__(self, map_side_combine: bool):
        self.map_side_combine = map_side_combine
        self.stages: List[StageSpec] = []
        self._next_shuffle_id = 0

    def _new_shuffle_id(self) -> int:
        sid = self._next_shuffle_id
        self._next_shuffle_id += 1
        return sid

    def _close_stage(
        self,
        open_stage: _OpenStage,
        output_shuffle: ShuffleSpec,
        map_output_fn: MapOutputFn,
    ) -> int:
        index = len(self.stages)
        self.stages.append(
            StageSpec(
                stage_index=index,
                num_tasks=open_stage.num_tasks,
                pipeline=_compose(open_stage.ops),
                source_fn=open_stage.source_fn,
                locality=open_stage.locality,
                input_shuffles=open_stage.input_shuffles,
                input_merge=open_stage.input_merge,
                output_shuffle=output_shuffle,
                map_output_fn=map_output_fn,
                parents=open_stage.parents,
            )
        )
        return index

    def visit(self, node: Dataset) -> _OpenStage:
        if isinstance(node, SourceDataset):
            open_stage = _OpenStage(node.num_partitions)
            open_stage.source_fn = node.partition_fn
            open_stage.locality = node.locality
            return open_stage

        if isinstance(node, NarrowDataset):
            open_stage = self.visit(node.parent)
            open_stage.ops.append(node.op)
            return open_stage

        if isinstance(node, ShuffledDataset):
            return self._visit_shuffle(node)

        if isinstance(node, CoGroupDataset):
            return self._visit_cogroup(node)

        if isinstance(node, UnionDataset):
            return self._visit_union(node)

        if isinstance(node, TreeStageDataset):
            return self._visit_tree(node)

        raise PlanError(f"unknown dataset node type: {type(node).__name__}")

    def _visit_shuffle(self, node: ShuffledDataset) -> _OpenStage:
        parent_stage = self.visit(node.parent)
        spec = ShuffleSpec(
            shuffle_id=self._new_shuffle_id(),
            num_maps=parent_stage.num_tasks,
            partitioner=node.partitioner,
        )
        combine = self.map_side_combine and node.combinable
        map_output_fn = _make_hash_map_output(spec, node.aggregator, combine)
        parent_index = self._close_stage(parent_stage, spec, map_output_fn)

        aggregator = node.aggregator
        if node.reduce_mode == "combine":
            assert aggregator is not None
            if combine:
                merge: InputMerge = lambda _p, fetched: merge_combiners_iter(
                    _flatten_streams(fetched), aggregator
                )
            else:
                merge = lambda _p, fetched: reduce_values_iter(
                    _flatten_streams(fetched), aggregator
                )
        elif node.reduce_mode == "group":
            merge = lambda _p, fetched: group_values_iter(_flatten_streams(fetched))
        else:  # identity
            merge = lambda _p, fetched: (
                kv for stream in _flatten_streams(fetched) for kv in stream
            )

        open_stage = _OpenStage(spec.num_reducers)
        open_stage.input_shuffles = (spec,)
        open_stage.input_merge = merge
        open_stage.parents = (parent_index,)
        return open_stage

    def _visit_cogroup(self, node: CoGroupDataset) -> _OpenStage:
        left_stage = self.visit(node.left)
        left_spec = ShuffleSpec(
            shuffle_id=self._new_shuffle_id(),
            num_maps=left_stage.num_tasks,
            partitioner=node.partitioner,
        )
        left_index = self._close_stage(
            left_stage, left_spec, _make_hash_map_output(left_spec, None, False)
        )

        right_stage = self.visit(node.right)
        right_spec = ShuffleSpec(
            shuffle_id=self._new_shuffle_id(),
            num_maps=right_stage.num_tasks,
            partitioner=node.partitioner,
        )
        right_index = self._close_stage(
            right_stage, right_spec, _make_hash_map_output(right_spec, None, False)
        )

        open_stage = _OpenStage(node.partitioner.num_partitions)
        open_stage.input_shuffles = (left_spec, right_spec)
        open_stage.input_merge = _make_cogroup_merge(node.mode)
        open_stage.parents = (left_index, right_index)
        return open_stage

    def _visit_union(self, node: UnionDataset) -> _OpenStage:
        left_stage = self.visit(node.left)
        left_spec = ShuffleSpec(
            shuffle_id=self._new_shuffle_id(),
            num_maps=left_stage.num_tasks,
            partitioner=node.partitioner,
        )
        left_index = self._close_stage(
            left_stage, left_spec, _make_union_map_output(left_spec)
        )

        right_stage = self.visit(node.right)
        right_spec = ShuffleSpec(
            shuffle_id=self._new_shuffle_id(),
            num_maps=right_stage.num_tasks,
            partitioner=node.partitioner,
        )
        right_index = self._close_stage(
            right_stage, right_spec, _make_union_map_output(right_spec)
        )

        def merge(_p: int, fetched: List[List[Iterable]]) -> Iterator:
            for side in fetched:
                for stream in side:
                    yield from stream

        open_stage = _OpenStage(node.partitioner.num_partitions)
        open_stage.input_shuffles = (left_spec, right_spec)
        open_stage.input_merge = merge
        open_stage.parents = (left_index, right_index)
        return open_stage

    def _visit_tree(self, node: TreeStageDataset) -> _OpenStage:
        parent_stage = self.visit(node.parent)
        from repro.dag.partitioning import HashPartitioner

        spec = ShuffleSpec(
            shuffle_id=self._new_shuffle_id(),
            num_maps=parent_stage.num_tasks,
            partitioner=HashPartitioner(node.num_partitions),
            structure="tree",
            fan_in=node.fan_in,
        )
        map_output_fn = _make_tree_map_output(spec, node.fn)
        parent_index = self._close_stage(parent_stage, spec, map_output_fn)

        fn = node.fn

        def merge(_p: int, fetched: List[List[Iterable]]) -> Iterator:
            acc = None
            seen = False
            for stream in _flatten_streams(fetched):
                for x in stream:
                    acc = x if not seen else fn(acc, x)
                    seen = True
            if seen:
                yield acc

        open_stage = _OpenStage(node.num_partitions)
        open_stage.input_shuffles = (spec,)
        open_stage.input_merge = merge
        open_stage.parents = (parent_index,)
        return open_stage


def compile_plan(
    dataset: Dataset, action: Action, map_side_combine: bool = True
) -> PhysicalPlan:
    """Compile a logical dataset + action into a :class:`PhysicalPlan`."""
    planner = _Planner(map_side_combine=map_side_combine)
    final_open = planner.visit(dataset)
    index = len(planner.stages)
    planner.stages.append(
        StageSpec(
            stage_index=index,
            num_tasks=final_open.num_tasks,
            pipeline=_compose(final_open.ops),
            source_fn=final_open.source_fn,
            locality=final_open.locality,
            input_shuffles=final_open.input_shuffles,
            input_merge=final_open.input_merge,
            action_fn=action.action_fn,
            parents=final_open.parents,
        )
    )
    return PhysicalPlan(stages=planner.stages, finalize=action.finalize)
