"""Logical dataset DAG — the user-facing functional API.

A :class:`Dataset` is an immutable description of a distributed
computation, mirroring Spark's RDD API (the substrate Drizzle was built
on).  Transformations build the DAG; nothing executes until an *action*
(`collect`, `count`, `reduce`, ...) is compiled by
:mod:`repro.dag.plan` and submitted to an engine.

Narrow transformations (map/filter/flat_map/map_partitions) are fused into
a single pipeline per stage, exactly as Figure 1 of the paper shows; wide
transformations (reduce_by_key, group_by_key, join, ...) introduce shuffle
dependencies which the planner turns into stage boundaries.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import PlanError
from repro.dag.combiners import Aggregator
from repro.dag.partitioning import HashPartitioner, Partitioner

KV = Tuple[Any, Any]
PipelineOp = Callable[[int, Iterator], Iterator]


class Dataset:
    """Base logical node.  ``num_partitions`` is the node's parallelism."""

    def __init__(self, num_partitions: int):
        if num_partitions < 1:
            raise PlanError(f"num_partitions must be >= 1, got {num_partitions}")
        self.num_partitions = num_partitions

    # ------------------------------------------------------------------
    # Narrow transformations
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any]) -> "Dataset":
        return NarrowDataset(self, lambda _p, it: map(fn, it), label="map")

    def filter(self, fn: Callable[[Any], bool]) -> "Dataset":
        return NarrowDataset(self, lambda _p, it: filter(fn, it), label="filter")

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "Dataset":
        def op(_p: int, it: Iterator) -> Iterator:
            for item in it:
                yield from fn(item)

        return NarrowDataset(self, op, label="flat_map")

    def map_partitions(
        self, fn: Callable[[int, Iterator], Iterable[Any]]
    ) -> "Dataset":
        return NarrowDataset(self, lambda p, it: iter(fn(p, it)), label="map_partitions")

    def key_by(self, fn: Callable[[Any], Any]) -> "Dataset":
        return NarrowDataset(
            self, lambda _p, it: ((fn(x), x) for x in it), label="key_by"
        )

    def map_values(self, fn: Callable[[Any], Any]) -> "Dataset":
        return NarrowDataset(
            self, lambda _p, it: ((k, fn(v)) for k, v in it), label="map_values"
        )

    def keys(self) -> "Dataset":
        return NarrowDataset(self, lambda _p, it: (k for k, _v in it), label="keys")

    def values(self) -> "Dataset":
        return NarrowDataset(self, lambda _p, it: (v for _k, v in it), label="values")

    def sample(self, fraction: float, seed: int = 0) -> "Dataset":
        """Bernoulli sample; deterministic per (seed, partition) so replays
        of a micro-batch sample identically (required for exactly-once)."""
        if not 0.0 <= fraction <= 1.0:
            raise PlanError(f"fraction must be in [0, 1], got {fraction}")

        def op(partition: int, it: Iterator) -> Iterator:
            import random as _random

            rng = _random.Random(seed * 1_000_003 + partition)
            return (x for x in it if rng.random() < fraction)

        return NarrowDataset(self, op, label="sample")

    # ------------------------------------------------------------------
    # Wide transformations (introduce shuffles)
    # ------------------------------------------------------------------
    def reduce_by_key(
        self,
        fn: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
        partitioner: Optional[Partitioner] = None,
    ) -> "Dataset":
        """Key-wise reduction with map-side partial aggregation (§3.5)."""
        return ShuffledDataset(
            self,
            partitioner=partitioner or HashPartitioner(num_partitions or self.num_partitions),
            aggregator=Aggregator.from_reduce(fn),
            reduce_mode="combine",
            combinable=True,
        )

    def aggregate_by_key(
        self,
        zero: Callable[[], Any],
        seq_op: Callable[[Any, Any], Any],
        comb_op: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
    ) -> "Dataset":
        return ShuffledDataset(
            self,
            partitioner=HashPartitioner(num_partitions or self.num_partitions),
            aggregator=Aggregator.from_zero(zero, seq_op, comb_op),
            reduce_mode="combine",
            combinable=True,
        )

    def group_by_key(self, num_partitions: Optional[int] = None) -> "Dataset":
        """Key-wise grouping into (key, [values]); no map-side combining —
        this is the unoptimized data plane of Figure 6."""
        return ShuffledDataset(
            self,
            partitioner=HashPartitioner(num_partitions or self.num_partitions),
            aggregator=None,
            reduce_mode="group",
            combinable=False,
        )

    def distinct(self, num_partitions: Optional[int] = None) -> "Dataset":
        """De-duplicate records (hashable) via a keyed shuffle."""
        return (
            self.map(lambda x: (x, None))
            .reduce_by_key(lambda a, _b: a, num_partitions)
            .keys()
        )

    def count_by_key(self, num_partitions: Optional[int] = None) -> "Dataset":
        """(key, _) pairs -> (key, count), with map-side combining."""
        return self.map(lambda kv: (kv[0], 1)).reduce_by_key(
            lambda a, b: a + b, num_partitions
        )

    def top(self, n: int, key: Optional[Callable[[Any], Any]] = None) -> "Dataset":
        """The n largest records: local top-n per partition, merged on a
        single reducer (a tiny, fixed-size shuffle)."""
        if n < 1:
            raise PlanError("n must be >= 1")
        key_fn = key if key is not None else (lambda x: x)

        def local_top(_p: int, it: Iterator) -> List[Any]:
            import heapq

            return [(0, x) for x in heapq.nlargest(n, it, key=key_fn)]

        def merge_top(_p: int, it: Iterator) -> List[Any]:
            import heapq

            return heapq.nlargest(n, (v for _k, v in it), key=key_fn)

        return (
            self.map_partitions(local_top)
            .partition_by(HashPartitioner(1))
            .map_partitions(merge_top)
        )

    def partition_by(self, partitioner: Partitioner) -> "Dataset":
        """Repartition (key, value) pairs without aggregation."""
        return ShuffledDataset(
            self,
            partitioner=partitioner,
            aggregator=None,
            reduce_mode="identity",
            combinable=False,
        )

    def join(self, other: "Dataset", num_partitions: Optional[int] = None) -> "Dataset":
        """Inner join of two keyed datasets -> (key, (left, right))."""
        parts = num_partitions or max(self.num_partitions, other.num_partitions)
        return CoGroupDataset(self, other, HashPartitioner(parts), mode="inner")

    def left_join(
        self, other: "Dataset", num_partitions: Optional[int] = None
    ) -> "Dataset":
        """Left outer join -> (key, (left, right_or_None))."""
        parts = num_partitions or max(self.num_partitions, other.num_partitions)
        return CoGroupDataset(self, other, HashPartitioner(parts), mode="left")

    def cogroup(
        self, other: "Dataset", num_partitions: Optional[int] = None
    ) -> "Dataset":
        """Full cogroup -> (key, ([left values], [right values])) for every
        key present on either side."""
        parts = num_partitions or max(self.num_partitions, other.num_partitions)
        return CoGroupDataset(self, other, HashPartitioner(parts), mode="cogroup")

    def union(self, other: "Dataset", num_partitions: Optional[int] = None) -> "Dataset":
        """All records of both datasets (bag union, duplicates kept).

        Implemented as a two-parent shuffle whose reduce side concatenates
        the incoming streams (unlike Spark's narrow union, this costs a
        shuffle — the planner's stages are single-input pipelines)."""
        parts = num_partitions or max(self.num_partitions, other.num_partitions)
        return UnionDataset(self, other, HashPartitioner(parts))

    def tree_reduce_stage(
        self, fn: Callable[[Any, Any], Any], fan_in: int = 2
    ) -> "Dataset":
        """One level of tree reduction (§3.6): partition *i* feeds reducer
        ``i // fan_in``, and pre-scheduling narrows each reducer's
        dependency set to its ``fan_in`` parents."""
        if fan_in < 2:
            raise PlanError("fan_in must be >= 2")
        num_reducers = (self.num_partitions + fan_in - 1) // fan_in
        return TreeStageDataset(self, fn, fan_in, num_reducers)


class SourceDataset(Dataset):
    """A leaf: ``partition_fn(partition_index)`` yields that partition's
    records, *evaluated on the worker* (this is how the Drizzle port of
    Spark Streaming moves source-metadata computation out of the driver,
    paper §4)."""

    def __init__(
        self,
        partition_fn: Callable[[int], Iterable[Any]],
        num_partitions: int,
        locality: Optional[Sequence[Optional[str]]] = None,
    ):
        super().__init__(num_partitions)
        self.partition_fn = partition_fn
        self.locality = list(locality) if locality is not None else None


def parallelize(data: Sequence[Any], num_partitions: int) -> SourceDataset:
    """Split an in-memory sequence into ``num_partitions`` even slices."""
    if num_partitions < 1:
        raise PlanError("num_partitions must be >= 1")
    items: List[Any] = list(data)

    def partition_fn(index: int) -> Iterable[Any]:
        return items[index::num_partitions]

    return SourceDataset(partition_fn, num_partitions)


def from_partitions(partitions: Sequence[Sequence[Any]]) -> SourceDataset:
    """A source with explicitly provided partition contents."""
    if not partitions:
        raise PlanError("need at least one partition")
    data = [list(p) for p in partitions]
    return SourceDataset(lambda i: data[i], len(data))


class NarrowDataset(Dataset):
    """A narrow (pipelined) transformation of a single parent."""

    def __init__(self, parent: Dataset, op: PipelineOp, label: str = "narrow"):
        super().__init__(parent.num_partitions)
        self.parent = parent
        self.op = op
        self.label = label


class ShuffledDataset(Dataset):
    """A wide transformation: the parent's output is hash/range
    partitioned into ``partitioner.num_partitions`` reduce partitions.

    ``reduce_mode``:
      * ``combine``  — aggregate values per key using ``aggregator``
      * ``group``    — collect values per key into a list
      * ``identity`` — pass pairs through (pure repartition)
    ``combinable`` — whether map-side combining is semantically valid.
    """

    def __init__(
        self,
        parent: Dataset,
        partitioner: Partitioner,
        aggregator: Optional[Aggregator],
        reduce_mode: str,
        combinable: bool,
    ):
        super().__init__(partitioner.num_partitions)
        if reduce_mode not in ("combine", "group", "identity"):
            raise PlanError(f"unknown reduce_mode {reduce_mode!r}")
        if reduce_mode == "combine" and aggregator is None:
            raise PlanError("combine mode requires an aggregator")
        self.parent = parent
        self.partitioner = partitioner
        self.aggregator = aggregator
        self.reduce_mode = reduce_mode
        self.combinable = combinable


class CoGroupDataset(Dataset):
    """Two keyed parents shuffled to a shared partitioner; the reduce side
    combines them per ``mode``:

    * ``inner``   — (key, (left, right)) pairs for keys on both sides;
    * ``left``    — (key, (left, right_or_None));
    * ``cogroup`` — (key, ([lefts], [rights])) for every key.
    """

    def __init__(
        self,
        left: Dataset,
        right: Dataset,
        partitioner: Partitioner,
        mode: str = "inner",
    ):
        super().__init__(partitioner.num_partitions)
        if mode not in ("inner", "left", "cogroup"):
            raise PlanError(f"unknown join mode {mode!r}")
        self.left = left
        self.right = right
        self.partitioner = partitioner
        self.mode = mode


class UnionDataset(Dataset):
    """Bag union of two parents via a two-input concatenating shuffle."""

    def __init__(self, left: Dataset, right: Dataset, partitioner: Partitioner):
        super().__init__(partitioner.num_partitions)
        self.left = left
        self.right = right
        self.partitioner = partitioner


class TreeStageDataset(Dataset):
    """One tree-reduction level: map partition i sends its locally reduced
    value to reducer i // fan_in (§3.6 communication structure)."""

    def __init__(
        self,
        parent: Dataset,
        fn: Callable[[Any, Any], Any],
        fan_in: int,
        num_reducers: int,
    ):
        super().__init__(num_reducers)
        self.parent = parent
        self.fn = fn
        self.fan_in = fan_in
