"""Closure serialization for task payloads that cross a process boundary.

The stdlib pickle refuses lambdas, nested functions, and anything defined
in ``__main__`` — exactly the closures a :class:`~repro.dag.plan.StageSpec`
is made of (``pipeline`` is a fused nested function, ``input_merge`` is
usually a lambda).  The process executor backend therefore serializes
stage payloads with :func:`dumps_closure`, a pickler that falls back to
*by-value* function pickling: the code object goes through ``marshal``,
and the closure cells, defaults, and the referenced subset of the
function's globals are pickled recursively.

Importable module-level functions still pickle by reference (cheap, and
the child re-imports the module), so only the genuinely dynamic closures
pay the by-value cost.

When something in a payload cannot cross the boundary — a captured lock,
an open file handle, a socket — :func:`dumps_closure` walks the payload
to find the *named* offending capture and raises
:class:`~repro.common.errors.SerializationError` naming it, instead of
letting a bare ``PicklingError`` surface from the worker pool.
"""

from __future__ import annotations

import dataclasses
import importlib
import io
import marshal
import pickle
import sys
import types
from typing import Any, Dict, Optional, Tuple

from repro.common.errors import SerializationError

__all__ = ["dumps_closure", "loads_closure"]

# Sentinel standing in for an empty (never-assigned) closure cell.
_EMPTY_CELL = "__repro_empty_cell__"

# Marshal-layer caches.  A streaming workload re-ships the same closure
# *shapes* every batch — only the captured values change — so the
# marshal bytes and the referenced-global name set of a given code
# object recur across thousands of messages.  Code objects are
# immutable, which makes both directions safely cacheable: the encode
# side keys on the code object itself, the decode side on its marshal
# bytes (rebuilt functions then share one code object, exactly as
# sibling closures from one ``def`` do).  Bounded by wholesale clear —
# entries are a few hundred bytes and recomputing is only ever a cost,
# never a correctness issue.
_CODE_CACHE_MAX = 512
# code -> (marshal bytes, referenced co_names across nested code)
_ENCODE_CACHE: Dict[types.CodeType, Tuple[bytes, Tuple[str, ...]]] = {}
_DECODE_CACHE: Dict[bytes, types.CodeType] = {}


def _code_entry(code: types.CodeType) -> Tuple[bytes, Tuple[str, ...]]:
    entry = _ENCODE_CACHE.get(code)
    if entry is None:
        names = set()
        stack = [code]
        while stack:
            c = stack.pop()
            names.update(c.co_names)
            for const in c.co_consts:
                if isinstance(const, types.CodeType):
                    stack.append(const)
        if len(_ENCODE_CACHE) >= _CODE_CACHE_MAX:
            _ENCODE_CACHE.clear()
        entry = (marshal.dumps(code), tuple(names))
        _ENCODE_CACHE[code] = entry
    return entry


def _referenced_globals(fn: types.FunctionType) -> Dict[str, Any]:
    """The subset of ``fn.__globals__`` its code (including nested code
    objects) can actually name.  ``co_names`` over-approximates — it also
    lists attribute names — but the intersection with the globals dict is
    exactly what a rebuilt function could look up."""
    _, names = _code_entry(fn.__code__)
    fn_globals = fn.__globals__
    return {name: fn_globals[name] for name in names if name in fn_globals}


def _importable_by_name(fn: types.FunctionType) -> bool:
    """True when the child process can recover ``fn`` by importing its
    module — i.e. plain by-reference pickling will work."""
    if fn.__module__ in ("__main__", "__mp_main__", None):
        return False
    if "<locals>" in fn.__qualname__ or "<lambda>" in fn.__qualname__:
        return False
    module = sys.modules.get(fn.__module__)
    if module is None:
        return False
    obj: Any = module
    for part in fn.__qualname__.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            return False
    return obj is fn


def _rebuild_cell(value: Any) -> types.CellType:
    if isinstance(value, str) and value == _EMPTY_CELL:
        return types.CellType()
    return types.CellType(value)


def _rebuild_function(
    code_bytes: bytes,
    name: str,
    qualname: str,
    module: Optional[str],
    defaults: Optional[Tuple],
    kwdefaults: Optional[Dict[str, Any]],
    closure_values: Tuple,
    fn_globals: Dict[str, Any],
    fn_dict: Dict[str, Any],
) -> types.FunctionType:
    code = _DECODE_CACHE.get(code_bytes)
    if code is None:
        if len(_DECODE_CACHE) >= _CODE_CACHE_MAX:
            _DECODE_CACHE.clear()
        code = marshal.loads(code_bytes)
        _DECODE_CACHE[code_bytes] = code
    namespace = dict(fn_globals)
    namespace["__builtins__"] = __builtins__
    if module is not None:
        namespace.setdefault("__name__", module)
    closure = tuple(_rebuild_cell(v) for v in closure_values) or None
    fn = types.FunctionType(code, namespace, name, defaults, closure)
    fn.__qualname__ = qualname
    fn.__module__ = module
    if kwdefaults:
        fn.__kwdefaults__ = dict(kwdefaults)
    if fn_dict:
        fn.__dict__.update(fn_dict)
    return fn


def _reduce_function(fn: types.FunctionType) -> Tuple:
    cells = fn.__closure__ or ()
    closure_values = []
    for cell in cells:
        try:
            closure_values.append(cell.cell_contents)
        except ValueError:  # never-assigned cell (e.g. recursive def mid-build)
            closure_values.append(_EMPTY_CELL)
    return (
        _rebuild_function,
        (
            _code_entry(fn.__code__)[0],
            fn.__name__,
            fn.__qualname__,
            fn.__module__,
            fn.__defaults__,
            fn.__kwdefaults__,
            tuple(closure_values),
            _referenced_globals(fn),
            dict(fn.__dict__),
        ),
    )


class _ClosurePickler(pickle.Pickler):
    """Pickler that serializes non-importable functions by value and
    modules by name."""

    def reducer_override(self, obj: Any) -> Any:
        if isinstance(obj, types.FunctionType):
            if _importable_by_name(obj):
                return NotImplemented  # stdlib by-reference path
            return _reduce_function(obj)
        if isinstance(obj, types.ModuleType):
            return (importlib.import_module, (obj.__name__,))
        return NotImplemented


def _picklable(value: Any) -> bool:
    try:
        buf = io.BytesIO()
        _ClosurePickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(value)
        return True
    except Exception:  # noqa: BLE001 - any failure means "not picklable"
        return False


def _describe(value: Any) -> str:
    text = repr(value)
    if len(text) > 60:
        text = text[:57] + "..."
    return f"{text} (type {type(value).__name__})"


def _find_offender(obj: Any, seen: set) -> Optional[str]:
    """Walk an unpicklable object graph and name the first capture,
    element, or attribute that cannot be serialized."""
    if id(obj) in seen:
        return None
    seen.add(id(obj))

    if isinstance(obj, types.FunctionType) and not _importable_by_name(obj):
        cells = obj.__closure__ or ()
        for name, cell in zip(obj.__code__.co_freevars, cells):
            try:
                value = cell.cell_contents
            except ValueError:
                continue
            if not _picklable(value):
                deeper = _find_offender(value, seen)
                return deeper or (
                    f"captured variable {name!r} of function "
                    f"{obj.__qualname__!r} = {_describe(value)}"
                )
        for name, value in _referenced_globals(obj).items():
            if not _picklable(value):
                deeper = _find_offender(value, seen)
                return deeper or (
                    f"global {name!r} referenced by function "
                    f"{obj.__qualname__!r} = {_describe(value)}"
                )
        for index, value in enumerate(obj.__defaults__ or ()):
            if not _picklable(value):
                deeper = _find_offender(value, seen)
                return deeper or (
                    f"default argument #{index} of function "
                    f"{obj.__qualname__!r} = {_describe(value)}"
                )
        return None

    if isinstance(obj, (list, tuple, set, frozenset)):
        for value in obj:
            if not _picklable(value):
                return _find_offender(value, seen) or f"element {_describe(value)}"
        return None

    if isinstance(obj, dict):
        for key, value in obj.items():
            if not _picklable(value):
                return (
                    _find_offender(value, seen)
                    or f"value under key {key!r}: {_describe(value)}"
                )
            if not _picklable(key):
                return _find_offender(key, seen) or f"key {_describe(key)}"
        return None

    if dataclasses.is_dataclass(obj) or hasattr(obj, "__dict__"):
        for attr, value in vars(obj).items():
            if not _picklable(value):
                deeper = _find_offender(value, seen)
                return deeper or (
                    f"attribute {attr!r} of {type(obj).__name__} = {_describe(value)}"
                )
    return None


def dumps_closure(obj: Any, context: str = "task payload") -> bytes:
    """Serialize ``obj`` (closures included) to bytes for a child process.

    Raises :class:`SerializationError` naming the offending capture when
    something in the payload cannot cross the process boundary."""
    buf = io.BytesIO()
    try:
        _ClosurePickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    except RecursionError as err:
        raise SerializationError(
            f"cannot serialize {context}: the closure graph is "
            "self-referential (a local function captures itself)"
        ) from err
    except Exception as err:  # noqa: BLE001 - diagnose, then re-raise typed
        offender = _find_offender(obj, set())
        detail = offender or f"{_describe(obj)}: {err}"
        raise SerializationError(
            f"cannot serialize {context} for the process executor: {detail}. "
            "Captures must be picklable values; move handles (locks, files, "
            "sockets) inside the function body or switch to the thread backend."
        ) from err
    return buf.getvalue()


def loads_closure(data: bytes) -> Any:
    """Inverse of :func:`dumps_closure` (plain unpickling; by-value
    functions rebuild through :func:`_rebuild_function`)."""
    return pickle.loads(data)
