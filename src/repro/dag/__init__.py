"""Dataset DAG: logical operators, partitioning, combiners, stage planner."""

from repro.dag.combiners import Aggregator, combine_locally
from repro.dag.dataset import (
    CoGroupDataset,
    Dataset,
    NarrowDataset,
    ShuffledDataset,
    SourceDataset,
    TreeStageDataset,
    UnionDataset,
    from_partitions,
    parallelize,
)
from repro.dag.partitioning import HashPartitioner, Partitioner, RangePartitioner
from repro.dag.serde import dumps_closure, loads_closure
from repro.dag.plan import (
    Action,
    PhysicalPlan,
    ShuffleSpec,
    StageSpec,
    collect_action,
    compile_plan,
    count_action,
    dict_action,
    foreach_action,
    reduce_action,
)

__all__ = [
    "Aggregator",
    "combine_locally",
    "CoGroupDataset",
    "Dataset",
    "NarrowDataset",
    "ShuffledDataset",
    "SourceDataset",
    "TreeStageDataset",
    "UnionDataset",
    "from_partitions",
    "parallelize",
    "HashPartitioner",
    "Partitioner",
    "RangePartitioner",
    "Action",
    "PhysicalPlan",
    "ShuffleSpec",
    "StageSpec",
    "collect_action",
    "compile_plan",
    "count_action",
    "dict_action",
    "foreach_action",
    "reduce_action",
    "dumps_closure",
    "loads_closure",
]
