"""Cluster-wide live telemetry plane.

Since the tcp transport and the process executor backend, each worker is
(or behaves like) its own process: ``cluster.metrics.snapshot()`` on the
driver cannot see per-worker queueing delay, stage latency, throughput,
or backlog.  This module closes that gap:

* :class:`DeltaSnapshotter` — worker-side: computes *incremental*
  snapshots of a :class:`~repro.common.metrics.MetricsRegistry` (counter
  increments, changed gauges, new histogram samples) so each shipped
  payload carries only what happened since the last one.
* :class:`ClusterTelemetry` — driver-side: a time-series store with
  bounded ring buffers per ``(worker, metric)``, merge-on-arrival
  rollups, derived **health signals** over a sliding window, staleness
  tracking off the heartbeat timeout, chaos-fault annotations, and an
  SLO watchdog that emits ``slo.violation`` trace instants plus a driver
  log line when a signal breaches its configured threshold.

Shipping paths (see ``docs/observability.md``): with heartbeats enabled
the delta piggybacks on the existing ``heartbeat`` RPC (same message
count, fresher payload); with heartbeats off, workers run a dedicated
loop calling :meth:`BaseTransport.ship_telemetry`, which both backends
implement as *uncounted* plumbing — like ``__announce__``/``__ping__`` —
so arming telemetry preserves the ±0 ``count.rpc_messages`` parity
between the inproc and tcp transports.

``ClusterTelemetry.signals()`` is the stable API the §3.4 tuner reads
(:meth:`GroupSizeTuner.observe_signals`) and the future ``repro.elastic``
controller will subscribe to.
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.common.clock import Clock, WallClock
from repro.common.config import TelemetryConf
from repro.common.metrics import (
    COUNT_CHAOS_INJECTED,
    COUNT_NET_CONNECT_RETRIES,
    COUNT_NET_REDIALS,
    COUNT_RECOVERIES,
    COUNT_SLO_VIOLATIONS,
    COUNT_TELEMETRY_DELTAS,
    COUNT_TELEMETRY_RECORDS,
    COUNT_TELEMETRY_TASKS,
    GAUGE_TELEMETRY_BACKLOG,
    GAUGE_TELEMETRY_STREAM_BACKLOG,
    HIST_TELEMETRY_BATCH_WALL,
    HIST_TELEMETRY_QUEUE_DELAY,
    TELEMETRY_STAGE_LATENCY_PREFIX,
    TIME_SCHEDULING,
    TIME_TASK_TRANSFER,
    MetricsRegistry,
    _summarize,
)
from repro.obs.names import EVENT_SLO_VIOLATION
from repro.obs.trace import NULL_RECORDER, Recorder

log = logging.getLogger("repro.obs.live")

# The driver's own registry is folded into the store under this timeline
# id; it is never subject to staleness (the driver polls itself).
DRIVER_TIMELINE = "driver"

# Bounded per-worker fault-annotation ring (chaos events are rare).
_MAX_FAULTS = 64
# Bounded SLO violation log.
_MAX_VIOLATIONS = 256
# Bounded cluster-wide scale-event ring (joins/leaves/losses + controller
# decisions; membership churn is orders of magnitude rarer than deltas).
_MAX_SCALE_EVENTS = 64


class DeltaSnapshotter:
    """Incremental snapshots of one :class:`MetricsRegistry`.

    Each :meth:`delta` call returns what changed since the previous call:

    * ``counters`` — name -> increment (omitted when unchanged),
    * ``gauges`` — name -> current value (only when changed),
    * ``samples`` — histogram name -> new samples since the last cursor,
      capped at ``max_samples`` per delta (the rest ship next time).

    Returns ``None`` when nothing changed.  A registry ``reset()``
    underneath the snapshotter is detected (counter went backwards /
    cursor past the end) and treated as a fresh start, not an error.
    Thread-safe: ship loops and on-demand pollers may race.
    """

    def __init__(self, registry: MetricsRegistry, max_samples: int = 512):
        self.registry = registry
        self.max_samples = max_samples
        self._counter_last: Dict[str, float] = {}
        self._gauge_last: Dict[str, float] = {}
        self._hist_cursor: Dict[str, int] = {}
        self._seq = 0
        self._lock = threading.Lock()

    def delta(self) -> Optional[Dict[str, Any]]:
        with self._lock:
            counters: Dict[str, float] = {}
            for name, value in self.registry.counters_snapshot().items():
                last = self._counter_last.get(name, 0.0)
                if value < last:  # registry reset underneath us
                    last = 0.0
                self._counter_last[name] = value
                if value != last:
                    counters[name] = value - last
            gauges: Dict[str, float] = {}
            for name, value in self.registry.gauges_snapshot().items():
                if self._gauge_last.get(name) != value:
                    gauges[name] = value
                    self._gauge_last[name] = value
            samples: Dict[str, List[float]] = {}
            for name in self.registry.histogram_names():
                all_samples = self.registry.histogram(name).snapshot()
                cursor = self._hist_cursor.get(name, 0)
                if cursor > len(all_samples):  # reset underneath us
                    cursor = 0
                fresh = all_samples[cursor : cursor + self.max_samples]
                self._hist_cursor[name] = cursor + len(fresh)
                if fresh:
                    samples[name] = [float(s) for s in fresh]
            if not counters and not gauges and not samples:
                return None
            self._seq += 1
            return {
                "seq": self._seq,
                "counters": counters,
                "gauges": gauges,
                "samples": samples,
            }


class _Timeline:
    """Driver-side state for one worker (or the driver itself)."""

    def __init__(self, retention: int, created_at: float):
        self.created_at = created_at
        self.last_seen = created_at
        self.deltas = 0
        # Merged cumulative counters, plus a (t, cumulative) ring per
        # counter so windowed rates can be derived.
        self.counters: Dict[str, float] = {}
        self.counter_rings: Dict[str, Deque[Tuple[float, float]]] = {}
        self.gauges: Dict[str, float] = {}
        # Histogram samples as (t, value) rings.
        self.samples: Dict[str, Deque[Tuple[float, float]]] = {}
        self.faults: Deque[Dict[str, Any]] = deque(maxlen=_MAX_FAULTS)
        self._retention = retention

    def merge(self, delta: Dict[str, Any], now: float) -> None:
        self.last_seen = now
        self.deltas += 1
        for name, inc in (delta.get("counters") or {}).items():
            total = self.counters.get(name, 0.0) + inc
            self.counters[name] = total
            ring = self.counter_rings.get(name)
            if ring is None:
                ring = self.counter_rings[name] = deque(maxlen=self._retention)
            ring.append((now, total))
        for name, value in (delta.get("gauges") or {}).items():
            self.gauges[name] = float(value)
        for name, new_samples in (delta.get("samples") or {}).items():
            ring = self.samples.get(name)
            if ring is None:
                ring = self.samples[name] = deque(maxlen=self._retention)
            for s in new_samples:
                ring.append((now, float(s)))

    def windowed_increase(self, name: str, now: float, window_s: float) -> float:
        """Counter increase over the trailing window.  Cumulative values
        start at 0 when the timeline is created, so a timeline younger
        than the window reports its total."""
        ring = self.counter_rings.get(name)
        if not ring:
            return 0.0
        cutoff = now - window_s
        baseline = 0.0
        latest = ring[-1][1]
        for t, value in ring:
            if t >= cutoff:
                break
            baseline = value
        return max(latest - baseline, 0.0)

    def windowed_samples(self, name: str, now: float, window_s: float) -> List[float]:
        ring = self.samples.get(name)
        if not ring:
            return []
        cutoff = now - window_s
        return [v for t, v in ring if t >= cutoff]


def _ms(summary: Dict[str, float]) -> Dict[str, float]:
    """Convert a seconds summary to milliseconds (counts stay counts)."""
    out: Dict[str, float] = {}
    for key, value in summary.items():
        out[key] = value if key in ("count", "dropped") else value * 1000.0
    return out


class ClusterTelemetry:
    """The driver-side time-series store and signal deriver.

    Thread-safe: deltas arrive from transport server threads and the
    heartbeat path while ``signals()`` / ``rollup()`` are read from the
    driver loop, the dashboard, and the HTTP endpoint.
    """

    def __init__(
        self,
        conf: Optional[TelemetryConf] = None,
        clock: Optional[Clock] = None,
        driver_metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Recorder] = None,
        stale_after_s: Optional[float] = None,
    ):
        self.conf = conf or TelemetryConf(enabled=True)
        self.clock = clock or WallClock()
        self.tracer = tracer if tracer is not None else NULL_RECORDER
        # A worker is stale once nothing arrived for this long; the
        # cluster passes heartbeat_timeout_s when heartbeats are on.
        self.stale_after_s = (
            stale_after_s
            if stale_after_s is not None
            else max(4 * self.conf.interval_s, 0.2)
        )
        self._driver_metrics = driver_metrics
        self._driver_snap = (
            DeltaSnapshotter(driver_metrics, self.conf.max_samples_per_delta)
            if driver_metrics is not None
            else None
        )
        self._timelines: Dict[str, _Timeline] = {}
        # Driver poll times: the wall-clock spine for coordination signals.
        self._poll_times: Deque[float] = deque(maxlen=self.conf.retention)
        self.violations: List[Dict[str, Any]] = []
        self.scale_events: Deque[Dict[str, Any]] = deque(maxlen=_MAX_SCALE_EVENTS)
        self._last_slo_check = float("-inf")
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, worker_id: str, delta: Optional[Dict[str, Any]]) -> None:
        """Merge one shipped delta onto ``worker_id``'s timeline.

        ``None``/empty deltas still refresh liveness (a heartbeat with
        nothing new is proof of life, not silence)."""
        now = self.clock.now()
        with self._lock:
            timeline = self._timeline_locked(worker_id, now)
            if delta:
                timeline.merge(delta, now)
            else:
                timeline.last_seen = now
        if delta and worker_id != DRIVER_TIMELINE:
            if self._driver_metrics is not None:
                self._driver_metrics.counter(COUNT_TELEMETRY_DELTAS).add(1)
            self._maybe_check_slo(now)

    def record_sample(
        self, name: str, value: float, worker_id: str = DRIVER_TIMELINE
    ) -> None:
        """Driver-side direct recording (e.g. per-batch wall time)."""
        now = self.clock.now()
        with self._lock:
            timeline = self._timeline_locked(worker_id, now)
            ring = timeline.samples.get(name)
            if ring is None:
                ring = timeline.samples[name] = deque(maxlen=self.conf.retention)
            ring.append((now, float(value)))

    def set_gauge(
        self, name: str, value: float, worker_id: str = DRIVER_TIMELINE
    ) -> None:
        with self._lock:
            timeline = self._timeline_locked(worker_id, self.clock.now())
            timeline.gauges[name] = float(value)

    def observe_batch(self, wall_s: float) -> None:
        """One micro-batch completed in ``wall_s`` (streaming context)."""
        self.record_sample(HIST_TELEMETRY_BATCH_WALL, wall_s)

    def observe_stream_backlog(self, remaining_batches: int) -> None:
        self.set_gauge(GAUGE_TELEMETRY_STREAM_BACKLOG, remaining_batches)

    def annotate_fault(self, worker_id: str, kind: str, site: str) -> None:
        """Pin a chaos fault onto the affected worker's timeline.  Does
        not refresh liveness: a fault is not proof of life."""
        now = self.clock.now()
        with self._lock:
            timeline = self._timelines.get(worker_id)
            if timeline is None:
                timeline = self._timelines[worker_id] = _Timeline(
                    self.conf.retention, now
                )
                # A timeline born from a fault has never shipped data;
                # make it immediately stale rather than freshly seen.
                timeline.last_seen = now - self.stale_after_s - 1e-9
            timeline.faults.append({"t": now, "kind": kind, "site": site})

    def annotate_scale_event(
        self, worker_id: str, action: str, reason: str = ""
    ) -> None:
        """Record a membership change (``join`` / ``leave`` / ``lost``)
        with the controller's (or failure detector's) reason, for the
        dashboard's scale-event lines."""
        now = self.clock.now()
        with self._lock:
            self.scale_events.append(
                {"t": now, "worker": worker_id, "action": action, "reason": reason}
            )

    def _timeline_locked(self, worker_id: str, now: float) -> _Timeline:
        timeline = self._timelines.get(worker_id)
        if timeline is None:
            timeline = self._timelines[worker_id] = _Timeline(
                self.conf.retention, now
            )
        return timeline

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    def workers(self) -> List[str]:
        with self._lock:
            return sorted(w for w in self._timelines if w != DRIVER_TIMELINE)

    def is_stale(self, worker_id: str, now: Optional[float] = None) -> bool:
        now = self.clock.now() if now is None else now
        with self._lock:
            timeline = self._timelines.get(worker_id)
        if timeline is None:
            return True
        return (now - timeline.last_seen) > self.stale_after_s

    def stale_workers(self, now: Optional[float] = None) -> List[str]:
        now = self.clock.now() if now is None else now
        return [w for w in self.workers() if self.is_stale(w, now)]

    def live_workers(self, now: Optional[float] = None) -> List[str]:
        now = self.clock.now() if now is None else now
        return [w for w in self.workers() if not self.is_stale(w, now)]

    # ------------------------------------------------------------------
    # Driver self-poll
    # ------------------------------------------------------------------
    def poll_driver(self) -> None:
        """Fold the driver registry's own delta into the store (the
        driver is its own pseudo-worker; no wire involved)."""
        if self._driver_snap is None:
            return
        now = self.clock.now()
        with self._lock:
            self._poll_times.append(now)
        delta = self._driver_snap.delta()
        if delta:
            self.ingest(DRIVER_TIMELINE, delta)

    # ------------------------------------------------------------------
    # Rollups
    # ------------------------------------------------------------------
    def rollup(self, include_stale: bool = False) -> Dict[str, Any]:
        """Cluster-wide merge: per-worker state plus summed counters and
        merged histogram summaries across non-stale workers."""
        self.poll_driver()
        now = self.clock.now()
        with self._lock:
            per_worker: Dict[str, Any] = {}
            cluster_counters: Dict[str, float] = {}
            merged_samples: Dict[str, List[float]] = {}
            stale: List[str] = []
            live: List[str] = []
            for worker_id in sorted(self._timelines):
                timeline = self._timelines[worker_id]
                is_stale = (
                    worker_id != DRIVER_TIMELINE
                    and (now - timeline.last_seen) > self.stale_after_s
                )
                if worker_id != DRIVER_TIMELINE:
                    (stale if is_stale else live).append(worker_id)
                per_worker[worker_id] = {
                    "stale": is_stale,
                    "age_s": now - timeline.last_seen,
                    "deltas": timeline.deltas,
                    "counters": dict(timeline.counters),
                    "gauges": dict(timeline.gauges),
                    "histograms": {
                        name: _summarize([v for _t, v in ring])
                        for name, ring in timeline.samples.items()
                    },
                    "faults": list(timeline.faults),
                }
                if is_stale and not include_stale:
                    continue
                for name, value in timeline.counters.items():
                    cluster_counters[name] = cluster_counters.get(name, 0.0) + value
                for name, ring in timeline.samples.items():
                    merged_samples.setdefault(name, []).extend(
                        v for _t, v in ring
                    )
        with self._lock:
            scale_events = list(self.scale_events)
        return {
            "generated_at": now,
            "stale_after_s": self.stale_after_s,
            "workers": per_worker,
            "live_workers": live,
            "stale_workers": stale,
            "scale_events": scale_events,
            "cluster": {
                "counters": cluster_counters,
                "histograms": {
                    name: _summarize(vals) for name, vals in merged_samples.items()
                },
            },
        }

    # ------------------------------------------------------------------
    # Derived health signals
    # ------------------------------------------------------------------
    def signals(self, window_s: Optional[float] = None) -> Dict[str, Any]:
        """Windowed health signals, excluding stale workers.  The keys
        below are a stable API (consumed by the tuner and, later, the
        elastic controller); see docs/observability.md for the formulas.
        """
        self.poll_driver()
        window = window_s if window_s is not None else self.conf.signal_window_s
        now = self.clock.now()
        with self._lock:
            live = {
                w: tl
                for w, tl in self._timelines.items()
                if w != DRIVER_TIMELINE
                and (now - tl.last_seen) <= self.stale_after_s
            }
            stale = sorted(
                w
                for w in self._timelines
                if w != DRIVER_TIMELINE and w not in live
            )
            queue_delay: List[float] = []
            stage_latency: Dict[str, List[float]] = {}
            backlog = 0.0
            tasks_inc = 0.0
            records_inc = 0.0
            span = 0.0
            stage_prefix = TELEMETRY_STAGE_LATENCY_PREFIX + "."
            for timeline in live.values():
                queue_delay.extend(
                    timeline.windowed_samples(HIST_TELEMETRY_QUEUE_DELAY, now, window)
                )
                for name in timeline.samples:
                    if name.startswith(stage_prefix):
                        stage_latency.setdefault(
                            name[len(stage_prefix) :], []
                        ).extend(timeline.windowed_samples(name, now, window))
                backlog += timeline.gauges.get(GAUGE_TELEMETRY_BACKLOG, 0.0)
                tasks_inc += timeline.windowed_increase(
                    COUNT_TELEMETRY_TASKS, now, window
                )
                records_inc += timeline.windowed_increase(
                    COUNT_TELEMETRY_RECORDS, now, window
                )
                span = max(span, min(window, now - timeline.created_at))
            driver_tl = self._timelines.get(DRIVER_TIMELINE)
            fault_rates: Dict[str, float] = {}
            coordination = {
                "scheduling_s": 0.0,
                "task_transfer_s": 0.0,
                "coordination_s": 0.0,
                "wall_s": 0.0,
                "overhead": 0.0,
            }
            streaming_backlog = 0.0
            batch_wall: List[float] = []
            if driver_tl is not None:
                driver_span = min(window, now - driver_tl.created_at)
                for label, counter in (
                    ("chaos_injected", COUNT_CHAOS_INJECTED),
                    ("recoveries", COUNT_RECOVERIES),
                    ("net_redials", COUNT_NET_REDIALS),
                    ("net_connect_retries", COUNT_NET_CONNECT_RETRIES),
                ):
                    inc = driver_tl.windowed_increase(counter, now, window)
                    fault_rates[f"{label}_per_s"] = (
                        inc / driver_span if driver_span > 0 else 0.0
                    )
                sched = driver_tl.windowed_increase(TIME_SCHEDULING, now, window)
                xfer = driver_tl.windowed_increase(TIME_TASK_TRANSFER, now, window)
                polls = [t for t in self._poll_times if t >= now - window]
                # Floor at the timeline's windowed age: right after the
                # first poll the poll span is ~0 and would make any
                # nonzero coordination time read as 100% overhead.
                wall = max(
                    (polls[-1] - polls[0]) if len(polls) >= 2 else 0.0,
                    driver_span,
                )
                coordination = {
                    "scheduling_s": sched,
                    "task_transfer_s": xfer,
                    "coordination_s": sched + xfer,
                    "wall_s": wall,
                    "overhead": min((sched + xfer) / wall, 1.0) if wall > 0 else 0.0,
                }
                streaming_backlog = driver_tl.gauges.get(
                    GAUGE_TELEMETRY_STREAM_BACKLOG, 0.0
                )
                batch_wall = driver_tl.windowed_samples(
                    HIST_TELEMETRY_BATCH_WALL, now, window
                )
            violations = len(self.violations)
            last_violation = self.violations[-1] if self.violations else None
        effective = span if span > 0 else window
        return {
            "generated_at": now,
            "window_s": window,
            "live_workers": sorted(live),
            "stale_workers": stale,
            "queueing_delay_ms": _ms(_summarize(queue_delay)),
            "stage_latency_ms": {
                stage: _ms(_summarize(vals))
                for stage, vals in sorted(stage_latency.items())
            },
            "tasks_per_s": tasks_inc / effective if effective > 0 else 0.0,
            "records_per_s": records_inc / effective if effective > 0 else 0.0,
            "backlog": backlog,
            "streaming_backlog": streaming_backlog,
            "batch_wall_ms": _ms(_summarize(batch_wall)),
            "fault_rates_per_s": fault_rates,
            "coordination": coordination,
            "slo": {"violations": violations, "last": last_violation},
        }

    # ------------------------------------------------------------------
    # SLO watchdog
    # ------------------------------------------------------------------
    def _maybe_check_slo(self, now: float) -> None:
        conf = self.conf
        if conf.slo_p99_ms is None and conf.slo_queue_delay_p99_ms is None:
            return
        with self._lock:
            # At most one evaluation per shipping interval: signals() is
            # not free and deltas can arrive from every worker at once.
            if now - self._last_slo_check < conf.interval_s:
                return
            self._last_slo_check = now
        sig = self.signals()
        breaches: List[Tuple[str, float, float]] = []
        if conf.slo_queue_delay_p99_ms is not None:
            p99 = sig["queueing_delay_ms"].get("p99")
            if p99 is not None and p99 > conf.slo_queue_delay_p99_ms:
                breaches.append(
                    ("queueing_delay_p99_ms", p99, conf.slo_queue_delay_p99_ms)
                )
        if conf.slo_p99_ms is not None:
            for stage, summary in sig["stage_latency_ms"].items():
                p99 = summary.get("p99")
                if p99 is not None and p99 > conf.slo_p99_ms:
                    breaches.append(
                        (f"stage_latency_p99_ms.{stage}", p99, conf.slo_p99_ms)
                    )
        for signal_name, value, threshold in breaches:
            record = {
                "t": now,
                "signal": signal_name,
                "value": value,
                "threshold": threshold,
            }
            with self._lock:
                if len(self.violations) < _MAX_VIOLATIONS:
                    self.violations.append(record)
            if self._driver_metrics is not None:
                self._driver_metrics.counter(COUNT_SLO_VIOLATIONS).add(1)
            self.tracer.instant(
                EVENT_SLO_VIOLATION,
                actor=DRIVER_TIMELINE,
                signal=signal_name,
                value=round(value, 3),
                threshold=threshold,
            )
            log.warning(
                "SLO violation: %s = %.3f ms exceeds threshold %.3f ms",
                signal_name,
                value,
                threshold,
            )
