"""Trace analysis: turn raw span events into the paper's decompositions.

The headline query is the Figure 4(b) breakdown — where does each
micro-batch's wall time go between scheduling, task launch RPCs, shuffle
fetches, compute, and reporting — computed from *measured spans* rather
than the simulator's cost model, per batch and per worker.

All functions take the plain event dicts produced by
:class:`repro.obs.trace.TraceRecorder` (or loaded back via
:func:`repro.obs.export.load_trace`) and are side-effect free.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.obs.names import (
    PHASE_SPANS,
    SPAN_BATCH,
    SPAN_TASK_COMPUTE,
    SPAN_TASK_FETCH,
    SPAN_TASK_LAUNCH_RPC,
    SPAN_TASK_REPORT,
    SPAN_TASK_SCHEDULE,
)

Event = Dict[str, Any]


def spans(events: Sequence[Event], name: Optional[str] = None) -> List[Event]:
    """Duration spans, optionally filtered by name."""
    return [
        e for e in events if e.get("ph", "X") == "X" and (name is None or e["name"] == name)
    ]


def phase_totals(events: Sequence[Event]) -> Dict[str, float]:
    """Total seconds per control-plane phase across the whole trace."""
    totals = {phase: 0.0 for phase in PHASE_SPANS}
    for e in spans(events):
        if e["name"] in totals:
            totals[e["name"]] += e["dur"]
    return totals


def batch_spans(events: Sequence[Event]) -> List[Event]:
    """Root ``batch`` spans, ordered by job id then start time."""
    batches = spans(events, SPAN_BATCH)
    return sorted(batches, key=lambda e: (e["attrs"].get("job_id", -1), e["ts"]))


def _group_share(events: Sequence[Event]) -> Dict[Any, Dict[str, float]]:
    """Per-job share of group-level scheduling/launch spans.

    Under group scheduling, placement and the launch RPCs happen once for
    the whole group; those spans carry a ``batches`` attribute listing the
    job ids they cover, and their cost is attributed evenly.
    """
    shares: Dict[Any, Dict[str, float]] = {}
    for e in spans(events):
        if e["name"] not in (SPAN_TASK_SCHEDULE, SPAN_TASK_LAUNCH_RPC):
            continue
        jobs = e["attrs"].get("batches")
        if not jobs:
            continue
        per_job = e["dur"] / len(jobs)
        for job_id in jobs:
            row = shares.setdefault(job_id, {SPAN_TASK_SCHEDULE: 0.0, SPAN_TASK_LAUNCH_RPC: 0.0})
            row[e["name"]] += per_job
    return shares


def per_batch_breakdown(events: Sequence[Event]) -> List[Dict[str, Any]]:
    """One row per micro-batch: the Fig. 4(b) decomposition from spans.

    Scheduling and launch-RPC time is taken from per-batch spans inside
    the batch's trace (barrier modes) plus an even share of any
    group-level spans covering the batch (Drizzle modes).  Fetch, compute,
    and report time comes from the task spans stitched into the batch's
    tree via descriptor/report context propagation.
    """
    by_trace: Dict[str, List[Event]] = {}
    for e in events:
        by_trace.setdefault(e["trace_id"], []).append(e)
    shares = _group_share(events)

    rows: List[Dict[str, Any]] = []
    for root in batch_spans(events):
        job_id = root["attrs"].get("job_id")
        in_tree = by_trace.get(root["trace_id"], [])
        row: Dict[str, Any] = {
            "job_id": job_id,
            "job_key": root["attrs"].get("job_key"),
            "mode": root["attrs"].get("mode"),
            "trace_id": root["trace_id"],
            "wall_s": root["dur"],
            "tasks": 0,
        }
        for phase in PHASE_SPANS:
            row[phase] = 0.0
        for e in in_tree:
            if e.get("ph") != "X":
                continue
            if e["name"] in PHASE_SPANS:
                row[e["name"]] += e["dur"]
            if e["name"] == SPAN_TASK_COMPUTE:
                row["tasks"] += 1
        share = shares.get(job_id)
        if share is not None:
            row[SPAN_TASK_SCHEDULE] += share[SPAN_TASK_SCHEDULE]
            row[SPAN_TASK_LAUNCH_RPC] += share[SPAN_TASK_LAUNCH_RPC]
        rows.append(row)
    return rows


def per_worker_breakdown(events: Sequence[Event]) -> List[Dict[str, Any]]:
    """One row per worker: task counts and fetch/compute/report seconds."""
    rows: Dict[str, Dict[str, Any]] = {}
    for e in spans(events):
        if e["name"] not in (SPAN_TASK_FETCH, SPAN_TASK_COMPUTE, SPAN_TASK_REPORT):
            continue
        row = rows.setdefault(
            e["actor"],
            {
                "worker": e["actor"],
                "tasks": 0,
                SPAN_TASK_FETCH: 0.0,
                SPAN_TASK_COMPUTE: 0.0,
                SPAN_TASK_REPORT: 0.0,
            },
        )
        row[e["name"]] += e["dur"]
        if e["name"] == SPAN_TASK_COMPUTE:
            row["tasks"] += 1
    return [rows[w] for w in sorted(rows)]


def build_trees(events: Sequence[Event]) -> Dict[str, List[Dict[str, Any]]]:
    """trace_id -> list of root nodes; node = {"event", "children"}."""
    nodes: Dict[int, Dict[str, Any]] = {}
    for e in events:
        nodes[e["span_id"]] = {"event": e, "children": []}
    roots: Dict[str, List[Dict[str, Any]]] = {}
    for node in nodes.values():
        parent_id = node["event"].get("parent_id")
        parent = nodes.get(parent_id) if parent_id is not None else None
        if parent is not None:
            parent["children"].append(node)
        else:
            roots.setdefault(node["event"]["trace_id"], []).append(node)
    for children in roots.values():
        children.sort(key=lambda n: n["event"]["ts"])
    for node in nodes.values():
        node["children"].sort(key=lambda n: n["event"]["ts"])
    return roots


def render_tree(events: Sequence[Event], trace_id: Optional[str] = None) -> str:
    """ASCII span trees, one per trace (optionally a single trace)."""
    roots = build_trees(events)
    lines: List[str] = []

    def walk(node: Dict[str, Any], depth: int) -> None:
        e = node["event"]
        marker = "•" if e.get("ph") == "i" else "▸"
        attrs = e.get("attrs", {})
        label = " ".join(f"{k}={attrs[k]}" for k in sorted(attrs)) if attrs else ""
        lines.append(
            f"{'  ' * depth}{marker} {e['name']} [{e['actor']}] "
            f"{e['dur'] * 1e3:.3f}ms{(' ' + label) if label else ''}"
        )
        for child in node["children"]:
            walk(child, depth + 1)

    for tid in sorted(roots):
        if trace_id is not None and tid != trace_id:
            continue
        lines.append(f"trace {tid}")
        for root in roots[tid]:
            walk(root, 1)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Plain-text report (kept dependency-free: obs only imports repro.common)
# ----------------------------------------------------------------------
def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def summarize(events: Sequence[Event]) -> str:
    """The full ``repro.obs summarize`` report as a string."""
    sections: List[str] = []

    totals = phase_totals(events)
    sections.append(
        _table(
            ["phase", "total_ms"],
            [[phase, totals[phase] * 1e3] for phase in PHASE_SPANS],
            title="Per-phase totals (all batches)",
        )
    )

    batch_rows = per_batch_breakdown(events)
    if batch_rows:
        sections.append(
            _table(
                ["job", "key", "mode", "tasks", "sched_ms", "launch_ms", "fetch_ms",
                 "compute_ms", "report_ms", "wall_ms"],
                [
                    [
                        r["job_id"],
                        r["job_key"],
                        r["mode"],
                        r["tasks"],
                        r[SPAN_TASK_SCHEDULE] * 1e3,
                        r[SPAN_TASK_LAUNCH_RPC] * 1e3,
                        r[SPAN_TASK_FETCH] * 1e3,
                        r[SPAN_TASK_COMPUTE] * 1e3,
                        r[SPAN_TASK_REPORT] * 1e3,
                        r["wall_s"] * 1e3,
                    ]
                    for r in batch_rows
                ],
                title="Per-batch breakdown (Fig. 4b decomposition from spans)",
            )
        )

    worker_rows = per_worker_breakdown(events)
    if worker_rows:
        sections.append(
            _table(
                ["worker", "tasks", "fetch_ms", "compute_ms", "report_ms"],
                [
                    [
                        r["worker"],
                        r["tasks"],
                        r[SPAN_TASK_FETCH] * 1e3,
                        r[SPAN_TASK_COMPUTE] * 1e3,
                        r[SPAN_TASK_REPORT] * 1e3,
                    ]
                    for r in worker_rows
                ],
                title="Per-worker breakdown",
            )
        )

    n_spans = len(spans(events))
    n_instants = sum(1 for e in events if e.get("ph") == "i")
    sections.append(f"{n_spans} spans, {n_instants} instant events, "
                    f"{len(batch_rows)} batches")
    return "\n\n".join(sections)
