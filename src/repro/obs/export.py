"""Trace exporters and loaders.

Two on-disk formats, both lossless with respect to the recorder's event
schema:

* **Perfetto / Chrome ``trace_event`` JSON** — open the file directly in
  https://ui.perfetto.dev (or ``chrome://tracing``).  Actors (driver,
  worker-N, jobmanager) map to processes; span ids, parent ids and
  annotations ride in ``args`` so nothing is lost in the round trip.
* **JSONL** — one event object per line, for ``grep``/``jq`` pipelines
  and incremental appends.

``load_trace`` auto-detects the format, so the CLI accepts either.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

_US = 1e6  # trace_event timestamps are microseconds


def _actor_pids(events: Sequence[Dict[str, Any]]) -> Dict[str, int]:
    """Stable actor -> pid mapping: driver first, then sorted actors."""
    actors = sorted({e.get("actor", "driver") for e in events})
    if "driver" in actors:
        actors.remove("driver")
        actors.insert(0, "driver")
    return {actor: pid for pid, actor in enumerate(actors, start=1)}


def to_trace_events(events: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert recorder events to a Chrome/Perfetto ``trace_event`` doc."""
    pids = _actor_pids(events)
    out: List[Dict[str, Any]] = []
    for actor, pid in pids.items():
        out.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": actor},
            }
        )
    for e in events:
        pid = pids[e.get("actor", "driver")]
        entry: Dict[str, Any] = {
            "name": e["name"],
            "cat": e.get("cat", e["name"].split(".", 1)[0]),
            "ph": e.get("ph", "X"),
            "pid": pid,
            "tid": pid,
            "ts": e["ts"] * _US,
            "args": {
                "trace_id": e["trace_id"],
                "span_id": e["span_id"],
                "parent_id": e.get("parent_id"),
                **e.get("attrs", {}),
            },
        }
        if entry["ph"] == "X":
            entry["dur"] = e.get("dur", 0.0) * _US
        else:
            entry["s"] = "t"  # thread-scoped instant
        out.append(entry)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_perfetto(events: Sequence[Dict[str, Any]], path: str) -> str:
    with open(path, "w") as f:
        json.dump(to_trace_events(events), f, default=str)
    return path


def write_jsonl(events: Sequence[Dict[str, Any]], path: str) -> str:
    with open(path, "w") as f:
        for e in events:
            f.write(json.dumps(e, default=str) + "\n")
    return path


def _from_trace_events(doc: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Reconstruct recorder events from a ``trace_event`` document."""
    raw = doc.get("traceEvents", [])
    actor_by_pid: Dict[int, str] = {}
    for entry in raw:
        if entry.get("ph") == "M" and entry.get("name") == "process_name":
            actor_by_pid[entry["pid"]] = entry["args"]["name"]
    events: List[Dict[str, Any]] = []
    for entry in raw:
        if entry.get("ph") not in ("X", "i"):
            continue
        args = dict(entry.get("args", {}))
        events.append(
            {
                "name": entry["name"],
                "cat": entry.get("cat", entry["name"].split(".", 1)[0]),
                "ph": entry["ph"],
                "trace_id": args.pop("trace_id", "?"),
                "span_id": args.pop("span_id", 0),
                "parent_id": args.pop("parent_id", None),
                "actor": actor_by_pid.get(entry.get("pid"), "driver"),
                "ts": entry["ts"] / _US,
                "dur": entry.get("dur", 0.0) / _US,
                "attrs": args,
            }
        )
    return events


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Load a trace from either supported format (auto-detected)."""
    with open(path) as f:
        text = f.read()
    stripped = text.lstrip()
    if not stripped:
        return []
    if stripped.startswith("{"):
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            # Multiple objects -> JSONL.
            return [json.loads(line) for line in text.splitlines() if line.strip()]
        if "traceEvents" in doc:
            return _from_trace_events(doc)
        # A single JSONL line that happens to be the whole file.
        return [doc]
    if stripped.startswith("["):
        # Bare trace_event array form.
        return _from_trace_events({"traceEvents": json.loads(text)})
    return [json.loads(line) for line in text.splitlines() if line.strip()]
