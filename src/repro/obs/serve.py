"""`python -m repro.obs serve` — telemetry rollups as JSON over HTTP.

A small localhost scrape endpoint (stdlib ``http.server``, no deps) over
a :class:`~repro.obs.live.ClusterTelemetry` store:

* ``/`` or ``/snapshot`` — rollup + signals in one document,
* ``/rollup`` — per-worker and cluster-merged rollups,
* ``/signals`` — derived health signals only,
* ``/healthz`` — ``{"ok": true, "live_workers": N}``.

Binds 127.0.0.1 only: this is a diagnostics port, not a service.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Tuple

from repro.obs.live import ClusterTelemetry


def snapshot_doc(telemetry: ClusterTelemetry) -> Dict[str, Any]:
    """The ``/`` document: everything a scraper wants in one fetch."""
    return {
        "version": 1,
        "rollup": telemetry.rollup(include_stale=True),
        "signals": telemetry.signals(),
    }


class _Handler(BaseHTTPRequestHandler):
    # Set by TelemetryHTTPServer.
    telemetry: ClusterTelemetry

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        telemetry = self.server.telemetry  # type: ignore[attr-defined]
        if path in ("/", "/snapshot"):
            doc: Any = snapshot_doc(telemetry)
        elif path == "/rollup":
            doc = telemetry.rollup(include_stale=True)
        elif path == "/signals":
            doc = telemetry.signals()
        elif path == "/healthz":
            doc = {"ok": True, "live_workers": len(telemetry.live_workers())}
        else:
            self.send_error(404, "unknown path (try /, /rollup, /signals, /healthz)")
            return
        body = json.dumps(doc).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # a diagnostics endpoint should not spam the driver's stderr


class TelemetryHTTPServer:
    """Owns the listening socket; serve in a daemon thread via start()."""

    def __init__(self, telemetry: ClusterTelemetry, port: int = 0):
        self._server = ThreadingHTTPServer(("127.0.0.1", port), _Handler)
        self._server.daemon_threads = True  # no leaked per-request threads
        self._server.telemetry = telemetry  # type: ignore[attr-defined]
        self._thread = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "TelemetryHTTPServer":
        import threading

        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="obs-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "TelemetryHTTPServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def write_snapshot(telemetry: ClusterTelemetry, path: str) -> None:
    """Dump the ``/`` document to a file (CI artifact mode)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot_doc(telemetry), fh, indent=2, sort_keys=True)
        fh.write("\n")
