"""Canonical span, instant-event, and metric names.

Every instrumented name in the engine comes from this module so that a
typo is an import error, not a silently empty trace query.  Tests and the
``python -m repro.obs`` CLI match against these same constants, and
``SPAN_NAMES`` / ``EVENT_NAMES`` / ``METRIC_NAMES`` give linters and
analysis code one authoritative registry.
"""

from __future__ import annotations

from repro.common.metrics import (
    CHAOS_KIND_PREFIX,
    COUNT_BATCHES_EXECUTED,
    COUNT_BLOCKS_DECODED,
    COUNT_BLOCKS_ENCODE_MS,
    COUNT_BLOCKS_ENCODED,
    COUNT_CHAOS_INJECTED,
    COUNT_CHAOS_SUPPRESSED,
    COUNT_CHECKPOINTS,
    COUNT_ELASTIC_DECISIONS,
    COUNT_ELASTIC_RESIZES,
    COUNT_ELASTIC_WORKERS_ADDED,
    COUNT_ELASTIC_WORKERS_REMOVED,
    COUNT_GROUPS_SCHEDULED,
    COUNT_HA_FENCED,
    COUNT_HA_PARKED_REPORTS,
    COUNT_HA_RECOVERIES,
    COUNT_HA_WAL_APPENDS,
    COUNT_HA_WAL_BYTES,
    COUNT_HA_WAL_FSYNCS,
    COUNT_HA_WAL_REPLAYS,
    COUNT_HA_WAL_SNAPSHOTS,
    COUNT_LAUNCH_RPCS,
    COUNT_MIGRATION_ABORTS,
    COUNT_MIGRATION_KEYS_MOVED,
    COUNT_MIGRATION_RETRIES,
    COUNT_MIGRATION_SHARDS_MOVED,
    COUNT_NET_BYTES_RECEIVED,
    COUNT_NET_BYTES_SAVED_COMPRESSION,
    COUNT_NET_BYTES_SENT,
    COUNT_NET_CONNECT_RETRIES,
    COUNT_NET_CONNECTIONS,
    COUNT_NET_FETCH_BATCHES,
    COUNT_NET_LAUNCH_BYTES_SENT,
    COUNT_NET_RECONNECTS,
    COUNT_NET_REDIALS,
    COUNT_NET_TEMPLATE_BYTES_SAVED,
    COUNT_RECOVERIES,
    COUNT_RPC_MESSAGES,
    COUNT_SHM_FALLBACKS,
    COUNT_SHM_HITS,
    COUNT_SLO_VIOLATIONS,
    COUNT_SPECULATIVE,
    COUNT_STAGE_CACHE_HIT,
    COUNT_STAGE_CACHE_MISS,
    COUNT_TASKS_LAUNCHED,
    COUNT_TELEMETRY_DELTAS,
    COUNT_TEMPLATE_HIT,
    COUNT_TEMPLATE_INVALIDATED,
    COUNT_TEMPLATE_MISS,
    COUNT_TELEMETRY_RECORDS,
    COUNT_TELEMETRY_TASKS,
    GAUGE_HA_WAL_LAG,
    GAUGE_NET_OPEN_CONNECTIONS,
    GAUGE_TELEMETRY_BACKLOG,
    GAUGE_TELEMETRY_STREAM_BACKLOG,
    HIST_MIGRATION_WALL,
    HIST_NET_BUCKETS_PER_FETCH,
    HIST_NET_CALL_LATENCY,
    HIST_TELEMETRY_BATCH_WALL,
    HIST_TELEMETRY_QUEUE_DELAY,
    TELEMETRY_STAGE_LATENCY_PREFIX,
    TIME_COMPUTE,
    TIME_COORDINATION,
    TIME_SCHEDULING,
    TIME_TASK_TRANSFER,
)

# ----------------------------------------------------------------------
# Span names (duration events).  The dot prefix is the Perfetto category:
# "task.compute" renders under category "task".
# ----------------------------------------------------------------------
SPAN_BATCH = "batch"  # one micro-batch (= one job), driver-side root
SPAN_GROUP = "group"  # one group-scheduling round (§3.1)
SPAN_STAGE = "stage"  # one stage of one micro-batch
SPAN_TASK_SCHEDULE = "task.schedule"  # placement + descriptor building
SPAN_TASK_LAUNCH_RPC = "task.launch_rpc"  # driver -> worker launch messages
SPAN_TASK_FETCH = "task.fetch"  # reduce-side shuffle pull
SPAN_TASK_COMPUTE = "task.compute"  # one task attempt on a worker
SPAN_TASK_EXEC = "task.exec"  # the compute core on an executor backend
# (recorded when the stage crossed a process boundary)
SPAN_TASK_REPORT = "task.report"  # worker -> driver completion report
SPAN_CHECKPOINT = "checkpoint"  # synchronous group-boundary checkpoint
SPAN_RECOVERY = "recovery"  # worker-loss / replay recovery window
SPAN_MIGRATION = "migration"  # key-range shard moves at one resize boundary

SPAN_NAMES = frozenset(
    {
        SPAN_BATCH,
        SPAN_GROUP,
        SPAN_STAGE,
        SPAN_TASK_SCHEDULE,
        SPAN_TASK_LAUNCH_RPC,
        SPAN_TASK_FETCH,
        SPAN_TASK_COMPUTE,
        SPAN_TASK_EXEC,
        SPAN_TASK_REPORT,
        SPAN_CHECKPOINT,
        SPAN_RECOVERY,
        SPAN_MIGRATION,
    }
)

# The control-plane phases of the Fig. 4(b) decomposition, in display
# order; ``python -m repro.obs summarize`` reports these per batch.
PHASE_SPANS = (
    SPAN_TASK_SCHEDULE,
    SPAN_TASK_LAUNCH_RPC,
    SPAN_TASK_FETCH,
    SPAN_TASK_COMPUTE,
    SPAN_TASK_REPORT,
)

# ----------------------------------------------------------------------
# Instant events (zero-duration annotations).
# ----------------------------------------------------------------------
EVENT_TUNER_DECISION = "tuner.decision"  # §3.4 AIMD step, on the group span
EVENT_TASK_RESUBMIT = "task.resubmit"  # recovery/speculation re-placement
EVENT_CHAOS_FAULT = "chaos.fault"  # one injected fault (repro.chaos)
EVENT_SLO_VIOLATION = "slo.violation"  # telemetry watchdog threshold breach
EVENT_SCALE_DECISION = "elastic.decision"  # §3.3 controller verdict per boundary
EVENT_MIGRATION_ABORT = "migration.abort"  # one move abandoned mid-flight

EVENT_NAMES = frozenset(
    {
        EVENT_TUNER_DECISION,
        EVENT_TASK_RESUBMIT,
        EVENT_CHAOS_FAULT,
        EVENT_SLO_VIOLATION,
        EVENT_SCALE_DECISION,
        EVENT_MIGRATION_ABORT,
    }
)

# ----------------------------------------------------------------------
# Metric names (re-exported so one import site covers spans AND metrics).
# ----------------------------------------------------------------------
METRIC_NAMES = frozenset(
    {
        TIME_SCHEDULING,
        TIME_TASK_TRANSFER,
        TIME_COMPUTE,
        TIME_COORDINATION,
        COUNT_TASKS_LAUNCHED,
        COUNT_RPC_MESSAGES,
        COUNT_LAUNCH_RPCS,
        COUNT_GROUPS_SCHEDULED,
        COUNT_BATCHES_EXECUTED,
        COUNT_CHECKPOINTS,
        COUNT_RECOVERIES,
        COUNT_SPECULATIVE,
        COUNT_NET_BYTES_SENT,
        COUNT_NET_BYTES_RECEIVED,
        COUNT_NET_CONNECTIONS,
        COUNT_NET_CONNECT_RETRIES,
        COUNT_NET_FETCH_BATCHES,
        COUNT_NET_REDIALS,
        COUNT_NET_RECONNECTS,
        HIST_NET_BUCKETS_PER_FETCH,
        COUNT_NET_BYTES_SAVED_COMPRESSION,
        COUNT_STAGE_CACHE_HIT,
        COUNT_STAGE_CACHE_MISS,
        COUNT_TEMPLATE_HIT,
        COUNT_TEMPLATE_MISS,
        COUNT_TEMPLATE_INVALIDATED,
        COUNT_NET_TEMPLATE_BYTES_SAVED,
        COUNT_NET_LAUNCH_BYTES_SENT,
        COUNT_SHM_HITS,
        COUNT_SHM_FALLBACKS,
        COUNT_BLOCKS_ENCODED,
        COUNT_BLOCKS_DECODED,
        COUNT_BLOCKS_ENCODE_MS,
        GAUGE_NET_OPEN_CONNECTIONS,
        COUNT_CHAOS_INJECTED,
        COUNT_CHAOS_SUPPRESSED,
        HIST_TELEMETRY_QUEUE_DELAY,
        COUNT_TELEMETRY_TASKS,
        COUNT_TELEMETRY_RECORDS,
        GAUGE_TELEMETRY_BACKLOG,
        COUNT_TELEMETRY_DELTAS,
        GAUGE_TELEMETRY_STREAM_BACKLOG,
        HIST_TELEMETRY_BATCH_WALL,
        COUNT_SLO_VIOLATIONS,
        COUNT_ELASTIC_DECISIONS,
        COUNT_ELASTIC_RESIZES,
        COUNT_ELASTIC_WORKERS_ADDED,
        COUNT_ELASTIC_WORKERS_REMOVED,
        COUNT_MIGRATION_SHARDS_MOVED,
        COUNT_MIGRATION_KEYS_MOVED,
        COUNT_MIGRATION_ABORTS,
        COUNT_MIGRATION_RETRIES,
        HIST_MIGRATION_WALL,
        COUNT_HA_WAL_APPENDS,
        COUNT_HA_WAL_FSYNCS,
        COUNT_HA_WAL_REPLAYS,
        COUNT_HA_WAL_BYTES,
        COUNT_HA_WAL_SNAPSHOTS,
        COUNT_HA_FENCED,
        COUNT_HA_PARKED_REPORTS,
        COUNT_HA_RECOVERIES,
        GAUGE_HA_WAL_LAG,
    }
)

# Per-method wire round-trip histograms (tcp transport) are named
# "{HIST_NET_CALL_LATENCY}.{method}" — a prefix family, not a member of
# METRIC_NAMES, because the method suffix is open-ended.
NET_CALL_LATENCY_PREFIX = HIST_NET_CALL_LATENCY
# Per-kind injected-fault counters ("chaos.worker_kill", ...) are the
# same kind of open-ended prefix family.
CHAOS_METRIC_PREFIX = CHAOS_KIND_PREFIX
# Per-stage latency histograms ("telemetry.stage_latency.0", ...) shipped
# by the live telemetry plane.
STAGE_LATENCY_PREFIX = TELEMETRY_STAGE_LATENCY_PREFIX

# Open-ended metric families: any emitted name starting with one of
# these prefixes (plus a ".") is considered registered.  The bench
# harness times each experiment as "bench.<name>".
METRIC_PREFIXES = (
    NET_CALL_LATENCY_PREFIX,
    CHAOS_METRIC_PREFIX,
    STAGE_LATENCY_PREFIX,
    "bench",
)


def is_registered_metric(name: str) -> bool:
    """True when ``name`` is in the catalog, either as an exact member of
    ``METRIC_NAMES`` or under one of the ``METRIC_PREFIXES`` families."""
    if name in METRIC_NAMES:
        return True
    return any(name.startswith(prefix + ".") for prefix in METRIC_PREFIXES)

# Span name -> metric counter that times the same code region; the CLI
# uses this to cross-check span totals against the counter values.
SPAN_TO_METRIC = {
    SPAN_TASK_SCHEDULE: TIME_SCHEDULING,
    SPAN_TASK_LAUNCH_RPC: TIME_TASK_TRANSFER,
    SPAN_TASK_COMPUTE: TIME_COMPUTE,
}

__all__ = [
    "SPAN_BATCH",
    "SPAN_GROUP",
    "SPAN_STAGE",
    "SPAN_TASK_SCHEDULE",
    "SPAN_TASK_LAUNCH_RPC",
    "SPAN_TASK_FETCH",
    "SPAN_TASK_COMPUTE",
    "SPAN_TASK_REPORT",
    "SPAN_CHECKPOINT",
    "SPAN_RECOVERY",
    "SPAN_MIGRATION",
    "SPAN_NAMES",
    "PHASE_SPANS",
    "EVENT_TUNER_DECISION",
    "EVENT_TASK_RESUBMIT",
    "EVENT_CHAOS_FAULT",
    "EVENT_SLO_VIOLATION",
    "EVENT_SCALE_DECISION",
    "EVENT_MIGRATION_ABORT",
    "EVENT_NAMES",
    "METRIC_NAMES",
    "NET_CALL_LATENCY_PREFIX",
    "CHAOS_METRIC_PREFIX",
    "STAGE_LATENCY_PREFIX",
    "METRIC_PREFIXES",
    "is_registered_metric",
    "SPAN_TO_METRIC",
]
