"""repro.obs — end-to-end tracing and telemetry.

Per-task structured spans with trace-context propagation through the RPC
layer (driver -> envelope -> worker -> task report), so one micro-batch's
control-plane timeline (§3.1-§3.4, Fig. 4b) is reconstructable as a span
tree.  Exports Chrome/Perfetto ``trace_event`` JSON and JSONL; analyze
traces with ``python -m repro.obs summarize <trace>``.

Tracing is off by default and zero-cost when disabled: components hold
the shared :data:`NULL_RECORDER` unless ``EngineConf.tracing.enabled``
is set, in which case :class:`repro.engine.cluster.LocalCluster` wires a
real :class:`TraceRecorder` through the driver, transport, and workers.
"""

from repro.obs.analyze import (
    per_batch_breakdown,
    per_worker_breakdown,
    phase_totals,
    render_tree,
    summarize,
)
from repro.obs.export import load_trace, to_trace_events, write_jsonl, write_perfetto
from repro.obs.live import DRIVER_TIMELINE, ClusterTelemetry, DeltaSnapshotter
from repro.obs.names import (
    EVENT_NAMES,
    METRIC_NAMES,
    METRIC_PREFIXES,
    PHASE_SPANS,
    SPAN_NAMES,
    SPAN_TO_METRIC,
    is_registered_metric,
)
from repro.obs.trace import (
    NULL_RECORDER,
    NullRecorder,
    Span,
    SpanContext,
    TraceRecorder,
)

__all__ = [
    "TraceRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "Span",
    "SpanContext",
    "SPAN_NAMES",
    "EVENT_NAMES",
    "METRIC_NAMES",
    "PHASE_SPANS",
    "SPAN_TO_METRIC",
    "to_trace_events",
    "write_perfetto",
    "write_jsonl",
    "load_trace",
    "phase_totals",
    "per_batch_breakdown",
    "per_worker_breakdown",
    "render_tree",
    "summarize",
    "ClusterTelemetry",
    "DeltaSnapshotter",
    "DRIVER_TIMELINE",
    "METRIC_PREFIXES",
    "is_registered_metric",
]
