"""Trace-analysis CLI.

    python -m repro.obs summarize trace.json        # per-phase / per-batch / per-worker
    python -m repro.obs tree trace.jsonl            # ASCII span trees
    python -m repro.obs tree trace.json --trace t7  # one trace only
    python -m repro.obs convert trace.jsonl -o trace.json   # JSONL -> Perfetto

Accepts either export format (Perfetto ``trace_event`` JSON or JSONL);
the format is auto-detected.  ``summarize`` prints the Fig. 4(b)
scheduling / transfer / compute decomposition computed from real spans.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.obs.analyze import render_tree, summarize
from repro.obs.export import load_trace, write_jsonl, write_perfetto


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Analyze and convert engine traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="per-phase latency breakdowns")
    p_sum.add_argument("trace", help="trace file (Perfetto JSON or JSONL)")

    p_tree = sub.add_parser("tree", help="print span trees")
    p_tree.add_argument("trace", help="trace file (Perfetto JSON or JSONL)")
    p_tree.add_argument("--trace-id", default=None, help="only this trace id")

    p_conv = sub.add_parser("convert", help="convert between trace formats")
    p_conv.add_argument("trace", help="input trace file")
    p_conv.add_argument("-o", "--output", required=True, help="output path")
    p_conv.add_argument(
        "--format",
        choices=("perfetto", "jsonl"),
        default="perfetto",
        help="output format (default: perfetto)",
    )

    args = parser.parse_args(argv)
    try:
        events = load_trace(args.trace)
    except OSError as exc:
        print(f"cannot read trace: {exc}")
        return 1
    except ValueError as exc:  # includes json.JSONDecodeError
        print(f"not a trace file (expected Perfetto JSON or JSONL): {exc}")
        return 1
    if not events:
        print("trace is empty")
        return 1

    if args.command == "summarize":
        print(summarize(events))
    elif args.command == "tree":
        print(render_tree(events, trace_id=args.trace_id))
    elif args.command == "convert":
        if args.format == "perfetto":
            write_perfetto(events, args.output)
        else:
            write_jsonl(events, args.output)
        print(f"wrote {len(events)} events to {args.output}")
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Piping into e.g. ``head`` closes stdout early; exit quietly
        # (and keep the interpreter's shutdown flush from re-raising).
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        raise SystemExit(1)
