"""Trace-analysis and live-telemetry CLI.

    python -m repro.obs summarize trace.json        # per-phase / per-batch / per-worker
    python -m repro.obs tree trace.jsonl            # ASCII span trees
    python -m repro.obs tree trace.json --trace t7  # one trace only
    python -m repro.obs convert trace.jsonl -o trace.json   # JSONL -> Perfetto
    python -m repro.obs top                          # live cluster dashboard
    python -m repro.obs top --once --transport tcp   # one frame, then exit
    python -m repro.obs serve --snapshot out.json    # rollups as JSON (HTTP/file)

Trace commands accept either export format (Perfetto ``trace_event`` JSON
or JSONL); the format is auto-detected.  ``summarize`` prints the
Fig. 4(b) scheduling / transfer / compute decomposition computed from
real spans.  ``top`` and ``serve`` drive a demo streaming wordcount on a
:class:`LocalCluster` and surface its live telemetry (see
``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.obs.analyze import render_tree, summarize
from repro.obs.export import load_trace, write_jsonl, write_perfetto


def _run_live(args: argparse.Namespace) -> int:
    """top/serve: spin up the demo cluster, surface its telemetry."""
    import time

    from repro.obs.serve import TelemetryHTTPServer, write_snapshot
    from repro.obs.top import demo_cluster, run_top

    with demo_cluster(
        transport=args.transport,
        executor=args.executor,
        workers=args.workers,
        batches=args.batches,
        heartbeats=not args.no_heartbeats,
        slo_p99_ms=getattr(args, "slo_p99_ms", None),
    ) as cluster:
        telemetry = cluster.telemetry
        if args.command == "top":
            # Let the first task-bearing deltas land so --once has
            # something to show (live workers alone can predate work).
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                rollup = telemetry.rollup()
                if rollup["cluster"]["counters"].get("telemetry.tasks"):
                    break
                time.sleep(0.05)
            try:
                return run_top(telemetry, once=args.once, interval_s=args.interval)
            except KeyboardInterrupt:
                return 0
        # serve
        if args.snapshot is not None:
            # File mode: wait for the demo workload to finish so the
            # snapshot is a complete record (CI artifact), then dump.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                sig = telemetry.signals()
                if (
                    sig["streaming_backlog"] == 0
                    and sig["queueing_delay_ms"].get("count")
                ):
                    break
                time.sleep(0.05)
            write_snapshot(telemetry, args.snapshot)
            print(f"wrote telemetry snapshot to {args.snapshot}")
            return 0
        with TelemetryHTTPServer(telemetry, port=args.port) as server:
            print(f"serving telemetry on {server.url} (Ctrl-C to stop)")
            try:
                if args.duration is not None:
                    time.sleep(args.duration)
                else:
                    while True:
                        time.sleep(3600)
            except KeyboardInterrupt:
                pass
        return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Analyze and convert engine traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="per-phase latency breakdowns")
    p_sum.add_argument("trace", help="trace file (Perfetto JSON or JSONL)")

    p_tree = sub.add_parser("tree", help="print span trees")
    p_tree.add_argument("trace", help="trace file (Perfetto JSON or JSONL)")
    p_tree.add_argument("--trace-id", default=None, help="only this trace id")

    p_conv = sub.add_parser("convert", help="convert between trace formats")
    p_conv.add_argument("trace", help="input trace file")
    p_conv.add_argument("-o", "--output", required=True, help="output path")
    p_conv.add_argument(
        "--format",
        choices=("perfetto", "jsonl"),
        default="perfetto",
        help="output format (default: perfetto)",
    )

    def add_cluster_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--transport", choices=("inproc", "tcp"), default="inproc")
        p.add_argument("--executor", choices=("inline", "thread", "process"), default="thread")
        p.add_argument("--workers", type=int, default=2)
        p.add_argument("--batches", type=int, default=8, help="demo micro-batches")
        p.add_argument(
            "--no-heartbeats",
            action="store_true",
            help="ship telemetry on the dedicated __metrics__ path instead",
        )

    p_top = sub.add_parser("top", help="live cluster telemetry dashboard")
    add_cluster_args(p_top)
    p_top.add_argument("--once", action="store_true", help="one frame, then exit")
    p_top.add_argument("--interval", type=float, default=0.5, help="refresh seconds")
    p_top.add_argument("--slo-p99-ms", type=float, default=None, help="stage-latency SLO")

    p_serve = sub.add_parser("serve", help="serve telemetry rollups as JSON")
    add_cluster_args(p_serve)
    p_serve.add_argument("--port", type=int, default=0, help="port (0 = ephemeral)")
    p_serve.add_argument(
        "--snapshot", default=None, help="write one JSON snapshot to PATH and exit"
    )
    p_serve.add_argument(
        "--duration", type=float, default=None, help="serve for N seconds, then exit"
    )

    args = parser.parse_args(argv)

    if args.command in ("top", "serve"):
        return _run_live(args)
    try:
        events = load_trace(args.trace)
    except OSError as exc:
        print(f"cannot read trace: {exc}")
        return 1
    except ValueError as exc:  # includes json.JSONDecodeError
        print(f"not a trace file (expected Perfetto JSON or JSONL): {exc}")
        return 1
    if not events:
        print("trace is empty")
        return 1

    if args.command == "summarize":
        print(summarize(events))
    elif args.command == "tree":
        print(render_tree(events, trace_id=args.trace_id))
    elif args.command == "convert":
        if args.format == "perfetto":
            write_perfetto(events, args.output)
        else:
            write_jsonl(events, args.output)
        print(f"wrote {len(events)} events to {args.output}")
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Piping into e.g. ``head`` closes stdout early; exit quietly
        # (and keep the interpreter's shutdown flush from re-raising).
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        raise SystemExit(1)
