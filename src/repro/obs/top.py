"""`python -m repro.obs top` — a live cluster dashboard.

Renders :class:`~repro.obs.live.ClusterTelemetry` rollups and health
signals as a refreshing terminal view: cluster-wide signal summary,
per-worker counter rollups with staleness and fault annotations, and
per-stage latency percentiles.  ``--once`` renders a single frame and
exits (what tests and CI use); the default loops until interrupted.

The CLI drives a self-contained demo workload (streaming wordcount on a
:class:`LocalCluster`, see :func:`demo_cluster`) because a dashboard with
nothing to watch teaches nothing; embedders render their own cluster with
:func:`render_dashboard` directly.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.common.config import (
    EngineConf,
    ExecutorConf,
    MonitorConf,
    TelemetryConf,
    TransportConf,
)
from repro.obs.live import DRIVER_TIMELINE, ClusterTelemetry

# Counters surfaced in the per-worker table, in display order.
_WORKER_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("telemetry.tasks", "tasks"),
    ("telemetry.records", "records"),
)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:,.1f}" if abs(value) >= 100 else f"{value:.2f}"
    return str(value)


def _fmt_summary_ms(summary: Dict[str, float]) -> str:
    if not summary or not summary.get("count"):
        return "-"
    return (
        f"p50={summary['p50']:.2f} p99={summary['p99']:.2f} "
        f"max={summary['max']:.2f} (n={int(summary['count'])})"
    )


def _table(headers: List[str], rows: List[List[str]]) -> List[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: List[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rows)
    return out


def render_dashboard(telemetry: ClusterTelemetry) -> str:
    """One frame of the dashboard as a plain string (no cursor control:
    the caller decides whether to clear the screen between frames)."""
    rollup = telemetry.rollup(include_stale=True)
    signals = telemetry.signals()
    lines: List[str] = []

    live = signals["live_workers"]
    stale = signals["stale_workers"]
    lines.append(
        f"repro.obs top — {len(live)} live / {len(stale)} stale worker(s), "
        f"window {signals['window_s']:g}s"
    )
    lines.append("")

    coord = signals["coordination"]
    slo = signals["slo"]
    lines.extend(
        [
            "cluster signals",
            f"  tasks/s            {signals['tasks_per_s']:.1f}",
            f"  records/s          {signals['records_per_s']:.1f}",
            f"  queueing delay ms  {_fmt_summary_ms(signals['queueing_delay_ms'])}",
            f"  batch wall ms      {_fmt_summary_ms(signals['batch_wall_ms'])}",
            f"  worker backlog     {signals['backlog']:g}"
            f"   stream backlog {signals['streaming_backlog']:g}",
            f"  coordination       {coord['coordination_s']:.3f}s"
            f" / {coord['wall_s']:.3f}s wall"
            f" (overhead {coord['overhead']:.1%})",
            f"  slo violations     {slo['violations']}"
            + (
                f"   last: {slo['last']['signal']} {slo['last']['value']:.2f}"
                f" > {slo['last']['threshold']:g}"
                if slo["last"]
                else ""
            ),
        ]
    )
    rates = signals["fault_rates_per_s"]
    if any(rates.values()):
        lines.append(
            "  fault rates /s     "
            + "  ".join(f"{k[:-6]}={v:.2f}" for k, v in sorted(rates.items()) if v)
        )
    # Control-plane WAL health (repro.ha): shown only when HA is armed —
    # the driver registry carries ha.* counters then.
    driver_state = rollup["workers"].get(DRIVER_TIMELINE) or {}
    ha_counters = {
        k: v
        for k, v in (driver_state.get("counters") or {}).items()
        if k.startswith("ha.")
    }
    if ha_counters:
        lag = (driver_state.get("gauges") or {}).get("ha.wal_lag", 0)
        lines.append(
            "  ha wal             "
            f"appends={ha_counters.get('ha.wal_appends', 0):g}"
            f" fsyncs={ha_counters.get('ha.wal_fsyncs', 0):g}"
            f" snapshots={ha_counters.get('ha.wal_snapshots', 0):g}"
            f" lag={lag:g}B"
            f" replays={ha_counters.get('ha.wal_replays', 0):g}"
            f" fenced={ha_counters.get('ha.fenced', 0):g}"
        )
    lines.append("")

    lines.append("workers")
    rows: List[List[str]] = []
    for worker_id, state in rollup["workers"].items():
        if worker_id == DRIVER_TIMELINE:
            continue
        qd = state["histograms"].get("telemetry.queue_delay") or {}
        status = "STALE" if state["stale"] else "live"
        if state["faults"]:
            last_fault = state["faults"][-1]
            status += f" ({last_fault['kind']})"
        rows.append(
            [
                worker_id,
                status,
                f"{state['age_s']:.1f}s",
                *(_fmt(state["counters"].get(name, 0)) for name, _ in _WORKER_COLUMNS),
                _fmt(state["gauges"].get("telemetry.backlog", 0)),
                f"{qd['p99'] * 1000:.2f}" if qd.get("count") else "-",
                str(len(state["faults"])),
            ]
        )
    headers = (
        ["worker", "state", "age"]
        + [label for _, label in _WORKER_COLUMNS]
        + ["backlog", "qd p99 ms", "faults"]
    )
    lines.extend(_table(headers, rows) if rows else ["  (no workers reported yet)"])
    lines.append("")

    stage_rows = [
        [f"stage {stage}", _fmt_summary_ms(summary)]
        for stage, summary in signals["stage_latency_ms"].items()
    ]
    if stage_rows:
        lines.append("per-stage task latency")
        lines.extend(_table(["stage", "latency ms"], stage_rows))

    # Membership churn: one line per worker join/leave/loss, newest last,
    # with the controller's (or failure detector's) reason.
    events = rollup.get("scale_events") or []
    if events:
        lines.append("")
        lines.append("scale events")
        t0 = events[0]["t"]
        for event in events[-10:]:
            reason = f" — {event['reason']}" if event.get("reason") else ""
            lines.append(
                f"  +{event['t'] - t0:7.2f}s {event['action']:<5} "
                f"{event['worker']}{reason}"
            )
    return "\n".join(lines)


@contextlib.contextmanager
def demo_cluster(
    transport: str = "inproc",
    executor: str = "thread",
    workers: int = 2,
    batches: int = 8,
    heartbeats: bool = True,
    slo_p99_ms: Optional[float] = None,
) -> Iterator[Any]:
    """A LocalCluster running a streaming wordcount in a background
    thread, telemetry armed — the workload behind ``top``/``serve``.
    Yields the cluster; the workload thread is joined on exit."""
    from repro.engine.cluster import LocalCluster
    from repro.streaming.context import StreamingContext
    from repro.streaming.sources import FixedBatchSource

    conf = EngineConf(
        num_workers=workers,
        transport=TransportConf(backend=transport),
        executor=ExecutorConf(backend=executor),
        monitor=MonitorConf(
            enable_heartbeats=heartbeats,
            heartbeat_interval_s=0.02,
            heartbeat_timeout_s=2.0,
        ),
        telemetry=TelemetryConf(
            enabled=True, interval_s=0.02, slo_p99_ms=slo_p99_ms
        ),
    )
    words = ["drizzle", "spark", "group", "schedule", "batch", "stream"]
    data = [
        [words[(i + j) % len(words)] for j in range(48)] for i in range(batches)
    ]
    with LocalCluster(conf) as cluster:
        ctx = StreamingContext(cluster, FixedBatchSource(data, 4))
        store = ctx.state_store("counts")
        ctx.stream().map(lambda w: (w, 1)).reduce_by_key(
            lambda a, b: a + b, 3
        ).update_state(store, merge=lambda a, b: a + b)
        runner = threading.Thread(
            target=ctx.run_batches, args=(batches,), name="obs-demo", daemon=True
        )
        runner.start()
        try:
            yield cluster
        finally:
            runner.join(timeout=60)


def run_top(
    telemetry: ClusterTelemetry,
    once: bool = False,
    interval_s: float = 0.5,
    frames: Optional[int] = None,
    echo=print,
    stop: Optional[threading.Event] = None,
) -> int:
    """Render loop.  ``once`` (or ``frames``) bounds iterations; the
    interactive path clears the screen with ANSI codes between frames."""
    stop = stop or threading.Event()
    rendered = 0
    while True:
        frame = render_dashboard(telemetry)
        if once or frames is not None:
            echo(frame)
        else:
            echo("\x1b[2J\x1b[H" + frame)
        rendered += 1
        if once or (frames is not None and rendered >= frames):
            return 0
        if stop.wait(interval_s):
            return 0
