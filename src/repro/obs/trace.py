"""Structured span recording with explicit trace-context propagation.

The Drizzle argument is about *where control-plane microseconds go*
(§3.1-§3.4); aggregate counters can say "scheduling took 40ms total" but
not "batch 17's reduce stage waited 3ms on worker-2's launch RPC".  The
:class:`TraceRecorder` fills that gap: every instrumented code region
becomes a span event ``{name, trace_id, span_id, parent_id, actor, ts,
dur, attrs}`` and the driver/worker/RPC layers thread span contexts
through descriptors, message envelopes, and task reports so one
micro-batch is reconstructable end-to-end as a tree.

Design points:

* **Zero cost when disabled.**  :data:`NULL_RECORDER` implements the same
  API as no-ops; instrumentation sites either use it directly or guard
  with ``recorder.enabled``.
* **Thread safe.**  Spans are recorded from the driver, worker executor
  pools, and monitor threads concurrently; the event log is append-only
  under a lock and ids come from an atomic counter.
* **Deterministic time source.**  The recorder shares the engine's
  :class:`~repro.common.clock.Clock`, so traces from ``ManualClock``
  tests are exact.
* **Bounded.**  At most ``max_events`` events are retained; overflow is
  counted in :attr:`TraceRecorder.dropped`, never silently ignored.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.common.clock import Clock, WallClock


@dataclass(frozen=True)
class SpanContext:
    """The portable part of a span: what child spans need to parent to.

    This is what travels inside RPC envelopes, task descriptors, and task
    reports — never the :class:`Span` object itself.
    """

    trace_id: str
    span_id: int


ParentLike = Union["Span", SpanContext, None]


class Span:
    """One in-flight span; recorded into the event log on :meth:`end`.

    Usable as a context manager: entering pushes the span as the calling
    thread's *current* context (so nested spans and outbound RPCs pick it
    up implicitly), exiting pops and ends it.
    """

    __slots__ = (
        "name",
        "actor",
        "trace_id",
        "span_id",
        "parent_id",
        "start_s",
        "attrs",
        "_recorder",
        "_ended",
    )

    def __init__(
        self,
        recorder: "TraceRecorder",
        name: str,
        actor: str,
        trace_id: str,
        span_id: int,
        parent_id: Optional[int],
        start_s: float,
        attrs: Dict[str, Any],
    ):
        self._recorder = recorder
        self.name = name
        self.actor = actor
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.attrs = attrs
        self._ended = False

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def annotate(self, **attrs: Any) -> "Span":
        """Attach key/value annotations (e.g. tuner decisions, §3.4)."""
        self.attrs.update(attrs)
        return self

    def end(self, end_s: Optional[float] = None) -> None:
        """Finish the span and append it to the recorder (idempotent)."""
        if self._ended:
            return
        self._ended = True
        self._recorder._finish(self, end_s)

    def __enter__(self) -> "Span":
        self._recorder._push(self.context)
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", repr(exc))
        self._recorder._pop()
        self.end()
        return False


class _NullSpan:
    """Shared do-nothing span returned by :class:`NullRecorder`."""

    __slots__ = ()
    context: Optional[SpanContext] = None
    name = ""
    attrs: Dict[str, Any] = {}

    def annotate(self, **_attrs: Any) -> "_NullSpan":
        return self

    def end(self, _end_s: Optional[float] = None) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """No-op recorder used when tracing is disabled (``EngineConf``).

    Every method is a constant-time no-op so instrumented code paths pay
    a single attribute access + call, keeping the disabled-mode overhead
    unmeasurable next to real scheduling/RPC work.
    """

    enabled = False
    dropped = 0

    def start_span(self, _name: str, **_kwargs: Any) -> _NullSpan:
        return _NULL_SPAN

    def record_span(self, *_args: Any, **_kwargs: Any) -> None:
        return None

    def instant(self, _name: str, **_kwargs: Any) -> None:
        pass

    def current(self) -> None:
        return None

    def activate(self, _ctx: Optional[SpanContext]) -> _NullSpan:
        return _NULL_SPAN

    def events(self) -> List[Dict[str, Any]]:
        return []

    def reset(self) -> None:
        pass


NULL_RECORDER = NullRecorder()


class TraceRecorder:
    """Collects structured span events from every engine component."""

    enabled = True

    def __init__(self, clock: Optional[Clock] = None, max_events: int = 200_000):
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self._clock = clock or WallClock()
        self._max_events = max_events
        self._events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        # itertools.count.__next__ is atomic in CPython; ids are unique
        # across threads without taking the event-log lock.
        self._ids = itertools.count(1)
        self._tls = threading.local()
        self.dropped = 0

    # ------------------------------------------------------------------
    # Current-context stack (per thread) — the in-process "envelope".
    # ------------------------------------------------------------------
    def _stack(self) -> List[SpanContext]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _push(self, ctx: SpanContext) -> None:
        self._stack().append(ctx)

    def _pop(self) -> None:
        stack = self._stack()
        if stack:
            stack.pop()

    def current(self) -> Optional[SpanContext]:
        """The calling thread's innermost active span context."""
        stack = getattr(self._tls, "stack", None)
        return stack[-1] if stack else None

    @contextmanager
    def activate(self, ctx: ParentLike) -> Iterator[None]:
        """Establish ``ctx`` as the current context for a code block.

        This is how a trace context carried by an RPC envelope or a task
        descriptor is re-established on the receiving side.
        """
        if isinstance(ctx, Span):
            ctx = ctx.context
        if ctx is None:
            yield
            return
        self._push(ctx)
        try:
            yield
        finally:
            self._pop()

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve(parent: ParentLike) -> Optional[SpanContext]:
        if isinstance(parent, Span):
            return parent.context
        return parent

    def start_span(
        self,
        name: str,
        *,
        parent: ParentLike = None,
        root: bool = False,
        actor: str = "driver",
        start_s: Optional[float] = None,
        trace_id: Optional[str] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span.

        ``parent`` may be a :class:`Span`, a :class:`SpanContext`, or
        ``None`` — in which case the thread's current context is used
        unless ``root=True`` forces a new trace.
        """
        parent_ctx = self._resolve(parent)
        if parent_ctx is None and not root:
            parent_ctx = self.current()
        span_id = next(self._ids)
        if parent_ctx is not None:
            tid, parent_id = parent_ctx.trace_id, parent_ctx.span_id
        else:
            tid, parent_id = (trace_id or f"t{span_id}"), None
        return Span(
            self,
            name,
            actor,
            tid,
            span_id,
            parent_id,
            self._clock.now() if start_s is None else start_s,
            attrs,
        )

    def record_span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        *,
        parent: ParentLike = None,
        root: bool = False,
        actor: str = "driver",
        **attrs: Any,
    ) -> SpanContext:
        """Record an already-measured region as a completed span.

        Instrumentation that must share exact window boundaries with a
        metrics counter (the 5%-agreement contract of the CLI) measures
        once and records both from the same timestamps.
        """
        span = self.start_span(
            name, parent=parent, root=root, actor=actor, start_s=start_s, **attrs
        )
        span.end(end_s)
        return span.context

    def instant(
        self,
        name: str,
        *,
        parent: ParentLike = None,
        actor: str = "driver",
        **attrs: Any,
    ) -> None:
        """Record a zero-duration annotation event (e.g. a tuner step)."""
        parent_ctx = self._resolve(parent)
        if parent_ctx is None:
            parent_ctx = self.current()
        span_id = next(self._ids)
        now = self._clock.now()
        self._append(
            {
                "name": name,
                "cat": name.split(".", 1)[0],
                "ph": "i",
                "trace_id": parent_ctx.trace_id if parent_ctx else f"t{span_id}",
                "span_id": span_id,
                "parent_id": parent_ctx.span_id if parent_ctx else None,
                "actor": actor,
                "ts": now,
                "dur": 0.0,
                "attrs": dict(attrs),
            }
        )

    # ------------------------------------------------------------------
    # Event log
    # ------------------------------------------------------------------
    def _finish(self, span: Span, end_s: Optional[float]) -> None:
        end = self._clock.now() if end_s is None else end_s
        self._append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "actor": span.actor,
                "ts": span.start_s,
                "dur": max(end - span.start_s, 0.0),
                "attrs": dict(span.attrs),
            }
        )

    def _append(self, event: Dict[str, Any]) -> None:
        with self._lock:
            if len(self._events) >= self._max_events:
                self.dropped += 1
                return
            self._events.append(event)

    def events(self) -> List[Dict[str, Any]]:
        """A snapshot copy of all recorded events."""
        with self._lock:
            return list(self._events)

    def reset(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __bool__(self) -> bool:
        # An *empty* recorder must still be truthy — ``__len__`` above
        # would otherwise make ``tracer or NULL_RECORDER`` silently drop
        # a freshly constructed recorder.
        return True


Recorder = Union[TraceRecorder, NullRecorder]
