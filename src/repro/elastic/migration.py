"""Key-range shard migration: shipping stateful operator state between
workers inside the group-boundary barrier.

The protocol per :class:`~repro.elastic.shards.ShardMove` is a
three-step, ack-gated transfer over the ordinary (counted) transport:

1. ``extract_state_shards`` on the source — the source *retains* its
   copy; nothing is destroyed before the destination acks.
2. ``install_state_shards`` on the destination with the source's base
   contents overlaid with the driver's dirty delta for the range (the
   updates since the source's copy was last synchronized).  The install
   is idempotent, keyed by (store, range, epoch), so a retry after a
   lost ack is harmless.
3. ``release_state_shards`` on the source, best-effort, only after the
   ack.

Failure rules (§3.3 — resizes must never be less safe than a crash):

* source lost mid-extract — the move falls back to the driver's
  authoritative mirror for the payload and proceeds;
* destination lost mid-install — the move *aborts*: the source keeps its
  shards, the driver's dirty bookkeeping is untouched, and the move is
  requeued by the controller against the refreshed membership;
* every abort counts on ``migration.aborts`` and annotates the active
  trace span; requeued attempts count on ``migration.retries``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.chaos.injector import chaos_hit
from repro.chaos.plan import KIND_WORKER_KILL, SITE_ELASTIC_RESIZE
from repro.common.clock import Clock, WallClock
from repro.common.errors import WorkerLost
from repro.common.metrics import (
    COUNT_MIGRATION_ABORTS,
    COUNT_MIGRATION_KEYS_MOVED,
    COUNT_MIGRATION_RETRIES,
    COUNT_MIGRATION_SHARDS_MOVED,
    HIST_MIGRATION_WALL,
    MetricsRegistry,
)
from repro.elastic.shards import KeyRange, ShardMap, ShardMove
from repro.obs.names import EVENT_MIGRATION_ABORT, SPAN_MIGRATION
from repro.obs.trace import NULL_RECORDER, Recorder


@dataclass
class MigrationOutcome:
    """What one :meth:`MigrationExecutor.execute` round accomplished."""

    epoch: int
    moved: List[ShardMove] = field(default_factory=list)
    failed: List[ShardMove] = field(default_factory=list)
    keys_moved: int = 0
    aborts: int = 0

    @property
    def all_ok(self) -> bool:
        return not self.failed


class MigrationExecutor:
    """Executes shard-move plans over a transport, driver-side.

    ``on_worker_lost`` is the driver's loss handler: a peer that fails a
    migration RPC is reported exactly like one that fails a launch, so
    membership, templates, and recovery react through the one existing
    path.  ``kill_cb`` lets the chaos profile crash a worker *racing* the
    migration (the ``elastic`` profile's signature fault).
    """

    def __init__(
        self,
        transport: Any,
        metrics: MetricsRegistry,
        tracer: Optional[Recorder] = None,
        clock: Optional[Clock] = None,
        on_worker_lost: Optional[Callable[[str], None]] = None,
        kill_cb: Optional[Callable[[str], None]] = None,
    ):
        self.transport = transport
        self.metrics = metrics
        self.tracer = tracer if tracer is not None else NULL_RECORDER
        self.clock = clock or WallClock()
        self._on_worker_lost = on_worker_lost
        self._kill_cb = kill_cb

    # ------------------------------------------------------------------
    def execute(
        self, store: Any, epoch: int, moves: List[ShardMove]
    ) -> MigrationOutcome:
        """Run every move; failures abort individual moves, never the
        round.  ``store`` is the driver-side
        :class:`~repro.streaming.state.ShardedStateStore` (the dirty-delta
        and recovery authority)."""
        outcome = MigrationOutcome(epoch=epoch)
        if not moves:
            return outcome
        start = self.clock.now()
        span = self.tracer.start_span(
            SPAN_MIGRATION,
            actor="driver",
            start_s=start,
            store=store.name,
            epoch=epoch,
            moves=len(moves),
        )
        with self.tracer.activate(span.context):
            for move in moves:
                self._one_move(store, epoch, move, outcome)
        span.annotate(
            moved=len(outcome.moved), failed=len(outcome.failed), keys=outcome.keys_moved
        )
        wall = self.clock.now() - start
        span.end(start + wall)
        self.metrics.histogram(HIST_MIGRATION_WALL).record(wall)
        return outcome

    # ------------------------------------------------------------------
    def _one_move(
        self, store: Any, epoch: int, move: ShardMove, outcome: MigrationOutcome
    ) -> None:
        key_range = move.range
        bounds = key_range.as_tuple()
        src: Optional[str] = move.src

        # Step 1: the base payload — from the retained source copy when it
        # is alive, else from the driver's authoritative mirror.
        base: Dict = {}
        if src is not None:
            try:
                shards = self.transport.call(
                    src, "extract_state_shards", store.name, [bounds]
                )
                base = dict(shards[0][1])
            except WorkerLost:
                self._abort(outcome, move, f"source {src} lost mid-extract")
                self._lost(src)
                src = None
        if src is None:
            base = store.extract_range(key_range)
            delta: Dict[str, Any] = {"updates": {}, "deleted": []}
        else:
            delta = store.delta_for_range(key_range)
        payload = dict(base)
        payload.update(delta["updates"])
        for key in delta["deleted"]:
            payload.pop(key, None)

        # The elastic chaos profile's signature fault: a worker killed
        # racing the resize, between extract and install.
        fault = chaos_hit(SITE_ELASTIC_RESIZE, target=move.dst, method=str(bounds))
        if (
            fault is not None
            and fault.kind == KIND_WORKER_KILL
            and self._kill_cb is not None
        ):
            self._kill_cb(move.dst)

        # Step 2: install on the destination; the ack is what commits.
        try:
            accepted = self.transport.call(
                move.dst,
                "install_state_shards",
                store.name,
                epoch,
                [(bounds, payload)],
            )
        except WorkerLost:
            self._abort(outcome, move, f"destination {move.dst} lost mid-install")
            self._lost(move.dst)
            outcome.failed.append(move)
            return
        if not accepted:
            # The destination has already seen a newer epoch: this move
            # belongs to a superseded plan — drop it, the controller will
            # replan against the current layout.
            self._abort(outcome, move, f"destination {move.dst} refused epoch {epoch}")
            outcome.failed.append(move)
            return

        # Step 3: acked — the driver's dirty window for the range closes
        # and the source may drop its copy.
        store.mark_range_synced(key_range)
        if src is not None and src != move.dst:
            self.transport.try_call(src, "release_state_shards", store.name, [bounds])
        outcome.moved.append(move)
        outcome.keys_moved += len(payload)
        self.metrics.counter(COUNT_MIGRATION_SHARDS_MOVED).add(1)
        self.metrics.counter(COUNT_MIGRATION_KEYS_MOVED).add(len(payload))

    # ------------------------------------------------------------------
    def _abort(self, outcome: MigrationOutcome, move: ShardMove, why: str) -> None:
        outcome.aborts += 1
        self.metrics.counter(COUNT_MIGRATION_ABORTS).add(1)
        self.tracer.instant(
            EVENT_MIGRATION_ABORT,
            actor="driver",
            range=str(move.range.as_tuple()),
            dst=move.dst,
            reason=why,
        )

    def _lost(self, worker_id: str) -> None:
        if self._on_worker_lost is not None:
            self._on_worker_lost(worker_id)

    def count_retry(self, n: int = 1) -> None:
        """Requeued moves (controller-driven) count as retries."""
        if n > 0:
            self.metrics.counter(COUNT_MIGRATION_RETRIES).add(n)


def refine_with_outcomes(
    old_map: ShardMap, target_map: ShardMap, failed: List[ShardMove]
) -> ShardMap:
    """The layout that *actually* holds after a partially-failed round:
    target ranges are split at old-map boundaries and every piece whose
    move failed keeps its old owner (the source retained it).  The
    controller replans from this map against refreshed membership, which
    requeues exactly the failed pieces."""
    failed_bounds = {m.range.as_tuple() for m in failed}
    pieces: List[Tuple[KeyRange, str]] = []
    for key_range, owner in target_map.assignments:
        position = key_range.start
        while position < key_range.stop:
            old_range, old_owner = old_map.assignments[old_map.shard_index(position)]
            piece_stop = min(key_range.stop, old_range.stop)
            piece = KeyRange(position, piece_stop)
            if piece.as_tuple() in failed_bounds:
                pieces.append((piece, old_owner))
            else:
                pieces.append((piece, owner))
            position = piece_stop
    return ShardMap(pieces, epoch=target_map.epoch)


__all__ = ["MigrationExecutor", "MigrationOutcome", "refine_with_outcomes"]
