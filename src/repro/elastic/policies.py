"""Scaling policies for the elastic controller (§3.3, Elasticity).

"we integrate with existing cluster managers ... and the application
layer can choose policies on when to request or relinquish resources.  At
the end of a group boundary, Drizzle updates the list of available
resources and adjusts the tasks to be scheduled for the next group."

A policy inspects recent batch timings (and, for the signal-driven
policy, the cluster's live telemetry signals) and recommends a resize;
the controller applies recommendations only at group boundaries, so
in-flight groups are never disturbed.  These classes used to live in
:mod:`repro.streaming.elasticity`, which still re-exports them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.common.errors import StreamingError


@dataclass(frozen=True)
class ScalingDecision:
    """Recommendation for the next group boundary."""

    delta_workers: int  # >0 add, <0 remove, 0 hold
    reason: str


class ScalingPolicy:
    """Interface: called once per completed group.

    ``recent`` is the context's :class:`~repro.streaming.context.BatchStats`
    history.  A policy that also wants the cluster's live signals
    (:meth:`repro.obs.live.ClusterTelemetry.signals`) overrides
    :meth:`decide_with_signals`; the default ignores them.
    """

    def decide(self, recent: Sequence[Any], current_workers: int) -> ScalingDecision:
        raise NotImplementedError

    def decide_with_signals(
        self,
        signals: Optional[Dict[str, Any]],
        recent: Sequence[Any],
        current_workers: int,
    ) -> ScalingDecision:
        return self.decide(recent, current_workers)


class UtilizationScalingPolicy(ScalingPolicy):
    """Scale on the ratio of batch processing time to the batch interval.

    * ratio above ``scale_up_threshold``  -> request one more machine
      (the system is close to falling behind);
    * ratio below ``scale_down_threshold`` -> relinquish one machine
      (diurnal troughs: "more than 10x difference in load between peak
      and non-peak durations", §1);
    * otherwise hold.
    """

    def __init__(
        self,
        batch_interval_s: float,
        scale_up_threshold: float = 0.8,
        scale_down_threshold: float = 0.3,
        min_workers: int = 1,
        max_workers: int = 1024,
        lookback_batches: int = 6,
    ):
        if batch_interval_s <= 0:
            raise StreamingError("batch_interval_s must be positive")
        if not 0.0 < scale_down_threshold < scale_up_threshold:
            raise StreamingError("need 0 < scale_down < scale_up")
        if not 1 <= min_workers <= max_workers:
            raise StreamingError("need 1 <= min_workers <= max_workers")
        if lookback_batches < 1:
            raise StreamingError("lookback_batches must be >= 1")
        self.batch_interval_s = batch_interval_s
        self.scale_up_threshold = scale_up_threshold
        self.scale_down_threshold = scale_down_threshold
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.lookback_batches = lookback_batches

    def decide(self, recent: Sequence[Any], current_workers: int) -> ScalingDecision:
        window = list(recent)[-self.lookback_batches :]
        if not window:
            return ScalingDecision(0, "no data")
        utilization = sum(s.wall_time_s for s in window) / (
            len(window) * self.batch_interval_s
        )
        if utilization > self.scale_up_threshold and current_workers < self.max_workers:
            return ScalingDecision(
                +1, f"utilization {utilization:.2f} > {self.scale_up_threshold}"
            )
        if (
            utilization < self.scale_down_threshold
            and current_workers > self.min_workers
        ):
            return ScalingDecision(
                -1, f"utilization {utilization:.2f} < {self.scale_down_threshold}"
            )
        return ScalingDecision(0, f"utilization {utilization:.2f} in band")


class SignalScalingPolicy(UtilizationScalingPolicy):
    """Signal-driven autoscaling over the live telemetry plane.

    Reads :meth:`ClusterTelemetry.signals` each boundary: a queueing-delay
    p99 above ``queue_delay_p99_ms`` or a positive task backlog means the
    cluster is falling behind — scale out even if wall-clock utilization
    has not crossed its threshold yet (queueing is the *leading*
    indicator; utilization the lagging one).  With healthy signals the
    utilization rule decides, so the policy degrades gracefully when
    telemetry is disabled (``signals`` is None).
    """

    def __init__(
        self,
        batch_interval_s: float,
        queue_delay_p99_ms: float = 50.0,
        backlog_threshold: int = 1,
        **kwargs: Any,
    ):
        super().__init__(batch_interval_s, **kwargs)
        if queue_delay_p99_ms <= 0:
            raise StreamingError("queue_delay_p99_ms must be positive")
        if backlog_threshold < 1:
            raise StreamingError("backlog_threshold must be >= 1")
        self.queue_delay_p99_ms = queue_delay_p99_ms
        self.backlog_threshold = backlog_threshold

    def decide_with_signals(
        self,
        signals: Optional[Dict[str, Any]],
        recent: Sequence[Any],
        current_workers: int,
    ) -> ScalingDecision:
        if signals and current_workers < self.max_workers:
            p99 = (signals.get("queueing_delay_ms") or {}).get("p99")
            if p99 is not None and p99 > self.queue_delay_p99_ms:
                return ScalingDecision(
                    +1, f"queueing delay p99 {p99:.1f}ms > {self.queue_delay_p99_ms}ms"
                )
            backlog = signals.get("backlog") or 0
            if backlog >= self.backlog_threshold:
                return ScalingDecision(
                    +1, f"task backlog {backlog} >= {self.backlog_threshold}"
                )
        return self.decide(recent, current_workers)


class ScheduleScalingPolicy(ScalingPolicy):
    """A scripted resize schedule: ``{boundary_index: delta}``.

    Deterministic regardless of timing, which is what the chaos soak and
    the equivalence tests need — the resize sequence must be identical
    between a faulted run and its baseline.
    """

    def __init__(self, schedule: Dict[int, int]):
        self.schedule = dict(schedule)
        self._boundary = 0
        self.min_workers = 1
        self.max_workers = 1 << 20

    def decide(self, recent: Sequence[Any], current_workers: int) -> ScalingDecision:
        boundary = self._boundary
        self._boundary += 1
        delta = self.schedule.get(boundary, 0)
        if delta:
            return ScalingDecision(delta, f"scheduled resize at boundary {boundary}")
        return ScalingDecision(0, f"no resize scheduled at boundary {boundary}")


def resolve_policy(name: str, batch_interval_s: float) -> ScalingPolicy:
    """Build the policy named by :class:`ElasticConf.policy`."""
    if name == "signals":
        return SignalScalingPolicy(batch_interval_s)
    if name == "utilization":
        return UtilizationScalingPolicy(batch_interval_s)
    raise StreamingError(f"unknown elastic policy {name!r}")


__all__: Tuple[str, ...] = (
    "ScalingDecision",
    "ScalingPolicy",
    "ScheduleScalingPolicy",
    "SignalScalingPolicy",
    "UtilizationScalingPolicy",
    "resolve_policy",
)
