"""repro.elastic — live autoscaling with stateful key-range migration.

The subsystem has three layers:

* :mod:`repro.elastic.shards` — key-range shards, the epoch-versioned
  :class:`ShardMap`, and the minimal-move resize planner;
* :mod:`repro.elastic.migration` — the executor that ships shards
  between workers inside the group-boundary barrier, with abort/requeue
  on mid-move failures;
* :mod:`repro.elastic.controller` — the :class:`ElasticController` that
  turns live telemetry signals into applied resizes via the pluggable
  :mod:`repro.elastic.policies`.

Attribute access is lazy (PEP 562): the engine's worker imports
``repro.elastic.shards`` for the shard-hosting RPCs, and an eager import
of the controller here would cycle back through the streaming layer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

_EXPORTS = {
    "ElasticController": "repro.elastic.controller",
    "ScalePlan": "repro.elastic.controller",
    "MigrationExecutor": "repro.elastic.migration",
    "MigrationOutcome": "repro.elastic.migration",
    "ScalingDecision": "repro.elastic.policies",
    "ScalingPolicy": "repro.elastic.policies",
    "ScheduleScalingPolicy": "repro.elastic.policies",
    "SignalScalingPolicy": "repro.elastic.policies",
    "UtilizationScalingPolicy": "repro.elastic.policies",
    "resolve_policy": "repro.elastic.policies",
    "HASH_SPACE": "repro.elastic.shards",
    "KeyRange": "repro.elastic.shards",
    "ShardMap": "repro.elastic.shards",
    "ShardMove": "repro.elastic.shards",
    "ShardRangePartitioner": "repro.elastic.shards",
    "plan_resize": "repro.elastic.shards",
    "shard_position": "repro.elastic.shards",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - import-time types for checkers only
    from repro.elastic.controller import ElasticController, ScalePlan
    from repro.elastic.migration import MigrationExecutor, MigrationOutcome
    from repro.elastic.policies import (
        ScalingDecision,
        ScalingPolicy,
        ScheduleScalingPolicy,
        SignalScalingPolicy,
        UtilizationScalingPolicy,
        resolve_policy,
    )
    from repro.elastic.shards import (
        HASH_SPACE,
        KeyRange,
        ShardMap,
        ShardMove,
        ShardRangePartitioner,
        plan_resize,
        shard_position,
    )


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.elastic' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
