"""The elastic controller: live autoscaling at group boundaries (§3.3).

"At the end of a group boundary, Drizzle updates the list of available
resources and adjusts the tasks to be scheduled for the next group."

The controller closes the loop that the advisory policies in
:mod:`repro.streaming.elasticity` used to leave open: each group
boundary it reads the cluster's live telemetry signals, asks its
:class:`~repro.elastic.policies.ScalingPolicy` for a decision, and — when
the decision survives the cooldown and the min/max clamp — actually
resizes the cluster and migrates stateful key-range shards so the next
group's tasks hash to the new layout.  In-flight groups are never
disturbed: everything here runs strictly between groups, inside the same
barrier that takes checkpoints.

Safety properties:

* resizes go through ``cluster.add_worker`` / ``decommission_worker``,
  which bump the driver's template membership epoch — execution templates
  are invalidated on both sides exactly as for a crash;
* shard migration is planned per store by :func:`plan_resize` (minimal
  moves: split/merge of key ranges, not whole-partition reshuffles) and
  executed by :class:`~repro.elastic.migration.MigrationExecutor` with
  abort/requeue on mid-move worker loss;
* the shard-map epoch flips atomically only after every move of the
  round acked, so a partitioner observer sees either the old layout or
  the new one, never a mix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.metrics import (
    COUNT_ELASTIC_DECISIONS,
    COUNT_ELASTIC_RESIZES,
    COUNT_ELASTIC_WORKERS_ADDED,
    COUNT_ELASTIC_WORKERS_REMOVED,
)
from repro.elastic.migration import MigrationExecutor, refine_with_outcomes
from repro.elastic.policies import ScalingDecision, ScalingPolicy, resolve_policy
from repro.elastic.shards import ShardMap, ShardRangePartitioner, plan_resize
from repro.obs.names import EVENT_SCALE_DECISION
from repro.obs.trace import NULL_RECORDER

# A rebalance round retries at most this many times against refreshed
# membership before giving up (each round can only fail if yet another
# worker died, so the bound is really the number of machines).
_MAX_REBALANCE_ROUNDS = 8


@dataclass(frozen=True)
class ScalePlan:
    """One applied resize: what the controller actually did at a boundary."""

    delta: int
    reason: str
    added: Tuple[str, ...] = ()
    removed: Tuple[str, ...] = ()
    epochs: Tuple[Tuple[str, int], ...] = ()  # (store, new shard-map epoch)


class ElasticController:
    """Owns autoscaling for one cluster; attach via
    :meth:`StreamingContext.set_elasticity` (done automatically when
    ``EngineConf.elastic.enabled``).

    The public compatibility surface matches the old advisory
    ``ElasticityController``: construct with ``(cluster, policy)``, call
    :meth:`at_group_boundary` with the batch-stats history, read
    ``.decisions``.
    """

    def __init__(
        self,
        cluster: Any,
        policy: Optional[ScalingPolicy] = None,
        conf: Any = None,
        batch_interval_s: float = 0.1,
    ):
        self.cluster = cluster
        self.conf = conf if conf is not None else cluster.conf.elastic
        self.policy: ScalingPolicy = (
            policy
            if policy is not None
            else resolve_policy(self.conf.policy, batch_interval_s)
        )
        self.decisions: List[ScalingDecision] = []
        self.plans: List[ScalePlan] = []
        self._cooldown = 0
        self._maps: Dict[str, ShardMap] = {}
        self._stores: Dict[str, Any] = {}
        tracer = getattr(cluster, "tracer", None)
        self.tracer = tracer if tracer is not None else NULL_RECORDER
        self.executor = MigrationExecutor(
            cluster.transport,
            cluster.metrics,
            tracer=self.tracer,
            clock=cluster.clock,
            on_worker_lost=cluster.driver.on_worker_lost,
            kill_cb=lambda worker_id: cluster.kill_worker(
                worker_id, notify_driver=True
            ),
        )

    # ------------------------------------------------------------------
    # Store registration / layout observation
    # ------------------------------------------------------------------
    def register_store(self, store: Any) -> ShardMap:
        """Track ``store``'s keyspace per key-range shard.  The initial
        layout tiles the hash space over the current placement; worker
        copies start empty (an empty base is exactly "state as of batch
        -1") so registration costs zero RPCs."""
        if store.name not in self._maps:
            workers = self.cluster.driver.placement_workers()
            self._maps[store.name] = ShardMap.initial(
                workers, self.conf.shards_per_worker
            )
            self._stores[store.name] = store
        return self._maps[store.name]

    def shard_map(self, store_name: str) -> Optional[ShardMap]:
        return self._maps.get(store_name)

    def partitioner_for(self, store_name: str) -> Optional[ShardRangePartitioner]:
        """The partitioner for the *current* epoch of ``store_name``'s
        layout — the next group's tasks hash with this."""
        shard_map = self._maps.get(store_name)
        return shard_map.partitioner() if shard_map is not None else None

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------
    def at_group_boundary(self, batch_stats: Sequence[Any]) -> ScalingDecision:
        """Consult the policy and (maybe) resize.  Called by the
        streaming context once per completed group, inside the boundary
        barrier — in-flight groups are never disturbed."""
        driver = self.cluster.driver
        workers = driver.placement_workers()
        signals = None
        telemetry = getattr(self.cluster, "telemetry", None)
        if telemetry is not None:
            try:
                signals = telemetry.signals()
            except Exception:
                signals = None
        if hasattr(self.policy, "decide_with_signals"):
            decision = self.policy.decide_with_signals(
                signals, batch_stats, len(workers)
            )
        else:
            decision = self.policy.decide(batch_stats, len(workers))
        self.cluster.metrics.counter(COUNT_ELASTIC_DECISIONS).add(1)

        delta = self._clamp(decision.delta_workers, len(workers))
        if delta != 0 and self._cooldown > 0:
            decision = ScalingDecision(
                0, f"cooldown ({self._cooldown} groups left): {decision.reason}"
            )
            delta = 0
        self.decisions.append(decision)
        if self._cooldown > 0:
            self._cooldown -= 1
        if delta == 0:
            # Membership may still have changed under us (a crash since
            # the last boundary): repair shard layouts if so.  On a quiet
            # boundary this is pure arithmetic — zero RPCs.
            self._rebalance()
            return decision

        self.tracer.instant(
            EVENT_SCALE_DECISION,
            actor="driver",
            delta=delta,
            reason=decision.reason,
            workers=len(workers),
        )
        added: List[str] = []
        removed: List[str] = []
        if delta > 0:
            for _ in range(delta):
                added.append(self.cluster.add_worker())
            self.cluster.metrics.counter(COUNT_ELASTIC_WORKERS_ADDED).add(delta)
        else:
            # Graceful removal: highest-numbered machines drain; their
            # shards migrate off while they are still alive to serve the
            # extracts.
            removed = sorted(workers)[delta:]
            for worker_id in removed:
                self.cluster.decommission_worker(worker_id)
            self.cluster.metrics.counter(COUNT_ELASTIC_WORKERS_REMOVED).add(-delta)
        self.cluster.metrics.counter(COUNT_ELASTIC_RESIZES).add(1)
        self._annotate_scale_events(added, removed, decision.reason)
        self._rebalance()
        self._cooldown = self.conf.cooldown_groups
        self.plans.append(
            ScalePlan(
                delta=delta,
                reason=decision.reason,
                added=tuple(added),
                removed=tuple(removed),
                epochs=tuple(
                    (name, shard_map.epoch)
                    for name, shard_map in sorted(self._maps.items())
                ),
            )
        )
        return decision

    def _clamp(self, delta: int, current: int) -> int:
        target = max(self.conf.min_workers, min(self.conf.max_workers, current + delta))
        return target - current

    def _annotate_scale_events(
        self, added: Sequence[str], removed: Sequence[str], reason: str
    ) -> None:
        # The driver already annotates one join/leave line per worker as
        # membership changes; the controller adds the *decision* line that
        # says why the boundary resized.
        telemetry = getattr(self.cluster, "telemetry", None)
        if telemetry is None:
            return
        verb = f"+{len(added)}" if added else f"-{len(removed)}"
        telemetry.annotate_scale_event("cluster", "scale", f"{verb}: {reason}")

    # ------------------------------------------------------------------
    # Shard migration
    # ------------------------------------------------------------------
    def _rebalance(self) -> None:
        """Bring every registered store's shard layout onto the current
        placement.  When membership did not change this is a no-op with
        zero RPCs (``plan_resize`` early-returns), which is what keeps
        ``count.rpc_messages`` parity exact for non-resize groups."""
        driver = self.cluster.driver
        for name, shard_map in list(self._maps.items()):
            store = self._stores[name]
            for round_no in range(_MAX_REBALANCE_ROUNDS):
                placement = driver.placement_workers()
                if not placement:
                    break  # nothing to own the shards; leave the map as-is
                alive = set(self.cluster.alive_workers())
                lost = [w for w in shard_map.workers() if w not in alive]
                target, moves = plan_resize(shard_map, placement, lost=lost)
                if not moves:
                    shard_map = target
                    break
                if round_no > 0:
                    self.executor.count_retry(len(moves))
                outcome = self.executor.execute(store, target.epoch, moves)
                if outcome.all_ok:
                    # Atomic flip: the new epoch becomes visible only now.
                    shard_map = target
                    if set(target.workers()) <= set(driver.placement_workers()):
                        break
                    # A worker died between planning and the flip — loop to
                    # reassign its shards from the driver mirror.
                else:
                    # Aborted moves keep their old owner (the source
                    # retained its copy); requeue against refreshed
                    # membership.
                    shard_map = refine_with_outcomes(shard_map, target, outcome.failed)
            self._maps[name] = shard_map


__all__ = ["ElasticController", "ScalePlan"]
