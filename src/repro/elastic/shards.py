"""Key-range shards over the stable 31-bit hash space.

Stateful operator state is tracked per *key-range shard*: a contiguous
slice of ``[0, 2**31)`` positions under the same deterministic hash the
shuffle partitioners use (:func:`repro.dag.partitioning._stable_hash`).
A cluster resize then moves only the shards whose owner changes —
split/merge of ranges rather than whole-partition reshuffles (the
fine-grained-scalability approach) — and the :class:`ShardMap` epoch is
what the next group's tasks hash against after the flip.

This module is deliberately dependency-light (only ``repro.dag``): the
engine's worker imports it for the shard-hosting RPCs without pulling in
the controller, which would cycle back through the streaming layer.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.dag.partitioning import Partitioner, _stable_hash

# The hash positions partitioners see: _stable_hash of tuples is already
# masked to 31 bits; ints/crc32 values are masked here the same way.
HASH_SPACE = 1 << 31


def shard_position(key: Any) -> int:
    """Deterministic position of ``key`` in ``[0, HASH_SPACE)``."""
    return _stable_hash(key) & 0x7FFFFFFF


@dataclass(frozen=True, order=True)
class KeyRange:
    """A half-open slice ``[start, stop)`` of the hash space."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.stop <= HASH_SPACE:
            raise ConfigError(f"invalid key range [{self.start}, {self.stop})")

    @property
    def width(self) -> int:
        return self.stop - self.start

    def contains(self, position: int) -> bool:
        return self.start <= position < self.stop

    def contains_key(self, key: Any) -> bool:
        return self.contains(shard_position(key))

    def split(self, at: int) -> Tuple["KeyRange", "KeyRange"]:
        if not self.start < at < self.stop:
            raise ConfigError(f"split point {at} outside ({self.start}, {self.stop})")
        return KeyRange(self.start, at), KeyRange(at, self.stop)

    def as_tuple(self) -> Tuple[int, int]:
        return (self.start, self.stop)


@dataclass(frozen=True)
class ShardMove:
    """One planned shard transfer: ``range`` leaves ``src`` for ``dst``.

    ``src`` is ``None`` for a shard whose previous owner is already gone
    (crashed mid-plan): the payload must come from the driver's
    authoritative mirror instead of a worker extract.
    """

    range: KeyRange
    src: Optional[str]
    dst: str


class ShardMap:
    """An epoch-versioned assignment of key ranges to worker ids.

    The ranges must tile ``[0, HASH_SPACE)`` exactly — no gaps, no
    overlap — which :meth:`validate` enforces and the Hypothesis property
    suite hammers.  Maps are value objects: resizes build a *new* map via
    :func:`plan_resize` and the controller flips to it atomically at the
    group boundary.
    """

    def __init__(self, assignments: Sequence[Tuple[KeyRange, str]], epoch: int = 0):
        self.assignments: Tuple[Tuple[KeyRange, str], ...] = tuple(
            sorted(assignments, key=lambda a: a[0].start)
        )
        self.epoch = epoch
        self.validate()
        self._starts = [r.start for r, _ in self.assignments]

    @classmethod
    def initial(cls, workers: Sequence[str], shards_per_worker: int = 4) -> "ShardMap":
        """Even tiling of the hash space: ``len(workers) * shards_per_worker``
        shards dealt round-robin so each worker owns interleaved ranges."""
        workers = sorted(workers)
        if not workers:
            raise ConfigError("ShardMap.initial needs at least one worker")
        n = len(workers) * max(1, shards_per_worker)
        bounds = [(i * HASH_SPACE) // n for i in range(n)] + [HASH_SPACE]
        assignments = [
            (KeyRange(bounds[i], bounds[i + 1]), workers[i % len(workers)])
            for i in range(n)
        ]
        return cls(assignments, epoch=0)

    def validate(self) -> None:
        if not self.assignments:
            raise ConfigError("ShardMap must have at least one shard")
        expected = 0
        for key_range, owner in self.assignments:
            if key_range.start != expected:
                raise ConfigError(
                    f"shard map gap/overlap at {expected}: next range starts "
                    f"at {key_range.start}"
                )
            if not owner:
                raise ConfigError("shard owner must be a worker id")
            expected = key_range.stop
        if expected != HASH_SPACE:
            raise ConfigError(f"shard map covers [0, {expected}), not the full space")

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def shard_index(self, position: int) -> int:
        if not 0 <= position < HASH_SPACE:
            raise ConfigError(f"position {position} outside the hash space")
        return bisect.bisect_right(self._starts, position) - 1

    def range_of(self, key: Any) -> KeyRange:
        return self.assignments[self.shard_index(shard_position(key))][0]

    def owner_of(self, key: Any) -> str:
        return self.assignments[self.shard_index(shard_position(key))][1]

    def ranges_for(self, worker: str) -> List[KeyRange]:
        return [r for r, owner in self.assignments if owner == worker]

    def workers(self) -> List[str]:
        return sorted({owner for _, owner in self.assignments})

    def load(self) -> Dict[str, int]:
        """Total hash-space width owned per worker."""
        out: Dict[str, int] = {}
        for key_range, owner in self.assignments:
            out[owner] = out.get(owner, 0) + key_range.width
        return out

    def num_shards(self) -> int:
        return len(self.assignments)

    def partitioner(self) -> "ShardRangePartitioner":
        return ShardRangePartitioner(
            tuple(r.start for r, _ in self.assignments[1:]), self.epoch
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ShardMap(epoch={self.epoch}, shards={len(self.assignments)})"


class ShardRangePartitioner(Partitioner):
    """Partitions keys by which shard range their hash position lands in.

    A frozen value object (it travels inside task closures to process
    executors), carrying the map epoch so two layouts with coincidentally
    equal boundaries still compare unequal across a flip — plan caches
    keyed on the partitioner recompile after every resize.
    """

    def __init__(self, upper_starts: Tuple[int, ...], epoch: int):
        super().__init__(len(upper_starts) + 1)
        self.upper_starts = tuple(upper_starts)
        self.epoch = epoch

    def partition(self, key: Any) -> int:
        return bisect.bisect_right(self.upper_starts, shard_position(key))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ShardRangePartitioner)
            and self.upper_starts == other.upper_starts
            and self.epoch == other.epoch
        )

    def __hash__(self) -> int:
        return hash(("ShardRangePartitioner", self.upper_starts, self.epoch))


def _coalesce(
    assignments: Iterable[Tuple[KeyRange, str]],
) -> List[Tuple[KeyRange, str]]:
    """Merge adjacent ranges with the same owner (scale-in's range merge)."""
    merged: List[Tuple[KeyRange, str]] = []
    for key_range, owner in sorted(assignments, key=lambda a: a[0].start):
        if merged and merged[-1][1] == owner and merged[-1][0].stop == key_range.start:
            merged[-1] = (KeyRange(merged[-1][0].start, key_range.stop), owner)
        else:
            merged.append((key_range, owner))
    return merged


def plan_resize(
    current: ShardMap, new_workers: Sequence[str], lost: Sequence[str] = ()
) -> Tuple[ShardMap, List[ShardMove]]:
    """Compute the minimal shard-move plan from ``current`` to a layout
    over ``new_workers``.

    Only shards whose owner changes move; surviving owners keep their
    ranges in place.  Scale-out *splits* the widest surviving ranges to
    feed joining workers up to the mean load; scale-in reassigns a
    leaving worker's ranges to the least-loaded survivors and *merges*
    adjacent ranges that end up under one owner.  The result is a new
    :class:`ShardMap` at ``current.epoch + 1`` plus the move list, in
    deterministic order.

    ``lost`` names old owners that are *crashed* (not merely draining):
    their moves get ``src=None`` so the payload comes from the driver's
    mirror.  A decommissioned-but-alive worker stays a valid source — its
    shards ship over the transport like any other move.
    """
    new_workers = sorted(set(new_workers))
    if not new_workers:
        raise ConfigError("plan_resize needs at least one worker")
    if new_workers == current.workers():
        # Same worker set: nothing to move, keep the epoch.
        return current, []

    joiners = [w for w in new_workers if w not in set(current.workers())]
    working: List[Tuple[KeyRange, Optional[str]]] = [
        (r, owner if owner in set(new_workers) else None)
        for r, owner in current.assignments
    ]

    load: Dict[str, int] = {w: 0 for w in new_workers}
    for key_range, owner in working:
        if owner is not None:
            load[owner] += key_range.width

    # Orphaned ranges (leaving/crashed owners) go to the least-loaded
    # remaining worker, one range at a time, widest first.
    orphans = sorted(
        (i for i, (_, owner) in enumerate(working) if owner is None),
        key=lambda i: (-working[i][0].width, working[i][0].start),
    )
    for i in orphans:
        dst = min(new_workers, key=lambda w: (load[w], w))
        working[i] = (working[i][0], dst)
        load[dst] += working[i][0].width

    # Joining workers take width from the most-loaded owners by splitting
    # their widest ranges until each joiner reaches the mean.
    target = HASH_SPACE // len(new_workers)
    for joiner in joiners:
        while load[joiner] < target:
            donor = max(new_workers, key=lambda w: (load[w], w))
            if donor == joiner or load[donor] <= target:
                break
            candidates = [
                i
                for i, (_, owner) in enumerate(working)
                if owner == donor
            ]
            i = max(candidates, key=lambda i: (working[i][0].width, -working[i][0].start))
            key_range = working[i][0]
            need = min(target - load[joiner], load[donor] - target)
            take = min(key_range.width, max(1, need))
            if take < key_range.width:
                keep, give = key_range.split(key_range.stop - take)
                working[i] = (keep, donor)
                working.insert(i + 1, (give, joiner))
            else:
                working[i] = (key_range, joiner)
            load[donor] -= take
            load[joiner] += take

    final = _coalesce((r, owner) for r, owner in working)  # type: ignore[misc]
    new_map = ShardMap(final, epoch=current.epoch + 1)

    # Moves = regions whose owner changed, expressed over the *new* map's
    # ranges (what actually ships), with the source looked up range-by-
    # range in the old map (a new range never spans old owners: splits
    # only ever subdivide a single old range).
    moves: List[ShardMove] = []
    lost_set = set(lost)
    for key_range, owner in new_map.assignments:
        position = key_range.start
        while position < key_range.stop:
            old_range, old_owner = current.assignments[current.shard_index(position)]
            piece_stop = min(key_range.stop, old_range.stop)
            if old_owner != owner:
                src = None if old_owner in lost_set else old_owner
                moves.append(ShardMove(KeyRange(position, piece_stop), src, owner))
            position = piece_stop
    moves.sort(key=lambda m: m.range.start)
    return new_map, moves


def extract_range(state: Dict[Any, Any], key_range: KeyRange) -> Dict[Any, Any]:
    """The subset of ``state`` whose keys hash into ``key_range``."""
    return {k: v for k, v in state.items() if key_range.contains_key(k)}


__all__ = [
    "HASH_SPACE",
    "KeyRange",
    "ShardMap",
    "ShardMove",
    "ShardRangePartitioner",
    "extract_range",
    "plan_resize",
    "shard_position",
]
