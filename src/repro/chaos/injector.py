"""Process-global fault injector.

Production code asks :func:`chaos_hit` whether a fault is scheduled at a
named site.  With no injector installed the call is a single global read
returning ``None`` — cheap enough to leave in hot paths.  When a
:class:`ChaosInjector` is installed (by ``LocalCluster`` when
``ChaosConf.enabled``), each hit increments a per-site counter and fires
the plan's event scheduled for that exact count.

The injector only *reports* what should happen; the call site owns the
mechanics of making it happen (raising, sleeping, killing), because only
the site knows how to fail safely at that point.  Every fired event is
recorded on the injector's fault log, counted under ``chaos.*`` metrics,
and emitted as an obs instant event so traces show which fault caused
which recovery.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.common.errors import ReproError
from repro.common.metrics import (
    CHAOS_KIND_PREFIX,
    COUNT_CHAOS_INJECTED,
    COUNT_CHAOS_SUPPRESSED,
)
from repro.obs.names import EVENT_CHAOS_FAULT

from repro.chaos.plan import KILL_KINDS, FaultEvent, FaultPlan

_LOCK = threading.Lock()
_ACTIVE: Optional["ChaosInjector"] = None


class ChaosInjector:
    """Fires a :class:`FaultPlan`'s events on exact per-site hit counts."""

    def __init__(
        self, plan: FaultPlan, metrics=None, tracer=None, kill_budget: int = 1,
        telemetry=None,
    ):
        self.plan = plan
        self.metrics = metrics
        self.tracer = tracer
        self.telemetry = telemetry
        self.kill_budget = kill_budget
        self.records: List[Dict[str, object]] = []
        self._hits: Dict[str, int] = {}
        self._pending: Dict[str, Dict[int, FaultEvent]] = {}
        self._lock = threading.Lock()
        for event in plan:
            self._pending.setdefault(event.site, {})[event.at_hit] = event

    def hit(self, site: str, target: str = "", method: str = "") -> Optional[FaultEvent]:
        with self._lock:
            count = self._hits.get(site, 0) + 1
            self._hits[site] = count
            event = self._pending.get(site, {}).pop(count, None)
            if event is None:
                return None
            if event.kind in KILL_KINDS:
                if self.kill_budget <= 0:
                    self._record(event, target, method, count, suppressed=True)
                    return None
                self.kill_budget -= 1
            self._record(event, target, method, count, suppressed=False)
        # Metrics/tracing outside the lock: both are internally locked.
        if self.metrics is not None:
            if event is not None:
                self.metrics.counter(COUNT_CHAOS_INJECTED).add(1)
                self.metrics.counter(f"{CHAOS_KIND_PREFIX}.{event.kind}").add(1)
        if self.tracer is not None and event is not None:
            try:
                self.tracer.instant(
                    EVENT_CHAOS_FAULT,
                    actor="chaos",
                    site=site,
                    kind=event.kind,
                    target=target,
                    method=method,
                    hit=count,
                )
            except Exception:
                pass  # tracing must never turn a fault into a crash
        if self.telemetry is not None and event is not None and target:
            try:
                # Pin the fault onto the affected worker's live timeline
                # so dashboards show what hit whom, and when.
                self.telemetry.annotate_fault(target, event.kind, site)
            except Exception:
                pass  # telemetry must never turn a fault into a crash
        return event

    def _record(
        self, event: FaultEvent, target: str, method: str, count: int, suppressed: bool
    ) -> None:
        # Called under self._lock.
        self.records.append(
            {
                "event_id": event.event_id,
                "site": event.site,
                "kind": event.kind,
                "target": target,
                "method": method,
                "hit": count,
                "param": event.param,
                "suppressed": suppressed,
            }
        )
        if suppressed and self.metrics is not None:
            self.metrics.counter(COUNT_CHAOS_SUPPRESSED).add(1)

    @property
    def injected_count(self) -> int:
        with self._lock:
            return sum(1 for r in self.records if not r["suppressed"])

    def fault_log(self) -> List[str]:
        with self._lock:
            return [
                f"{'SUPPRESSED ' if r['suppressed'] else ''}"
                f"{r['kind']} @ {r['site']} hit {r['hit']}"
                f"{' target=' + str(r['target']) if r['target'] else ''}"
                f"{' method=' + str(r['method']) if r['method'] else ''}"
                for r in self.records
            ]


def install(injector: ChaosInjector) -> None:
    global _ACTIVE
    with _LOCK:
        if _ACTIVE is not None and _ACTIVE is not injector:
            raise ReproError(
                "a different ChaosInjector is already installed; "
                "shut down the previous chaos cluster first"
            )
        _ACTIVE = injector


def uninstall(injector: ChaosInjector) -> None:
    """Remove ``injector`` if it is the active one (idempotent)."""
    global _ACTIVE
    with _LOCK:
        if _ACTIVE is injector:
            _ACTIVE = None


def active() -> Optional[ChaosInjector]:
    return _ACTIVE


def chaos_hit(site: str, target: str = "", method: str = "") -> Optional[FaultEvent]:
    """The hook production code calls: ``None`` unless chaos is armed AND
    a fault is scheduled for this exact hit of ``site``."""
    injector = _ACTIVE
    if injector is None:
        return None
    return injector.hit(site, target=target, method=method)
