"""Chaos soak runner: N seeded runs, each diffed against a fault-free run.

The property under test is the paper's recovery argument (§3.3): with
deterministic workloads, a run that survives injected faults must produce
*exactly* the output of a fault-free run — same batches, same counts, no
losses, no duplicates.  Each iteration builds a fresh cluster armed with
``ChaosConf(seed=...)``, runs the workload, and compares.  On mismatch (or
an unrecovered error) the seed, the generated fault plan, and the log of
faults actually fired are dumped so the failure is reproducible with::

    python -m repro.chaos soak --seeds 1 --seed-base <seed> ...

Invoked as ``python -m repro.chaos soak``; importable for tests via
:func:`run_soak` / :func:`main`.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
import traceback
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.chaos.plan import FaultPlan
from repro.common.config import (
    CHAOS_PROFILES,
    ChaosConf,
    EngineConf,
    ExecutorConf,
    MonitorConf,
    SchedulingMode,
    SpeculationConf,
    TransportConf,
)

_ALPHABET = ["a", "b", "c", "d", "e", "f"]


@dataclass
class SoakSettings:
    """One soak configuration (shared by the baseline and every seed)."""

    workload: str = "wordcount"
    profile: str = "mixed"
    transport: str = "tcp"
    executor: str = "process"
    workers: int = 3
    batches: int = 6
    group_size: int = 3
    intensity: float = 1.0
    stage_timeout_s: float = 30.0


@dataclass
class SeedResult:
    seed: int
    ok: bool
    injected: int
    mismatch: bool = False
    error: Optional[str] = None
    duration_s: float = 0.0
    fault_log: List[str] = field(default_factory=list)


def _make_conf(settings: SoakSettings, chaos: Optional[ChaosConf]) -> EngineConf:
    return EngineConf(
        num_workers=settings.workers,
        slots_per_worker=2,
        scheduling_mode=SchedulingMode.DRIZZLE,
        group_size=settings.group_size,
        checkpoint_interval_batches=3,
        monitor=MonitorConf(
            enable_heartbeats=True,
            heartbeat_interval_s=0.05,
            heartbeat_timeout_s=0.5,
        ),
        speculation=SpeculationConf(
            enabled=True,
            check_interval_s=0.05,
            min_runtime_s=0.25,
            min_completed_fraction=0.25,
        ),
        transport=TransportConf(
            backend=settings.transport,
            connect_timeout_s=0.5,
            call_timeout_s=5.0,
        ),
        executor=ExecutorConf(backend=settings.executor),
        stage_timeout_s=settings.stage_timeout_s,
        # Explicit, even for baselines: REPRO_CHAOS_* in the environment
        # must never arm the fault-free reference run.
        chaos=chaos or ChaosConf(enabled=False),
    )


def _word_batches(data_seed: int, num_batches: int, n: int = 40) -> List[List[str]]:
    out = []
    for b in range(num_batches):
        rng = random.Random(f"soak-data/{data_seed}/{b}")
        out.append([rng.choice(_ALPHABET) for _ in range(n)])
    return out


# ----------------------------------------------------------------------
# Workloads.  Each returns (canonical_result, injected_count, fault_log);
# canonical results are plain sorted structures so == is the diff.
# ----------------------------------------------------------------------
def _run_wordcount(
    conf: EngineConf, batches: List[List[str]]
) -> Tuple[Any, int, List[str]]:
    from repro.dag.dataset import parallelize
    from repro.dag.plan import collect_action, compile_plan
    from repro.engine.cluster import LocalCluster

    with LocalCluster(conf) as cluster:
        plans = [
            compile_plan(
                parallelize(words, 4)
                .map(lambda w: (w, 1))
                .reduce_by_key(lambda a, b: a + b, 3),
                collect_action(),
                map_side_combine=conf.map_side_combine,
            )
            for words in batches
        ]
        results = cluster.run_group(plans)
        canonical = [sorted(r) for r in results]
        injected = cluster.chaos.injected_count if cluster.chaos else 0
        log = cluster.chaos.fault_log() if cluster.chaos else []
    return canonical, injected, log


def _run_streaming(
    conf: EngineConf, batches: List[List[str]]
) -> Tuple[Any, int, List[str]]:
    from repro.engine.cluster import LocalCluster
    from repro.streaming.context import StreamingContext
    from repro.streaming.sources import FixedBatchSource

    with LocalCluster(conf) as cluster:
        source = FixedBatchSource(batches, 4)
        ctx = StreamingContext(cluster, source, batch_interval_s=0.05)
        store = ctx.state_store("counts")
        stream = (
            ctx.stream().map(lambda w: (w, 1)).reduce_by_key(lambda a, b: a + b, 3)
        )
        stream.update_state(store, merge=lambda a, b: a + b)
        ctx.run_batches(len(batches))
        canonical = sorted(store.items())
        injected = cluster.chaos.injected_count if cluster.chaos else 0
        log = cluster.chaos.fault_log() if cluster.chaos else []
    return canonical, injected, log


def _run_elastic(
    conf: EngineConf, batches: List[List[str]]
) -> Tuple[Any, int, List[str]]:
    """Streaming wordcount under a *scripted* resize schedule: scale out
    after the first boundary, back in later, with sharded state migrating
    at each resize.  The schedule is deterministic (boundary-indexed), so
    the fault-free baseline resizes identically — the property under test
    is that a worker kill racing a scale-in (the ``elastic`` profile's
    guaranteed fault, injected mid shard-move) still yields the exact
    fixed-size result: no key lost, none duplicated."""
    from repro.elastic.controller import ElasticController
    from repro.elastic.policies import ScheduleScalingPolicy
    from repro.engine.cluster import LocalCluster
    from repro.streaming.context import StreamingContext
    from repro.streaming.sources import FixedBatchSource

    with LocalCluster(conf) as cluster:
        source = FixedBatchSource(batches, 4)
        ctx = StreamingContext(cluster, source, batch_interval_s=0.05)
        controller = ElasticController(
            cluster,
            policy=ScheduleScalingPolicy({1: +1, 3: -1}),
            batch_interval_s=0.05,
        )
        ctx.set_elasticity(controller)
        store = ctx.state_store("counts")
        partitioner = ctx.shard_partitioner("counts")
        stream = (
            ctx.stream()
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda a, b: a + b, 3, partitioner=partitioner)
        )
        stream.update_state(store, merge=lambda a, b: a + b)
        ctx.run_batches(len(batches))
        canonical = sorted(store.items())
        injected = cluster.chaos.injected_count if cluster.chaos else 0
        log = cluster.chaos.fault_log() if cluster.chaos else []
    return canonical, injected, log


def _run_driver(
    conf: EngineConf, batches: List[List[str]]
) -> Tuple[Any, int, List[str]]:
    """Streaming wordcount whose chaos target is the *driver* itself.

    The ``driver`` profile schedules :data:`KIND_DRIVER_KILL` faults at
    the streaming loop's journaled transition points (group boundary,
    mid-group, mid-checkpoint).  When one fires, this workload does what a
    process supervisor would: tears the incarnation down, restarts from
    the control-plane WAL via :meth:`LocalCluster.recover`, seeds the
    epoch-fenced sink from the journal's committed-batch high-water mark,
    and resumes from the last committed group.  The pass criterion is the
    usual one — byte-identical state versus the fault-free run — plus,
    implicitly, zero double-emissions (the fenced sink would diverge the
    state reconstruction if recommits landed)."""
    import copy
    import os
    import shutil
    import tempfile

    from repro.common.errors import DriverKilled
    from repro.engine.cluster import LocalCluster
    from repro.streaming.context import StreamingContext
    from repro.streaming.sinks import EpochFencedSink
    from repro.streaming.sources import FixedBatchSource

    # CI points REPRO_SOAK_WAL_ROOT somewhere artifact-uploadable so a
    # failing seed's journal survives the run; default is a temp dir.
    wal_root = os.environ.get("REPRO_SOAK_WAL_ROOT") or None
    if wal_root:
        Path(wal_root).mkdir(parents=True, exist_ok=True)
    wal_dir = tempfile.mkdtemp(prefix="soak-wal-", dir=wal_root)
    conf.ha.enabled = True
    conf.ha.wal_dir = wal_dir
    sink = EpochFencedSink()
    total = len(batches)
    injected = 0
    log: List[str] = []

    def attach(cluster: "LocalCluster"):
        ctx = StreamingContext(
            cluster, FixedBatchSource(batches, 4), batch_interval_s=0.05
        )
        store = ctx.state_store("counts")
        stream = (
            ctx.stream().map(lambda w: (w, 1)).reduce_by_key(lambda a, b: a + b, 3)
        )

        def deliver(batch_id: int, records: List[Any]) -> None:
            # State is applied unconditionally — replay after recovery
            # must reconstruct it from the checkpoint forward.  Only the
            # *external emission* dedups: a batch already in the sink's
            # restored ledger commits as a no-op.
            store.update_many(dict(records), lambda a, b: a + b)
            sink.commit(batch_id, sorted(records), epoch=cluster.driver.session_epoch)

        ctx.register_output(stream, deliver)
        return ctx, store

    cluster = LocalCluster(conf)
    try:
        while True:
            ctx, store = attach(cluster)
            recovered = cluster.recovered_state
            if recovered is not None and recovered.session_epoch > 0:
                sink.adopt_epoch(cluster.driver.session_epoch)
                sink.restore_ledger(sorted(recovered.committed_batches))
                ctx.restore_from_recovery(recovered)
            try:
                ctx.run_batches(total - ctx.next_batch)
            except DriverKilled:
                # Control plane "died".  Harvest the fault accounting from
                # the doomed incarnation, then restart from the WAL with
                # chaos disabled: the injector is process-global and the
                # recovered driver is the subject under test, not a fresh
                # target.
                if cluster.chaos is not None:
                    injected += cluster.chaos.injected_count
                    log += cluster.chaos.fault_log()
                cluster.shutdown()
                recover_conf = copy.deepcopy(conf)
                recover_conf.chaos = ChaosConf(enabled=False)
                cluster = LocalCluster.recover(wal_dir, recover_conf)
                continue
            if cluster.chaos is not None:
                injected += cluster.chaos.injected_count
                log += cluster.chaos.fault_log()
            return sorted(store.items()), injected, log
    finally:
        cluster.shutdown()
        if not wal_root:
            # Under REPRO_SOAK_WAL_ROOT the journal is kept for the CI
            # artifact upload; the default temp dir is cleaned up.
            shutil.rmtree(wal_dir, ignore_errors=True)


WORKLOADS: Dict[str, Callable[[EngineConf, List[List[str]]], Tuple[Any, int, List[str]]]] = {
    "wordcount": _run_wordcount,
    "streaming": _run_streaming,
    "elastic": _run_elastic,
    "driver": _run_driver,
}

# The streaming workload defaults to the streaming fault profile (its
# checkpoint/replay sites see no traffic under plain wordcount); the
# elastic workload to the resize-racing kill profile, and the driver
# workload to the driver-kill profile, for the same reason.
DEFAULT_PROFILE = {
    "wordcount": "mixed",
    "streaming": "streaming",
    "elastic": "elastic",
    "driver": "driver",
}


def run_soak(
    settings: SoakSettings,
    seeds: int,
    seed_base: int = 0,
    out_dir: Optional[str] = None,
    echo: Callable[[str], None] = print,
    keep_going: bool = False,
) -> Dict[str, Any]:
    """Run ``seeds`` seeded iterations; returns a JSON-able summary with
    ``ok`` true iff every run matched the fault-free baseline AND injected
    at least one fault.

    By default the loop stops at the first failing seed (fail fast: a CI
    job surfaces the failure minutes earlier).  With ``keep_going`` every
    seed runs regardless, so one flaky seed does not mask how the rest of
    the range behaves."""
    workload = WORKLOADS[settings.workload]
    soak_start = time.monotonic()
    batches = _word_batches(settings.workers * 1000 + settings.batches, settings.batches)
    out_path = Path(out_dir) if out_dir else None
    if out_path is not None:
        out_path.mkdir(parents=True, exist_ok=True)

    echo(
        f"soak: workload={settings.workload} profile={settings.profile} "
        f"transport={settings.transport} executor={settings.executor} "
        f"workers={settings.workers} batches={settings.batches}"
    )
    expected, _, _ = workload(_make_conf(settings, None), batches)
    echo("baseline (fault-free) computed")

    results: List[SeedResult] = []
    for i in range(seeds):
        seed = seed_base + i
        chaos = ChaosConf(
            enabled=True,
            seed=seed,
            profile=settings.profile,
            intensity=settings.intensity,
            max_worker_kills=1,
        )
        started = time.monotonic()
        got: Any = None
        error: Optional[str] = None
        injected = 0
        fault_log: List[str] = []
        try:
            got, injected, fault_log = workload(_make_conf(settings, chaos), batches)
        except Exception:  # noqa: BLE001 - any escape is a soak failure
            error = traceback.format_exc()
        duration = time.monotonic() - started
        mismatch = error is None and got != expected
        ok = error is None and not mismatch and injected >= 1
        results.append(
            SeedResult(
                seed=seed,
                ok=ok,
                injected=injected,
                mismatch=mismatch,
                error=error,
                duration_s=round(duration, 3),
                fault_log=fault_log,
            )
        )
        status = "ok" if ok else ("MISMATCH" if mismatch else ("ERROR" if error else "NO-FAULTS"))
        echo(
            f"seed {seed}: {status} ({injected} fault(s) injected, "
            f"{duration:.1f}s)"
        )
        if not ok:
            _report_failure(
                settings, seed, chaos, expected, got, error, fault_log, out_path, echo
            )
            if not keep_going:
                echo(
                    f"soak: stopping after failing seed {seed} "
                    "(pass --keep-going to run every seed)"
                )
                break

    summary = {
        "ok": all(r.ok for r in results) and len(results) == seeds,
        "seeds": seeds,
        "seed_base": seed_base,
        "attempted": len(results),
        "keep_going": keep_going,
        "wall_time_s": round(time.monotonic() - soak_start, 3),
        "settings": asdict(settings),
        "results": [asdict(r) for r in results],
    }
    if out_path is not None:
        (out_path / "soak-summary.json").write_text(json.dumps(summary, indent=2))
    passed = sum(1 for r in results if r.ok)
    echo(f"soak: {passed}/{seeds} seed(s) passed ({len(results)} attempted)")
    return summary


def _report_failure(
    settings: SoakSettings,
    seed: int,
    chaos: ChaosConf,
    expected: Any,
    got: Any,
    error: Optional[str],
    fault_log: List[str],
    out_path: Optional[Path],
    echo: Callable[[str], None],
) -> None:
    plan = FaultPlan.generate(seed, settings.profile, settings.intensity)
    echo(f"--- failure for seed {seed} ---")
    echo(plan.describe())
    for line in fault_log:
        echo(f"  fired: {line}")
    echo(
        "reproduce with: python -m repro.chaos soak --seeds 1 "
        f"--seed-base {seed} --profile {settings.profile} "
        f"--workload {settings.workload} --transport {settings.transport} "
        f"--executor {settings.executor} --workers {settings.workers} "
        f"--batches {settings.batches}"
    )
    if out_path is None:
        return
    payload = {
        "seed": seed,
        "settings": asdict(settings),
        "chaos": asdict(chaos),
        "plan": [e.describe() for e in plan],
        "fault_log": fault_log,
        "error": error,
        "expected": _jsonable(expected),
        "got": _jsonable(got),
    }
    (out_path / f"soak-failure-seed-{seed}.json").write_text(
        json.dumps(payload, indent=2)
    )


def _jsonable(value: Any) -> Any:
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Deterministic fault injection: soak runs and fault-plan tools.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    soak = sub.add_parser("soak", help="run seeded chaos iterations and diff results")
    soak.add_argument("--seeds", type=int, default=20, help="number of seeded runs")
    soak.add_argument("--seed-base", type=int, default=0, help="first seed")
    soak.add_argument("--profile", choices=CHAOS_PROFILES, default=None)
    soak.add_argument("--workload", choices=sorted(WORKLOADS), default="wordcount")
    soak.add_argument("--transport", choices=("inproc", "tcp"), default="tcp")
    soak.add_argument("--executor", choices=("inline", "thread", "process"), default="process")
    soak.add_argument("--workers", type=int, default=3)
    soak.add_argument("--batches", type=int, default=6)
    soak.add_argument("--group-size", type=int, default=3)
    soak.add_argument("--intensity", type=float, default=1.0)
    soak.add_argument("--stage-timeout", type=float, default=30.0)
    soak.add_argument("--out", default=None, help="directory for summary/failure JSON")
    soak.add_argument(
        "--keep-going",
        action="store_true",
        help="run every seed even after a failure (default: stop at the first)",
    )

    plan = sub.add_parser("plan", help="print the fault plan for one seed")
    plan.add_argument("--seed", type=int, default=0)
    plan.add_argument("--profile", choices=CHAOS_PROFILES, default="mixed")
    plan.add_argument("--intensity", type=float, default=1.0)

    sub.add_parser("profiles", help="list fault profiles")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "profiles":
        for name in CHAOS_PROFILES:
            print(name)
        return 0
    if args.command == "plan":
        print(FaultPlan.generate(args.seed, args.profile, args.intensity).describe())
        return 0
    settings = SoakSettings(
        workload=args.workload,
        profile=args.profile or DEFAULT_PROFILE[args.workload],
        transport=args.transport,
        executor=args.executor,
        workers=args.workers,
        batches=args.batches,
        group_size=args.group_size,
        intensity=args.intensity,
        stage_timeout_s=args.stage_timeout,
    )
    summary = run_soak(
        settings,
        seeds=args.seeds,
        seed_base=args.seed_base,
        out_dir=args.out,
        keep_going=args.keep_going,
    )
    return 0 if summary["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
