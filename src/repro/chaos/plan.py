"""Seeded fault plans.

A :class:`FaultPlan` is a deterministic schedule of fault events derived
from ``(seed, profile, intensity)``: the same triple always yields the
same schedule, so any soak failure is reproducible from its printed seed
(the FoundationDB-simulation / Jepsen-nemesis property the chaos layer
exists for).

Events are addressed by *site* — a named injection point threaded through
the production code (``chaos_hit(SITE_...)``) — and fire on an exact hit
count at that site, so a plan is independent of wall-clock timing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.common.config import CHAOS_PROFILES
from repro.common.errors import ConfigError

# ----------------------------------------------------------------------
# Injection sites.  Each constant names one ``chaos_hit`` call site in
# production code; the comment says which layer owns it.
# ----------------------------------------------------------------------
SITE_NET_DIAL = "net.dial"  # ConnectionPool._dial attempt (tcp)
SITE_NET_CALL = "net.call"  # TcpTransport.call, post-resolve (tcp)
SITE_NET_FRAME = "net.frame"  # TcpTransport frame encode (tcp)
SITE_NET_SERVE = "net.serve"  # MessageServer request handling (tcp)
SITE_WORKER_TASK = "worker.task"  # Worker._run_task entry
SITE_EXEC_COMPUTE = "exec.compute"  # Worker._execute, pre-backend
SITE_BLOCKS_FETCH = "blocks.fetch"  # BlockStore bucket lookup
SITE_STREAM_CHECKPOINT = "streaming.checkpoint"  # StreamingContext.checkpoint
SITE_STREAM_GROUP = "streaming.group"  # run_batches group boundary
SITE_ELASTIC_RESIZE = "elastic.resize"  # MigrationExecutor, mid shard move
SITE_DRIVER = "driver.control"  # StreamingContext driver-kill points (repro.ha)

ALL_SITES = (
    SITE_NET_DIAL,
    SITE_NET_CALL,
    SITE_NET_FRAME,
    SITE_NET_SERVE,
    SITE_WORKER_TASK,
    SITE_EXEC_COMPUTE,
    SITE_BLOCKS_FETCH,
    SITE_STREAM_CHECKPOINT,
    SITE_STREAM_GROUP,
    SITE_ELASTIC_RESIZE,
    SITE_DRIVER,
)

# ----------------------------------------------------------------------
# Fault kinds.  ``param`` is a kind-specific scalar (a delay in seconds,
# usually); kinds that take no parameter carry 0.0.
# ----------------------------------------------------------------------
KIND_DIAL_REFUSE = "dial_refuse"  # one dial attempt raises ConnectionRefused
KIND_NET_DROP = "net_drop"  # a call is dropped -> WorkerLost at the caller
KIND_NET_DELAY = "net_delay"  # a call is delayed by ``param`` seconds
KIND_NET_DUPLICATE = "net_duplicate"  # a call is sent twice (at-least-once)
KIND_NET_GARBLE = "net_garble"  # frame header corrupted on the wire
KIND_RESPONSE_DROP = "response_drop"  # server accepts a request, never replies
KIND_SERVER_KILL = "server_kill"  # a worker MessageServer closes mid-run
KIND_WORKER_KILL = "worker_kill"  # a worker dies at task entry
KIND_WORKER_HANG = "worker_hang"  # a worker stalls ``param`` s at task entry
KIND_EXEC_STRAGGLE = "exec_straggle"  # one task computes ``param`` s slower
KIND_BLOCK_DELETE = "block_delete"  # a shuffle bucket vanishes -> FetchFailed
KIND_CHECKPOINT_KILL = "checkpoint_kill"  # a worker dies during checkpoint
KIND_FORCE_REPLAY = "force_replay"  # streaming restore_and_replay mid-run
KIND_DRIVER_KILL = "driver_kill"  # the driver process dies (repro.ha recovers)

# Kinds that take a machine out; the injector charges these against the
# kill budget so a plan can never kill the last survivor.  A driver kill
# is deliberately NOT in this set: it takes out the control plane, not a
# worker, and the WAL — not the kill budget — bounds its blast radius.
KILL_KINDS = frozenset({KIND_SERVER_KILL, KIND_WORKER_KILL, KIND_CHECKPOINT_KILL})

# (site, kind, weight) templates per profile.  Weights bias the sampler;
# the "mixed" profile draws from everything.  The "net" profile is only
# meaningful on the tcp transport (the inproc transport never dials).
_NET_TEMPLATES: List[Tuple[str, str, float]] = [
    (SITE_NET_DIAL, KIND_DIAL_REFUSE, 2.0),
    (SITE_NET_CALL, KIND_NET_DROP, 2.0),
    (SITE_NET_CALL, KIND_NET_DELAY, 3.0),
    (SITE_NET_CALL, KIND_NET_DUPLICATE, 2.0),
    (SITE_NET_FRAME, KIND_NET_GARBLE, 1.0),
    (SITE_NET_SERVE, KIND_RESPONSE_DROP, 1.5),
    (SITE_NET_SERVE, KIND_SERVER_KILL, 1.0),
]
_WORKER_TEMPLATES: List[Tuple[str, str, float]] = [
    (SITE_WORKER_TASK, KIND_WORKER_KILL, 2.0),
    (SITE_WORKER_TASK, KIND_WORKER_HANG, 2.0),
    (SITE_EXEC_COMPUTE, KIND_EXEC_STRAGGLE, 3.0),
]
_STORAGE_TEMPLATES: List[Tuple[str, str, float]] = [
    (SITE_BLOCKS_FETCH, KIND_BLOCK_DELETE, 3.0),
    (SITE_WORKER_TASK, KIND_WORKER_KILL, 1.0),
]
_STREAMING_TEMPLATES: List[Tuple[str, str, float]] = [
    (SITE_STREAM_CHECKPOINT, KIND_CHECKPOINT_KILL, 2.0),
    (SITE_STREAM_GROUP, KIND_FORCE_REPLAY, 2.0),
    (SITE_WORKER_TASK, KIND_WORKER_KILL, 1.0),
    (SITE_EXEC_COMPUTE, KIND_EXEC_STRAGGLE, 1.0),
]
# The elastic profile's signature fault is a worker killed *racing* a
# resize: the migration executor hits SITE_ELASTIC_RESIZE between the
# shard extract and install, so a kill scheduled there lands exactly in
# the abort/requeue window the move protocol must survive.
_ELASTIC_TEMPLATES: List[Tuple[str, str, float]] = [
    (SITE_ELASTIC_RESIZE, KIND_WORKER_KILL, 3.0),
    (SITE_WORKER_TASK, KIND_WORKER_KILL, 1.0),
    (SITE_STREAM_GROUP, KIND_FORCE_REPLAY, 1.0),
    (SITE_EXEC_COMPUTE, KIND_EXEC_STRAGGLE, 1.0),
]
# The driver profile's signature fault is a control-plane crash.  The
# streaming loop threads SITE_DRIVER through three distinct moments —
# the group boundary (right after a group commit is journaled), mid
# group (before the commit exists), and mid checkpoint — so one site
# covers all three crash alignments the WAL must survive; the fault log
# records which moment fired via the site's ``method`` tag.
_DRIVER_TEMPLATES: List[Tuple[str, str, float]] = [
    (SITE_DRIVER, KIND_DRIVER_KILL, 4.0),
    (SITE_EXEC_COMPUTE, KIND_EXEC_STRAGGLE, 1.0),
]

# Guaranteed first event per profile: fired at a low hit count on a
# high-traffic site so every armed run injects at least one fault.
_PROFILE_TEMPLATES: Dict[str, Dict[str, object]] = {
    "net": {
        "templates": _NET_TEMPLATES,
        "guaranteed": (SITE_NET_CALL, KIND_NET_DELAY),
    },
    "workers": {
        "templates": _WORKER_TEMPLATES,
        "guaranteed": (SITE_WORKER_TASK, KIND_WORKER_KILL),
    },
    "storage": {
        "templates": _STORAGE_TEMPLATES,
        "guaranteed": (SITE_BLOCKS_FETCH, KIND_BLOCK_DELETE),
    },
    "streaming": {
        "templates": _STREAMING_TEMPLATES,
        "guaranteed": (SITE_STREAM_CHECKPOINT, KIND_CHECKPOINT_KILL),
    },
    "mixed": {
        "templates": _NET_TEMPLATES + _WORKER_TEMPLATES + _STORAGE_TEMPLATES,
        "guaranteed": (SITE_WORKER_TASK, KIND_WORKER_KILL),
    },
    "elastic": {
        "templates": _ELASTIC_TEMPLATES,
        "guaranteed": (SITE_ELASTIC_RESIZE, KIND_WORKER_KILL),
    },
    "driver": {
        "templates": _DRIVER_TEMPLATES,
        "guaranteed": (SITE_DRIVER, KIND_DRIVER_KILL),
    },
}
assert set(_PROFILE_TEMPLATES) == set(CHAOS_PROFILES)

# Per-plan caps on kinds that burn bounded client budgets (dial retries,
# launch attempts): too many of these in one schedule would turn a
# recoverable fault into a predetermined job failure.
_KIND_CAPS = {
    KIND_DIAL_REFUSE: 2,
    KIND_NET_DROP: 2,
    KIND_NET_GARBLE: 2,
    # Each driver kill costs a full WAL recovery; two per plan keeps the
    # soak wall time bounded while still covering a double-crash.
    KIND_DRIVER_KILL: 2,
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: fire ``kind`` on hit number ``at_hit`` of ``site``."""

    event_id: int
    site: str
    kind: str
    at_hit: int
    param: float = 0.0

    def describe(self) -> str:
        extra = f" param={self.param:.3f}" if self.param else ""
        return f"#{self.event_id} {self.kind} @ {self.site} hit {self.at_hit}{extra}"


class FaultPlan:
    """A deterministic schedule of :class:`FaultEvent`\\ s."""

    def __init__(self, events: List[FaultEvent], seed: int = 0, profile: str = "mixed"):
        self.events = list(events)
        self.seed = seed
        self.profile = profile

    @staticmethod
    def generate(seed: int, profile: str = "mixed", intensity: float = 1.0) -> "FaultPlan":
        if profile not in _PROFILE_TEMPLATES:
            raise ConfigError(
                f"chaos profile must be one of {CHAOS_PROFILES}, got {profile!r}"
            )
        if intensity <= 0:
            raise ConfigError("chaos intensity must be positive")
        spec = _PROFILE_TEMPLATES[profile]
        templates: List[Tuple[str, str, float]] = spec["templates"]  # type: ignore[assignment]
        rng = random.Random(f"repro.chaos/{seed}/{profile}")

        n_events = max(1, round(6 * intensity))
        events: List[FaultEvent] = []
        taken: set = set()  # (site, at_hit) — one fault per exact hit
        kind_counts: Dict[str, int] = {}

        def _param_for(kind: str) -> float:
            if kind in (KIND_NET_DELAY, KIND_EXEC_STRAGGLE):
                # Stragglers must exceed the speculation threshold by a
                # visible margin; plain delays stay small.
                lo, hi = (0.3, 0.6) if kind == KIND_EXEC_STRAGGLE else (0.01, 0.15)
                return round(rng.uniform(lo, hi), 3)
            if kind == KIND_WORKER_HANG:
                return round(rng.uniform(0.05, 0.4), 3)
            return 0.0

        def _add(site: str, kind: str, at_hit: int) -> None:
            while (site, at_hit) in taken:
                at_hit += 1
            taken.add((site, at_hit))
            events.append(
                FaultEvent(
                    event_id=len(events),
                    site=site,
                    kind=kind,
                    at_hit=at_hit,
                    param=_param_for(kind),
                )
            )
            kind_counts[kind] = kind_counts.get(kind, 0) + 1

        g_site, g_kind = spec["guaranteed"]  # type: ignore[misc]
        _add(g_site, g_kind, rng.randint(1, 4))

        weights = [w for (_, _, w) in templates]
        while len(events) < n_events:
            site, kind, _ = rng.choices(templates, weights=weights, k=1)[0]
            cap = _KIND_CAPS.get(kind)
            if cap is not None and kind_counts.get(kind, 0) >= cap:
                continue
            # Spread hits over a window that scales with the plan size so
            # long soaks keep injecting past the first group.
            _add(site, kind, rng.randint(1, max(6, 3 * n_events)))

        events.sort(key=lambda e: (e.site, e.at_hit))
        events = [
            FaultEvent(i, e.site, e.kind, e.at_hit, e.param)
            for i, e in enumerate(events)
        ]
        return FaultPlan(events, seed=seed, profile=profile)

    def describe(self) -> str:
        head = f"FaultPlan(seed={self.seed}, profile={self.profile!r}, {len(self.events)} events)"
        return "\n".join([head] + [f"  {e.describe()}" for e in self.events])

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
