"""``python -m repro.chaos`` — soak runner and fault-plan tools.

Imported lazily from :mod:`repro.chaos.soak` because the soak runner
pulls in the whole engine, which ``repro.chaos`` itself must not (the
injection hooks in net/engine import ``repro.chaos``).
"""

import sys

from repro.chaos.soak import main

if __name__ == "__main__":
    sys.exit(main())
