"""Deterministic fault injection (see docs/robustness.md).

Import surface is deliberately small: :mod:`repro.chaos.plan` and
:mod:`repro.chaos.injector` only, so production modules (net, engine)
can import chaos hooks without cycles.  The soak runner lives in
:mod:`repro.chaos.soak` and is imported lazily by ``__main__`` because it
depends on the engine.
"""

from repro.chaos.injector import ChaosInjector, active, chaos_hit, install, uninstall
from repro.chaos.plan import FaultEvent, FaultPlan

__all__ = [
    "ChaosInjector",
    "FaultEvent",
    "FaultPlan",
    "active",
    "chaos_hit",
    "install",
    "uninstall",
]
