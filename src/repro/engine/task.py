"""Task descriptors and completion reports exchanged between driver and
workers.

A :class:`TaskDescriptor` is what the driver "serializes and launches"
(§3.1).  In pre-scheduled mode the descriptor additionally carries:

* ``deps`` — the upstream notifications the task must wait for, and
* ``downstream`` — for map tasks, which worker hosts each reduce
  partition, so completion notifications go worker-to-worker without
  driver involvement (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional, Tuple

from repro.core.prescheduling import DepKey
from repro.dag.plan import PhysicalPlan
from repro.obs.trace import SpanContext

# Identifies a map output block: (job_id, shuffle_id, map_index).
MapOutputId = Tuple[int, int, int]


@dataclass(frozen=True)
class TaskId:
    """Stable identity of a task attempt."""

    job_id: int
    stage_index: int
    partition: int
    attempt: int = 0

    def key(self) -> str:
        return f"j{self.job_id}.s{self.stage_index}.p{self.partition}"

    def __str__(self) -> str:
        return f"{self.key()}.a{self.attempt}"


@dataclass
class TaskDescriptor:
    """Everything a worker needs to run one task.

    ``plan`` is shared by reference (we are in-process); the *cost* of task
    serialization/launch is accounted separately by the transport layer
    and, at cluster scale, by the simulator's cost model.
    """

    task_id: TaskId
    plan: PhysicalPlan
    pre_scheduled: bool = False
    # Pre-scheduled reduce tasks: notifications to wait for.
    deps: FrozenSet[DepKey] = frozenset()
    # Map tasks under pre-scheduling: reduce partition -> worker to notify,
    # per output shuffle ({} when the stage has no output shuffle).
    downstream: Dict[int, str] = field(default_factory=dict)
    # Per-batch (barrier) reduce tasks: (shuffle_id, map_index) -> worker
    # holding that block, supplied by the driver after the barrier.
    map_locations: Dict[DepKey, str] = field(default_factory=dict)
    # Minimum acceptable epoch (producing attempt) per dependency: a
    # fetched block written under an older epoch is a stale leftover of a
    # superseded attempt and is treated as missing, never as data.
    map_epochs: Dict[DepKey, int] = field(default_factory=dict)
    # Trace context of the owning stage span: the driver -> worker half of
    # end-to-end trace propagation (None when tracing is disabled).
    trace_ctx: Optional[SpanContext] = None

    @property
    def stage(self):
        return self.plan.stages[self.task_id.stage_index]

    def key(self) -> str:
        return self.task_id.key()


@dataclass
class TaskReport:
    """Worker -> driver completion report."""

    task_id: TaskId
    worker_id: str
    succeeded: bool
    # Map tasks: bytes-ish size per reduce partition (record counts stand
    # in for bytes; the driver only needs relative sizes).
    output_sizes: Optional[Dict[int, int]] = None
    # Result tasks: the action output for this partition.
    result: Any = None
    error: Optional[BaseException] = None
    compute_time_s: float = 0.0
    # Context of the worker-side ``task.compute`` span: the worker ->
    # driver half of trace propagation, so the driver (and tests) can
    # stitch reports back into the batch's span tree.
    trace_ctx: Optional[SpanContext] = None
