"""Worker: executor slots + the pre-scheduling local scheduler (§3.2).

Each worker owns:

* a pool of ``slots_per_worker`` executor threads,
* a :class:`BlockStore` holding shuffle map outputs,
* a *local scheduler* — one :class:`PendingTaskTable` per job — that parks
  pre-scheduled tasks until their upstream notifications arrive, then
  activates them ("when all the data dependencies for an inactive task
  have been met, the local scheduler makes the task active and runs it").

Data flows worker-to-worker: map tasks write to their local block store
and push a metadata notification to each downstream worker; the activated
reduce task pulls the actual buckets (push-metadata, pull-data).
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.injector import chaos_hit
from repro.chaos.plan import (
    KIND_WORKER_KILL,
    SITE_EXEC_COMPUTE,
    SITE_WORKER_TASK,
)
from repro.common.clock import Clock, WallClock
from repro.common.config import EngineConf
from repro.common.errors import (
    FetchFailed,
    SerializationError,
    StaleDriverEpoch,
    WorkerLost,
)
from repro.common.metrics import (
    COUNT_HA_FENCED,
    COUNT_HA_PARKED_REPORTS,
    COUNT_NET_FETCH_BATCHES,
    COUNT_SHM_FALLBACKS,
    COUNT_SHM_HITS,
    COUNT_TELEMETRY_RECORDS,
    COUNT_TELEMETRY_TASKS,
    GAUGE_TELEMETRY_BACKLOG,
    HIST_NET_BUCKETS_PER_FETCH,
    HIST_TELEMETRY_QUEUE_DELAY,
    TELEMETRY_STAGE_LATENCY_PREFIX,
    TIME_COMPUTE,
    MetricsRegistry,
)
from repro.core.prescheduling import DepKey, PendingTaskTable
from repro.core.templates import TemplateStore
from repro.elastic.shards import shard_position
from repro.engine.blocks import BUCKET_OK, BlockStore
from repro.engine.executors import ComputeRequest, create_backend
from repro.engine.rpc import BaseTransport
from repro.engine.task import TaskDescriptor, TaskReport
from repro.obs.live import DeltaSnapshotter
from repro.obs.names import (
    SPAN_TASK_COMPUTE,
    SPAN_TASK_EXEC,
    SPAN_TASK_FETCH,
    SPAN_TASK_REPORT,
)
from repro.obs.trace import NULL_RECORDER, Recorder

DRIVER_ID = "driver"


def _ranges_add(
    owned: List[Tuple[int, int]], start: int, stop: int
) -> List[Tuple[int, int]]:
    """Union ``[start, stop)`` into a sorted, disjoint interval list."""
    merged: List[Tuple[int, int]] = []
    for s, e in sorted(owned + [(start, stop)]):
        if merged and s <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], e))
        else:
            merged.append((s, e))
    return merged


def _ranges_subtract(
    owned: List[Tuple[int, int]], start: int, stop: int
) -> List[Tuple[int, int]]:
    """Remove ``[start, stop)`` from a disjoint interval list."""
    out: List[Tuple[int, int]] = []
    for s, e in owned:
        if stop <= s or e <= start:
            out.append((s, e))
            continue
        if s < start:
            out.append((s, start))
        if stop < e:
            out.append((stop, e))
    return out


class Worker:
    """One simulated machine: executor threads, block store, local scheduler."""

    def __init__(
        self,
        worker_id: str,
        transport: BaseTransport,
        conf: EngineConf,
        metrics: MetricsRegistry,
        clock: Optional[Clock] = None,
        enable_heartbeats: Optional[bool] = None,
        tracer: Optional[Recorder] = None,
    ):
        self.worker_id = worker_id
        self.transport = transport
        self.conf = conf
        self.metrics = metrics
        self.clock = clock or WallClock()
        self.tracer = tracer if tracer is not None else NULL_RECORDER
        data_plane = conf.transport.data_plane
        self.blocks = BlockStore(
            worker_id,
            record_blocks=data_plane.record_blocks,
            shm_shuffle=data_plane.shm_shuffle,
            metrics=metrics,
        )
        # Reader half of the shm shuffle: the same process-global segment
        # registry the peers' block stores publish into (None when the
        # fast path is off or shared memory is unavailable).
        self._shm = self.blocks.shm
        self.enable_heartbeats = (
            conf.monitor.enable_heartbeats
            if enable_heartbeats is None
            else enable_heartbeats
        )

        self._backend = create_backend(conf, worker_id)
        # Lazily-created pool for concurrent multi-peer fetches — kept
        # for the worker's lifetime rather than built per fetch (pool
        # construction costs more than a small fetch itself).
        self._fetch_pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        self._pending: Dict[int, PendingTaskTable] = {}  # job_id -> table
        self._parked: Dict[Tuple[int, str], TaskDescriptor] = {}
        # (job_id, shuffle_id, map_index) -> (holder worker, epoch): which
        # worker holds the block and the producing attempt it was written
        # under (readers refuse older co-named blocks — see BlockStore).
        self._dep_locations: Dict[Tuple[int, int, int], Tuple[str, int]] = {}
        self._dead = False
        self._hb_thread: Optional[threading.Thread] = None
        self._stop_hb = threading.Event()
        # Live telemetry (repro.obs.live): a *private* registry so shipped
        # metrics attribute to this worker even when `metrics` is the
        # registry shared across the whole LocalCluster.  Deltas piggyback
        # on heartbeats when those are on; otherwise _telemetry_loop ships
        # them over the transport's uncounted plumbing path.
        self.telemetry_metrics: Optional[MetricsRegistry] = None
        self._telemetry_snap: Optional[DeltaSnapshotter] = None
        self._accepted_at: Dict[str, float] = {}
        self._tel_thread: Optional[threading.Thread] = None
        self._stop_tel = threading.Event()
        if conf.telemetry.enabled:
            self.telemetry_metrics = MetricsRegistry(self.clock)
            self._telemetry_snap = DeltaSnapshotter(
                self.telemetry_metrics, conf.telemetry.max_samples_per_delta
            )
        # Execution templates (repro.core.templates): cached group-launch
        # shapes, re-runnable via one instantiate_template message.  The
        # epoch tracks the last cluster-membership generation a template
        # arrived under, and tags PendingTaskTables built from it.
        self.templates: Optional[TemplateStore] = (
            TemplateStore(conf.templates.max_per_worker)
            if conf.templates.enabled
            else None
        )
        self._template_epoch = 0
        # Driver session-epoch fencing (repro.ha): the highest epoch seen
        # on any driver message.  A message stamped with a *lower* epoch
        # comes from a zombie — a driver believed dead whose restart
        # already claimed a newer epoch — and is refused.  0 = unfenced
        # (HA off): stamps never arrive and every message passes.
        self._adopted_epoch = 0
        # Key-range state shards hosted for the elastic migration plane
        # (repro.elastic): per store, the owned hash ranges, their merged
        # key->value contents, and the partitioning epoch they arrived
        # under.  Populated and moved only at resize boundaries.
        self._state_shards: Dict[str, Dict[str, object]] = {}
        # Extra per-record work injected by benchmarks (simulating compute).
        self.compute_delay_per_task_s = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.transport.register(self.worker_id, self)
        if self._shm is not None:
            # Join the co-location directory: shuffle metadata from peers
            # in this process is delivered by direct call (see
            # _notify_downstream) for as long as we stay registered.
            self._shm.register_peer(self.worker_id, self)
        if self.enable_heartbeats:
            self._stop_hb.clear()
            self._hb_thread = threading.Thread(
                target=self._heartbeat_loop, name=f"{self.worker_id}-hb", daemon=True
            )
            self._hb_thread.start()
        elif self._telemetry_snap is not None:
            # No heartbeats to piggyback on: ship deltas on a dedicated
            # loop over the transport's uncounted plumbing path.
            self._stop_tel.clear()
            self._tel_thread = threading.Thread(
                target=self._telemetry_loop, name=f"{self.worker_id}-tel", daemon=True
            )
            self._tel_thread.start()

    def kill(self) -> None:
        """Crash this machine: no more heartbeats, its block store is
        unreachable, in-flight tasks have no effect."""
        with self._lock:
            self._dead = True
            self._pending.clear()
            self._parked.clear()
            self._accepted_at.clear()
            self._state_shards.clear()
        if self.templates is not None:
            self.templates.invalidate_all()
        # A crashed machine's shared-memory segments must vanish with it:
        # co-located readers fall back to the wire, observe WorkerLost,
        # and §3.3 recovery proceeds exactly as without shm.  Leaving the
        # peer directory first routes in-flight notifies to the transport,
        # where they fail like any message to a dead machine.
        if self._shm is not None:
            self._shm.unregister_peer(self.worker_id)
        self.blocks.release_shm()
        self._stop_hb.set()
        self._stop_tel.set()
        if self._fetch_pool is not None:
            self._fetch_pool.shutdown(wait=False)
        self.transport.mark_dead(self.worker_id)

    def shutdown(self) -> None:
        self._stop_hb.set()
        self._stop_tel.set()
        if self._shm is not None:
            self._shm.unregister_peer(self.worker_id)
        self._backend.shutdown(wait=True)
        # Only after the backend drained: an in-flight task finishing
        # during the wait would re-publish its map output into shared
        # memory and leak the segment past the release.
        self.blocks.release_shm()
        if self._fetch_pool is not None:
            self._fetch_pool.shutdown(wait=False)

    @property
    def is_dead(self) -> bool:
        with self._lock:
            return self._dead

    def _heartbeat_loop(self) -> None:
        while not self._stop_hb.wait(self.conf.monitor.heartbeat_interval_s):
            if self.is_dead:
                return
            # Telemetry piggybacks on the heartbeat: same message count,
            # bigger payload — ±0 count.rpc_messages parity preserved.
            delta = self._telemetry_snap.delta() if self._telemetry_snap else None
            self.transport.try_call(
                DRIVER_ID, "heartbeat", self.worker_id, time.monotonic(), delta
            )

    def _telemetry_loop(self) -> None:
        while not self._stop_tel.wait(self.conf.telemetry.interval_s):
            if self.is_dead:
                return
            self.ship_telemetry()

    def ship_telemetry(self) -> bool:
        """Ship the next telemetry delta to the driver (uncounted, like
        ``__announce__``/``__ping__``).  An empty delta still ships: with
        heartbeats off, these arrivals are the driver's liveness signal."""
        if self._telemetry_snap is None or self.is_dead:
            return False
        delta = self._telemetry_snap.delta()
        return self.transport.ship_telemetry(DRIVER_ID, self.worker_id, delta)

    # ------------------------------------------------------------------
    # Driver -> worker RPCs
    # ------------------------------------------------------------------
    def _fence(self, driver_epoch: Optional[int]) -> None:
        """Adopt or refuse a driver session epoch (repro.ha fencing).

        Raises :class:`StaleDriverEpoch` when the stamp is *older* than
        one already adopted: only a restarted driver can have bumped the
        epoch, so the sender is a zombie and must not mutate this worker.
        Unstamped messages (``None`` — HA off, or plumbing) always pass."""
        if driver_epoch is None:
            return
        with self._lock:
            if driver_epoch < self._adopted_epoch:
                self.metrics.counter(COUNT_HA_FENCED).add(1)
                raise StaleDriverEpoch(driver_epoch, self._adopted_epoch)
            self._adopted_epoch = driver_epoch

    def launch_tasks(
        self,
        descriptors: List[TaskDescriptor],
        template: Optional[Tuple[str, List[int], int]] = None,
        driver_epoch: Optional[int] = None,
    ) -> None:
        """Receive a batch of tasks in one message.  Under group scheduling
        this batch spans every micro-batch in the group (§3.1).

        ``template`` — optional ``(template_id, batch_ids, epoch)`` from a
        template-eligible group launch: cache this batch as an execution
        template so the next launch of the same shape can arrive as
        :meth:`instantiate_template` instead of a full payload."""
        self._fence(driver_epoch)
        if template is not None and self.templates is not None:
            template_id, batch_ids, epoch = template
            if self.templates.install(template_id, epoch, descriptors, batch_ids):
                self._template_epoch = max(self._template_epoch, epoch)
        for desc in descriptors:
            self._accept(desc)

    def instantiate_template(
        self,
        template_id: str,
        batch_ids: List[int],
        epoch: int,
        driver_epoch: Optional[int] = None,
    ) -> bool:
        """Re-run a cached execution template with fresh batch (job) ids —
        the steady-state group launch.  Returns False when the template is
        absent, stale (older membership epoch), or shaped for a different
        group size; the transport surfaces that as ``template_miss`` and
        the driver falls back to a full launch."""
        self._fence(driver_epoch)
        if self.templates is None:
            return False
        descriptors = self.templates.instantiate(template_id, batch_ids, epoch)
        if descriptors is None:
            return False
        for desc in descriptors:
            self._accept(desc)
        return True

    def _accept(self, desc: TaskDescriptor) -> None:
        with self._lock:
            if self._dead:
                return
            self._tel_note_accept(str(desc.task_id))
            if desc.pre_scheduled and desc.deps:
                job_id = desc.task_id.job_id
                table = self._pending.setdefault(job_id, PendingTaskTable(self._template_epoch))
                # Key by attempt so a recovery resubmission of the same
                # task registers cleanly alongside its dead predecessor.
                key = str(desc.task_id)
                ready = table.register(key, desc.deps)
                if not ready:
                    self._parked[(job_id, key)] = desc
                    self._tel_note_backlog()
                    return
                # All deps were already satisfied by early notifications.
        self._backend.submit(self._run_task, desc)

    def _tel_note_accept(self, key: str) -> None:
        """Stamp a task's accept time for the queueing-delay signal.
        Caller holds ``self._lock``.  The map is soft-capped: a driver
        that cancels huge jobs wholesale could otherwise strand stamps."""
        if self.telemetry_metrics is None:
            return
        if len(self._accepted_at) > 8192:
            self._accepted_at.clear()
        self._accepted_at[key] = self.clock.now()

    def _tel_note_backlog(self) -> None:
        """Refresh the parked-task backlog gauge.  Caller holds ``self._lock``."""
        if self.telemetry_metrics is not None:
            self.telemetry_metrics.gauge(GAUGE_TELEMETRY_BACKLOG).set(
                len(self._parked)
            )

    def pre_populate(
        self,
        job_id: int,
        completed: List[Tuple],
        driver_epoch: Optional[int] = None,
    ) -> None:
        """Driver-supplied already-completed dependencies with their block
        locations (§3.3 recovery onto a new machine).  Entries are
        ``((shuffle_id, map_index), location)`` or, with the producing
        attempt included, ``((shuffle_id, map_index), location, epoch)``."""
        self._fence(driver_epoch)
        to_run: List[TaskDescriptor] = []
        with self._lock:
            if self._dead:
                return
            table = self._pending.setdefault(job_id, PendingTaskTable(self._template_epoch))
            for entry in completed:
                (shuffle_id, map_index), location = entry[0], entry[1]
                epoch = entry[2] if len(entry) > 2 else 0
                self._dep_locations[(job_id, shuffle_id, map_index)] = (
                    location,
                    epoch,
                )
                for key in table.notify((shuffle_id, map_index)):
                    desc = self._parked.pop((job_id, key), None)
                    if desc is not None:
                        to_run.append(desc)
            if to_run:
                self._tel_note_backlog()
        for desc in to_run:
            self._backend.submit(self._run_task, desc)

    def cancel_job(self, job_id: int, driver_epoch: Optional[int] = None) -> None:
        self._fence(driver_epoch)
        with self._lock:
            self._pending.pop(job_id, None)
            doomed = [k for k in self._parked if k[0] == job_id]
            for k in doomed:
                del self._parked[k]
            if doomed:
                self._tel_note_backlog()

    def drop_job(self, job_id: int, driver_epoch: Optional[int] = None) -> None:
        self._fence(driver_epoch)
        self.blocks.drop_job(job_id)
        with self._lock:
            self._dep_locations = {
                k: v for k, v in self._dep_locations.items() if k[0] != job_id
            }

    # ------------------------------------------------------------------
    # Worker -> worker RPCs
    # ------------------------------------------------------------------
    def notify_output(
        self,
        job_id: int,
        shuffle_id: int,
        map_index: int,
        src_worker: str,
        epoch: int = 0,
    ) -> None:
        """An upstream map task finished; wake any now-ready local task.
        ``epoch`` is the producing attempt — readers use it as the minimum
        epoch a served block must carry (stale co-named blocks miss)."""
        to_run: List[TaskDescriptor] = []
        with self._lock:
            if self._dead:
                return
            self._dep_locations[(job_id, shuffle_id, map_index)] = (
                src_worker,
                epoch,
            )
            table = self._pending.setdefault(job_id, PendingTaskTable(self._template_epoch))
            for key in table.notify((shuffle_id, map_index)):
                desc = self._parked.pop((job_id, key), None)
                if desc is not None:
                    to_run.append(desc)
            if to_run:
                self._tel_note_backlog()
        for desc in to_run:
            self._backend.submit(self._run_task, desc)

    def fetch_bucket(
        self, job_id: int, shuffle_id: int, map_index: int, reduce_index: int
    ) -> List:
        """Serve a shuffle bucket to a peer (pull-based data plane)."""
        if self.is_dead:
            raise WorkerLost(self.worker_id, "fetch from dead worker")
        return self.blocks.get_bucket(job_id, shuffle_id, map_index, reduce_index)

    def fetch_buckets(
        self, job_id: int, requests: Sequence[Tuple]
    ) -> List[Tuple[str, Optional[List]]]:
        """Serve every bucket a reduce task needs from this worker in one
        round trip: ``requests`` is ``[(shuffle_id, map_index,
        reduce_index[, min_epoch]), ...]`` and the reply carries one
        ``("ok", bucket)`` or ``("missing", None)`` per request, in order
        — partial failure stays per map output, so the caller raises
        :class:`FetchFailed` for exactly the absent blocks (§3.3 recovery
        unchanged).  A block held at an older epoch than a request's
        ``min_epoch`` is served as missing: a re-run stage must never be
        handed a stale co-named bucket."""
        if self.is_dead:
            raise WorkerLost(self.worker_id, "fetch from dead worker")
        return self.blocks.get_buckets(job_id, requests)

    def has_map_output(
        self, job_id: int, shuffle_id: int, map_index: int, min_epoch: int = 0
    ) -> bool:
        return not self.is_dead and self.blocks.has_map_output(
            job_id, shuffle_id, map_index, min_epoch
        )

    # ------------------------------------------------------------------
    # Key-range state shards (repro.elastic migration plane)
    # ------------------------------------------------------------------
    def install_state_shards(
        self,
        store: str,
        epoch: int,
        shards: List[Tuple[Tuple[int, int], Dict]],
        deleted: Optional[List] = None,
    ) -> bool:
        """Accept ownership of key-range shards: ``shards`` is
        ``[((start, stop), {key: value}), ...]``.  Idempotent — a
        duplicate install of the same ranges at the same epoch overwrites
        with identical contents, so the migration executor may retry
        freely until it sees the ack.  Installs from an *older* epoch
        than one already seen for the store are refused (a straggling
        duplicate of a superseded migration must not resurrect state)."""
        if self.is_dead:
            raise WorkerLost(self.worker_id, "install on dead worker")
        with self._lock:
            host = self._state_shards.setdefault(
                store, {"ranges": [], "data": {}, "epoch": epoch}
            )
            if epoch < host["epoch"]:  # type: ignore[operator]
                return False
            host["epoch"] = epoch
            data: Dict = host["data"]  # type: ignore[assignment]
            for bounds, payload in shards:
                start, stop = int(bounds[0]), int(bounds[1])
                # Re-install of an overlapping range: clear the slice
                # first so the payload is authoritative for it.
                for key in [k for k in data if start <= shard_position(k) < stop]:
                    del data[key]
                data.update(payload)
                host["ranges"] = _ranges_add(host["ranges"], start, stop)  # type: ignore[arg-type]
            for key in deleted or []:
                data.pop(key, None)
        return True

    def extract_state_shards(
        self, store: str, ranges: List[Tuple[int, int]]
    ) -> List[Tuple[Tuple[int, int], Dict]]:
        """Serve the held contents of ``ranges`` to the driver for a
        migration.  The shards stay installed — the source retains them
        until :meth:`release_state_shards` arrives after the destination
        acked (abort safety)."""
        if self.is_dead:
            raise WorkerLost(self.worker_id, "extract from dead worker")
        with self._lock:
            host = self._state_shards.get(store)
            data: Dict = host["data"] if host else {}  # type: ignore[assignment]
            out = []
            for bounds in ranges:
                start, stop = int(bounds[0]), int(bounds[1])
                out.append(
                    (
                        (start, stop),
                        {
                            k: v
                            for k, v in data.items()
                            if start <= shard_position(k) < stop
                        },
                    )
                )
        return out

    def release_state_shards(self, store: str, ranges: List[Tuple[int, int]]) -> bool:
        """Drop ownership of ``ranges`` after the destination acked."""
        if self.is_dead:
            raise WorkerLost(self.worker_id, "release on dead worker")
        with self._lock:
            host = self._state_shards.get(store)
            if host is None:
                return True
            data: Dict = host["data"]  # type: ignore[assignment]
            for bounds in ranges:
                start, stop = int(bounds[0]), int(bounds[1])
                for key in [k for k in data if start <= shard_position(k) < stop]:
                    del data[key]
                host["ranges"] = _ranges_subtract(host["ranges"], start, stop)  # type: ignore[arg-type]
        return True

    def held_state_shards(self) -> Dict[str, Dict[str, object]]:
        """Summary of hosted shards (tests and ``obs top`` drill-down):
        ``{store: {"ranges": [(start, stop), ...], "keys": n, "epoch": e}}``."""
        if self.is_dead:
            raise WorkerLost(self.worker_id, "dead worker")
        with self._lock:
            return {
                store: {
                    "ranges": sorted(host["ranges"]),  # type: ignore[arg-type]
                    "keys": len(host["data"]),  # type: ignore[arg-type]
                    "epoch": host["epoch"],
                }
                for store, host in self._state_shards.items()
            }

    def state_shard_items(self, store: str) -> List:
        """Full (key, value) contents hosted for ``store`` — the
        verification surface the equivalence tests gather."""
        if self.is_dead:
            raise WorkerLost(self.worker_id, "dead worker")
        with self._lock:
            host = self._state_shards.get(store)
            return list(host["data"].items()) if host else []  # type: ignore[union-attr]

    # ------------------------------------------------------------------
    # Task execution
    # ------------------------------------------------------------------
    def _run_task(self, desc: TaskDescriptor) -> None:
        if self.is_dead:
            return
        fault = chaos_hit(
            SITE_WORKER_TASK, target=self.worker_id, method=str(desc.task_id)
        )
        if fault is not None:
            if fault.kind == KIND_WORKER_KILL:
                # Crash at task entry: the driver learns via missed
                # heartbeats / refused calls, exactly like a real loss.
                self.kill()
                return
            # KIND_WORKER_HANG: stall, then proceed — long enough to look
            # stuck (heartbeats keep flowing; only the task is late).
            time.sleep(fault.param)
            if self.is_dead:
                return
        started = self.clock.now()
        tel = self.telemetry_metrics
        if tel is not None:
            with self._lock:
                accepted = self._accepted_at.pop(str(desc.task_id), None)
            if accepted is not None:
                tel.histogram(HIST_TELEMETRY_QUEUE_DELAY).record(
                    max(started - accepted, 0.0)
                )
        # Parent the compute span to the stage context carried by the
        # descriptor, so worker-side work lands in the batch's trace tree.
        span = self.tracer.start_span(
            SPAN_TASK_COMPUTE,
            parent=desc.trace_ctx,
            actor=self.worker_id,
            start_s=started,
            task=str(desc.task_id),
            stage=desc.task_id.stage_index,
            partition=desc.task_id.partition,
        )
        try:
            with self.tracer.activate(span.context):
                report = self._execute(desc)
        except (FetchFailed, WorkerLost) as err:
            fetch = (
                err
                if isinstance(err, FetchFailed)
                else FetchFailed(-1, -1, err.worker_id)
            )
            report = TaskReport(
                task_id=desc.task_id,
                worker_id=self.worker_id,
                succeeded=False,
                error=fetch,
            )
        except Exception as err:  # noqa: BLE001 - user code may raise anything
            report = TaskReport(
                task_id=desc.task_id,
                worker_id=self.worker_id,
                succeeded=False,
                error=err,
            )
        report.compute_time_s = self.clock.now() - started
        self.metrics.counter(TIME_COMPUTE).add(report.compute_time_s)
        if tel is not None:
            tel.counter(COUNT_TELEMETRY_TASKS).add(1)
            tel.histogram(
                f"{TELEMETRY_STAGE_LATENCY_PREFIX}.{desc.task_id.stage_index}"
            ).record(report.compute_time_s)
            if report.output_sizes:
                tel.counter(COUNT_TELEMETRY_RECORDS).add(
                    sum(report.output_sizes.values())
                )
            elif isinstance(report.result, (list, tuple, dict)):
                tel.counter(COUNT_TELEMETRY_RECORDS).add(len(report.result))
        if not report.succeeded:
            span.annotate(error=repr(report.error))
        # Same window as the TIME_COMPUTE counter add (exact agreement).
        span.end(started + report.compute_time_s)
        report.trace_ctx = span.context
        if self.is_dead:
            return  # crashed mid-task: effects are discarded
        report_start = self.clock.now()
        self._send_report(report)
        if self.tracer.enabled:
            self.tracer.record_span(
                SPAN_TASK_REPORT,
                report_start,
                self.clock.now(),
                parent=span,
                actor=self.worker_id,
                task=str(desc.task_id),
            )

    def _send_report(self, report: TaskReport) -> None:
        """Deliver a completion report to the driver.

        Over the tcp transport the report is pickled onto the wire; a
        result or error user code produced may not survive that.  Rather
        than hanging the job (the driver would wait forever), resend a
        stripped report whose error names the offending payload.

        Transient delivery failures (a dropped frame, a reset) are retried
        a few times: losing a report silently wedges the stage until the
        driver's deadline fires, so the worker spends a little effort
        before giving up.  Reports are idempotent driver-side, so a
        duplicate from a retry racing a slow first delivery is safe.

        When every quick attempt fails the driver itself may be down (the
        crash-restart window, repro.ha): the report is *parked* and
        retried with jittered backoff for a bounded window rather than
        discarded, so a driver that restarts quickly receives completed
        work instead of re-running it.  The window is short — a worker
        must never wedge its executor thread (or ``shutdown(wait=True)``)
        behind a driver that stays dead; past it, lineage re-execution
        covers the loss exactly as before."""
        shm = self.blocks.shm
        if shm is not None and not self.is_dead:
            peer = shm.peer(DRIVER_ID)
            if peer is not None:
                # Co-located driver (shm peer directory): hand the report
                # over by direct call — no serde, no wire, and nothing to
                # strip (a result that cannot be pickled is fine when it
                # never crosses a process boundary, exactly as on the
                # inproc transport).
                peer.task_finished(report)  # type: ignore[attr-defined]
                return
        for attempt in range(3):
            if self.is_dead:
                return
            try:
                if self.transport.try_call(DRIVER_ID, "task_finished", report):
                    return
            except SerializationError as err:
                report = TaskReport(
                    task_id=report.task_id,
                    worker_id=self.worker_id,
                    succeeded=False,
                    error=err,
                    compute_time_s=report.compute_time_s,
                    trace_ctx=report.trace_ctx,
                )
                continue  # the stripped report is picklable; retry with it
            time.sleep(0.02 * (attempt + 1))
        self._park_report(report)

    def _park_report(self, report: TaskReport) -> None:
        """Bounded jittered redelivery of a report the driver never took."""
        self.metrics.counter(COUNT_HA_PARKED_REPORTS).add(1)
        deadline = time.monotonic() + 1.5
        delay = 0.05
        while time.monotonic() < deadline:
            if self.is_dead:
                return
            # Jitter in [0.5, 1.5)x: parked workers must not stampede a
            # freshly rebound driver listener in lockstep.
            time.sleep(delay * (0.5 + random.random()))
            try:
                if self.transport.try_call(DRIVER_ID, "task_finished", report):
                    return
            except SerializationError:
                return  # already stripped once; nothing further to shed
            delay = min(delay * 2, 0.4)

    def _execute(self, desc: TaskDescriptor) -> TaskReport:
        """Run one task attempt, split into the backend-facing protocol:
        transport-side input fetch (parent process), the pure compute core
        (delegated to the executor backend), then transport-side output
        publication and reporting."""
        stage = desc.stage
        job_id = desc.task_id.job_id
        partition = desc.task_id.partition

        fetched = None
        if stage.source_fn is None:
            fetched = self._fetch_inputs(desc)

        request = ComputeRequest(
            job_id=job_id,
            stage=stage,
            partition=partition,
            fetched=fetched,
            compute_delay_s=self.compute_delay_per_task_s,
            trace_ctx=self.tracer.current() if self.tracer.enabled else None,
        )
        straggle = chaos_hit(
            SITE_EXEC_COMPUTE, target=self.worker_id, method=str(desc.task_id)
        )
        if straggle is not None:
            # KIND_EXEC_STRAGGLE: this one attempt computes slowly —
            # slow enough to trip the speculation monitor (§3.5), which
            # should clone the task elsewhere and take the fast copy.
            time.sleep(straggle.param)
        exec_start = self.clock.now()
        outcome = self._backend.run_compute(request)
        if self.tracer.enabled and outcome.backend == "process":
            # The context crossed the process boundary inside the payload
            # and came back with the outcome (Envelope-style): parent the
            # exec span to it so child-side work lands in the batch tree.
            self.tracer.record_span(
                SPAN_TASK_EXEC,
                exec_start,
                self.clock.now(),
                parent=outcome.trace_ctx,
                actor=self.worker_id,
                task=str(desc.task_id),
                backend=outcome.backend,
                child_compute_s=outcome.elapsed_s,
            )

        if outcome.kind == "map":
            assert stage.output_shuffle is not None
            spec = stage.output_shuffle
            buckets = outcome.buckets or {}
            if self.is_dead:
                raise WorkerLost(self.worker_id, "died mid-task")
            # The block carries its producing attempt as an epoch, so a
            # consumer requiring a newer re-run can never be served this
            # one by name collision.
            epoch = desc.task_id.attempt
            self.blocks.put_map_output(
                job_id, spec.shuffle_id, partition, buckets, epoch=epoch
            )
            self._notify_downstream(desc, spec.shuffle_id, partition, epoch)
            sizes = {r: len(v) for r, v in buckets.items()}
            return TaskReport(
                task_id=desc.task_id,
                worker_id=self.worker_id,
                succeeded=True,
                output_sizes=sizes,
            )

        return TaskReport(
            task_id=desc.task_id,
            worker_id=self.worker_id,
            succeeded=True,
            result=outcome.result,
        )

    def _notify_downstream(
        self, desc: TaskDescriptor, shuffle_id: int, map_index: int, epoch: int = 0
    ) -> None:
        """Push metadata directly to downstream workers (pre-scheduling),
        one message per distinct worker."""
        if not desc.downstream:
            return
        job_id = desc.task_id.job_id
        shm = self.blocks.shm
        for target in sorted(set(desc.downstream.values())):
            if target == self.worker_id:
                self.notify_output(
                    job_id, shuffle_id, map_index, self.worker_id, epoch
                )
            else:
                if shm is not None:
                    # Co-location short-circuit: the peer will read the
                    # block straight out of shared memory, so the metadata
                    # that wakes it need not cross the wire either.  A
                    # dead or remote peer is not in the directory and
                    # falls through to the transport path below.
                    peer = shm.peer(target)
                    if peer is not None and not peer.is_dead:  # type: ignore[attr-defined]
                        peer.notify_output(  # type: ignore[attr-defined]
                            job_id, shuffle_id, map_index, self.worker_id, epoch
                        )
                        continue
                delivered = self.transport.try_call(
                    target,
                    "notify_output",
                    job_id,
                    shuffle_id,
                    map_index,
                    self.worker_id,
                    epoch,
                )
                if not delivered:
                    # §3.3: forward send failures to the centralized
                    # scheduler, the single source workers rely on.
                    self.transport.try_call(
                        DRIVER_ID,
                        "notify_delivery_failed",
                        job_id,
                        shuffle_id,
                        map_index,
                        self.worker_id,
                        target,
                    )

    def _fetch_inputs(self, desc: TaskDescriptor) -> List[List[List]]:
        """Pull every input bucket this task needs.

        Returns ``fetched[input_shuffle_index] = [bucket, ...]`` in map
        order.  The fast path batches: each needed ``(shuffle_id,
        map_index)`` is looked up once even when several input shuffles
        reference it, locally held blocks are read from the own
        :class:`BlockStore` without consulting any location table, and
        every remote peer is asked for *all* its buckets in a single
        ``fetch_buckets`` round trip — peers in parallel, bounded by
        ``DataPlaneConf.max_concurrent_fetches``.

        Location resolution order for remote blocks: explicit
        ``map_locations`` from the driver (barrier mode) then locations
        learned from notifications (pre-scheduled mode)."""
        stage = desc.stage
        job_id = desc.task_id.job_id
        partition = desc.task_id.partition
        fetch_start = self.clock.now()
        # Dedupe: needed (shuffle_id, map_index) pairs in first-seen order.
        per_spec: List[List[DepKey]] = []
        order: List[DepKey] = []
        seen: set = set()
        for spec in stage.input_shuffles:
            deps = [
                (spec.shuffle_id, map_index)
                for map_index in spec.map_indices_for_reducer(partition)
            ]
            per_spec.append(deps)
            for dep in deps:
                if dep not in seen:
                    seen.add(dep)
                    order.append(dep)
        # Partition into local reads and per-peer remote batches.  A
        # co-located block is served from the own store even when the
        # location tables are stale or silent about it — provided it was
        # written at (or after) the epoch the block's producer announced:
        # an older co-named block belongs to a superseded attempt and is
        # treated as absent (fetched from the authoritative holder
        # instead, or reported FetchFailed if that holder lost it too).
        local: List[DepKey] = []
        by_peer: Dict[str, List[DepKey]] = {}
        min_epochs: Dict[DepKey, int] = {}
        for shuffle_id, map_index in order:
            dep = (shuffle_id, map_index)
            location = desc.map_locations.get(dep)
            min_epoch = desc.map_epochs.get(dep, 0)
            with self._lock:
                learned = self._dep_locations.get((job_id, shuffle_id, map_index))
            if learned is not None:
                learned_loc, learned_epoch = learned
                min_epoch = max(min_epoch, learned_epoch)
                if location is None:
                    location = learned_loc
            min_epochs[dep] = min_epoch
            if self.blocks.has_map_output(job_id, shuffle_id, map_index, min_epoch):
                local.append(dep)
                continue
            if location is None:
                raise FetchFailed(shuffle_id, map_index, "<unknown>")
            if location == self.worker_id:
                local.append(dep)
            else:
                by_peer.setdefault(location, []).append(dep)
        buckets: Dict[DepKey, List] = {}
        for shuffle_id, map_index in local:
            buckets[(shuffle_id, map_index)] = self.blocks.get_bucket(
                job_id,
                shuffle_id,
                map_index,
                partition,
                min_epochs[(shuffle_id, map_index)],
            )
        shm_hits = 0
        if by_peer and self._shm is not None:
            # Shared-memory fast path: a peer whose segment registry entry
            # is visible from this process is co-located by construction —
            # read the bucket straight out of the mapped segment and skip
            # the fetch RPC.  Any miss (not co-located, dropped block,
            # stale epoch) falls through to the ordinary wire fetch.
            for peer in list(by_peer):
                still_remote: List[DepKey] = []
                for dep in by_peer[peer]:
                    shuffle_id, map_index = dep
                    block = self._shm.read_bucket(
                        peer,
                        job_id,
                        shuffle_id,
                        map_index,
                        partition,
                        min_epochs[dep],
                    )
                    if block is None:
                        still_remote.append(dep)
                    else:
                        buckets[dep] = block
                        shm_hits += 1
                if still_remote:
                    self.metrics.counter(COUNT_SHM_FALLBACKS).add(len(still_remote))
                    by_peer[peer] = still_remote
                else:
                    del by_peer[peer]
            if shm_hits:
                self.metrics.counter(COUNT_SHM_HITS).add(shm_hits)
        if by_peer:
            for peer_buckets in self._fetch_remote(
                job_id, partition, by_peer, min_epochs
            ):
                buckets.update(peer_buckets)
        # Reassemble in input-shuffle/map order.  A bucket consumed by
        # more than one input shuffle is copied after its first use:
        # merge functions may consume or mutate the streams they get.
        fetched: List[List[List]] = []
        used: set = set()
        for deps in per_spec:
            streams: List[List] = []
            for dep in deps:
                bucket = buckets[dep]
                streams.append(list(bucket) if dep in used else bucket)
                used.add(dep)
            fetched.append(streams)
        if self.tracer.enabled:
            # Parent defaults to the active task.compute context.
            self.tracer.record_span(
                SPAN_TASK_FETCH,
                fetch_start,
                self.clock.now(),
                actor=self.worker_id,
                task=str(desc.task_id),
                buckets=len(order),
                local=len(local),
                peers=len(by_peer),
            )
        return fetched

    def _fetch_remote(
        self,
        job_id: int,
        partition: int,
        by_peer: Dict[str, List[DepKey]],
        min_epochs: Optional[Dict[DepKey, int]] = None,
    ) -> List[Dict[DepKey, List]]:
        """Issue one ``fetch_buckets`` call per peer, concurrently when
        there are several peers (bounded)."""
        max_conc = self.conf.transport.data_plane.max_concurrent_fetches
        peers = list(by_peer)
        if len(peers) == 1 or max_conc <= 1:
            return [
                self._fetch_from_peer(
                    job_id, partition, peer, by_peer[peer], min_epochs
                )
                for peer in peers
            ]
        results: List[Dict[DepKey, List]] = []
        first_err: Optional[BaseException] = None
        pool = self._fetch_pool
        if pool is None:
            pool = self._fetch_pool = ThreadPoolExecutor(
                max_workers=max_conc,
                thread_name_prefix=f"{self.worker_id}-fetch",
            )
        try:
            futures = [
                pool.submit(
                    self._fetch_from_peer,
                    job_id,
                    partition,
                    peer,
                    by_peer[peer],
                    min_epochs,
                )
                for peer in peers
            ]
        except RuntimeError:  # pool shut down mid-teardown: go sequential
            return [
                self._fetch_from_peer(
                    job_id, partition, peer, by_peer[peer], min_epochs
                )
                for peer in peers
            ]
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as err:  # noqa: BLE001 - surface the first
                if first_err is None:
                    first_err = err
        if first_err is not None:
            raise first_err
        return results

    def _fetch_from_peer(
        self,
        job_id: int,
        partition: int,
        peer: str,
        deps: List[DepKey],
        min_epochs: Optional[Dict[DepKey, int]] = None,
    ) -> Dict[DepKey, List]:
        """All buckets this task needs from one peer, one round trip.
        Each request names the minimum epoch an acceptable block must
        carry, so the peer reports a stale co-named block as missing."""
        min_epochs = min_epochs or {}
        requests = [
            (shuffle_id, map_index, partition, min_epochs.get((shuffle_id, map_index), 0))
            for shuffle_id, map_index in deps
        ]
        self.metrics.counter(COUNT_NET_FETCH_BATCHES).add(1)
        self.metrics.histogram(HIST_NET_BUCKETS_PER_FETCH).record(len(requests))
        try:
            replies = self.transport.call(peer, "fetch_buckets", job_id, requests)
        except WorkerLost as err:
            raise FetchFailed(deps[0][0], deps[0][1], err.worker_id) from err
        out: Dict[DepKey, List] = {}
        for (shuffle_id, map_index), (status, bucket) in zip(deps, replies):
            if status != BUCKET_OK:
                raise FetchFailed(shuffle_id, map_index, peer)
            out[(shuffle_id, map_index)] = bucket
        return out
