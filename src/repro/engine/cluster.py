"""LocalCluster: driver + N workers wired through one transport.

This is the real (threaded) execution substrate — every task genuinely
runs user Python code, shuffles move real records between worker block
stores, and failures are injected by crashing worker objects.  Use it for
correctness, API examples, and fault-injection tests; use
:mod:`repro.sim` when you need 128-machine scaling behaviour.
"""

from __future__ import annotations

import tempfile
import threading
import warnings
from typing import Any, List, Optional, Sequence

from repro.chaos.injector import ChaosInjector, install, uninstall
from repro.chaos.plan import FaultPlan
from repro.common.clock import Clock, WallClock
from repro.common.config import EngineConf
from repro.common.metrics import MetricsRegistry
from repro.dag.dataset import Dataset
from repro.dag.plan import Action, PhysicalPlan, collect_action, compile_plan
from repro.engine.driver import Driver
from repro.engine.rpc import BaseTransport, Transport
from repro.engine.worker import Worker
from repro.ha.journal import ControlJournal, RecoveredState
from repro.obs.export import write_jsonl, write_perfetto
from repro.obs.live import ClusterTelemetry
from repro.obs.trace import NULL_RECORDER, Recorder, TraceRecorder


class LocalCluster:
    """An in-process cluster.  Context-manager friendly:

    >>> from repro.common.config import EngineConf
    >>> from repro.dag.dataset import parallelize
    >>> with LocalCluster(EngineConf(num_workers=2)) as cluster:
    ...     data = parallelize(range(10), num_partitions=4)
    ...     cluster.collect(data.map(lambda x: x * 2))
    [0, 8, 16, 2, 10, 18, 4, 12, 6, 14]
    """

    def __init__(
        self,
        conf: Optional[EngineConf] = None,
        clock: Optional[Clock] = None,
        enable_heartbeats: Optional[bool] = None,
        rpc_latency_s: Optional[float] = None,
    ):
        self.conf = conf or EngineConf()
        # Deprecated kwargs, folded into the conf for one release.
        if enable_heartbeats is not None:
            warnings.warn(
                "LocalCluster(enable_heartbeats=...) is deprecated; use "
                "EngineConf(monitor=MonitorConf(enable_heartbeats=...))",
                DeprecationWarning,
                stacklevel=2,
            )
            self.conf.monitor.enable_heartbeats = bool(enable_heartbeats)
        if rpc_latency_s is not None:
            warnings.warn(
                "LocalCluster(rpc_latency_s=...) is deprecated; use "
                "EngineConf(transport=TransportConf(rpc_latency_s=...))",
                DeprecationWarning,
                stacklevel=2,
            )
            self.conf.transport.rpc_latency_s = rpc_latency_s
        self.conf.validate()
        self.clock = clock or WallClock()
        self.metrics = MetricsRegistry(self.clock)
        self.tracer: Recorder = (
            TraceRecorder(clock=self.clock, max_events=self.conf.tracing.max_events)
            if self.conf.tracing.enabled
            else NULL_RECORDER
        )
        # In tcp mode the driver's transport is the discovery hub; each
        # worker gets its own transport that knows nothing but the hub's
        # socket address (see docs/networking.md).  In inproc mode one
        # shared Transport routes everything.
        self.transport = self._make_transport(name="driver")
        self._transports: List[BaseTransport] = [self.transport]
        self.driver = Driver(
            self.transport, self.conf, self.metrics, self.clock, tracer=self.tracer
        )
        # Live telemetry store (repro.obs.live): armed before workers so
        # the first shipped delta already has somewhere to land.  With
        # heartbeats off, arrivals come from the workers' telemetry loops;
        # staleness then tracks that cadence instead of the hb timeout.
        self.telemetry: Optional[ClusterTelemetry] = None
        if self.conf.telemetry.enabled:
            stale_after = (
                self.conf.monitor.heartbeat_timeout_s
                if self.conf.monitor.enable_heartbeats
                else max(4 * self.conf.telemetry.interval_s, 0.2)
            )
            self.telemetry = ClusterTelemetry(
                self.conf.telemetry,
                clock=self.clock,
                driver_metrics=self.metrics,
                tracer=self.tracer,
                stale_after_s=stale_after,
            )
            self.driver.telemetry = self.telemetry
        # Control-plane WAL (repro.ha): opened before any worker joins so
        # the first membership record already lands in the journal, and a
        # session epoch is claimed durably before any fenced message goes
        # out.  ``recovered_state`` is what the *previous* incarnation's
        # journal said the world looked like — LocalCluster.recover and
        # the streaming context read it to resume.
        self.journal: Optional[ControlJournal] = None
        self.recovered_state: Optional[RecoveredState] = None
        if self.conf.ha.enabled:
            wal_dir = self.conf.ha.wal_dir or tempfile.mkdtemp(prefix="repro-wal-")
            self.journal = ControlJournal(
                wal_dir,
                fsync_every_n=self.conf.ha.fsync_every_n,
                snapshot_every_n_groups=self.conf.ha.snapshot_every_n_groups,
                metrics=self.metrics,
            )
            self.recovered_state = self.journal.recovered
            self.driver.journal = self.journal
            self.driver.session_epoch = self.journal.open_session()
        self.workers: dict[str, Worker] = {}
        self._worker_seq = 0
        self._lock = threading.Lock()
        for _ in range(self.conf.num_workers):
            self.add_worker()
        if self.conf.monitor.enable_heartbeats:
            self.driver.start_monitor()
        if self.conf.speculation.enabled:
            self.driver.start_speculation()
        # Arm chaos last, after every worker has announced: discovery
        # traffic is plumbing, not a §3.3 failure mode worth injecting on.
        self.chaos: Optional[ChaosInjector] = None
        if self.conf.chaos.enabled:
            plan = FaultPlan.generate(
                self.conf.chaos.seed,
                self.conf.chaos.profile,
                self.conf.chaos.intensity,
            )
            # Never let the plan take the last machine — and never kill at
            # all when no failure detector is running: a dead worker that
            # nothing can notice wedges the engine by design, not by bug.
            kill_budget = min(
                self.conf.chaos.max_worker_kills,
                max(self.conf.num_workers - 1, 0),
            )
            if not self.conf.monitor.enable_heartbeats:
                kill_budget = 0
            self.chaos = ChaosInjector(
                plan,
                metrics=self.metrics,
                tracer=self.tracer,
                kill_budget=kill_budget,
                telemetry=self.telemetry,
            )
            install(self.chaos)

    @classmethod
    def recover(
        cls,
        wal_dir: str,
        conf: Optional[EngineConf] = None,
        clock: Optional[Clock] = None,
    ) -> "LocalCluster":
        """Restart a crashed driver from its control-plane WAL.

        Builds a fresh cluster against the journal in ``wal_dir``: the
        :class:`ControlJournal` constructor replays snapshot + tail, the
        new session claims the next (fenced) epoch, and the folded prior
        world is exposed as ``recovered_state`` for the caller — e.g.
        ``StreamingContext.restore_from_recovery`` — to resume from the
        last committed group.  Workers re-announce through the hub as they
        start, exactly as on first boot; uncommitted groups re-execute via
        ordinary §3.3 lineage recovery."""
        conf = conf or EngineConf()
        conf.ha.enabled = True
        conf.ha.wal_dir = wal_dir
        return cls(conf, clock=clock)

    def _make_transport(self, name: str) -> BaseTransport:
        if self.conf.transport.backend == "tcp":
            # Imported here, not at module top: repro.net.transport needs
            # repro.engine.rpc, so a top-level import would be circular
            # for anyone importing repro.net first.
            from repro.net.transport import TcpTransport

            hub_addr = None if name == "driver" else self.transport.address
            return TcpTransport(
                self.metrics,
                latency_s=self.conf.transport.rpc_latency_s,
                clock=self.clock,
                tracer=self.tracer,
                conf=self.conf.transport,
                hub_addr=hub_addr,
                name=name,
            )
        if name == "driver":
            return Transport(
                self.metrics,
                latency_s=self.conf.transport.rpc_latency_s,
                clock=self.clock,
                tracer=self.tracer,
            )
        return self.transport  # inproc: everyone shares the driver's router

    # ------------------------------------------------------------------
    # Membership / failure injection
    # ------------------------------------------------------------------
    def add_worker(self) -> str:
        """Elastically add a machine; it participates from the next
        scheduling round (group boundary) onwards."""
        with self._lock:
            worker_id = f"worker-{self._worker_seq}"
            self._worker_seq += 1
            transport = self._make_transport(name=worker_id)
            if transport is not self.transport:
                self._transports.append(transport)
            worker = Worker(
                worker_id,
                transport,
                self.conf,
                self.metrics,
                self.clock,
                tracer=self.tracer,
            )
            self.workers[worker_id] = worker
        worker.start()
        self.driver.add_worker(worker_id)
        return worker_id

    def kill_worker(self, worker_id: str, notify_driver: bool = True) -> None:
        """Crash a machine.  With ``notify_driver=False`` the failure is
        only discovered via heartbeat timeout (requires heartbeats)."""
        worker = self.workers[worker_id]
        worker.kill()
        if notify_driver:
            self.driver.on_worker_lost(worker_id)

    def decommission_worker(self, worker_id: str) -> None:
        self.driver.decommission_worker(worker_id)
        # Drop the discovery-directory entry too: a decommissioned worker
        # must not be resolvable by peers forever (stale-address bugfix).
        self.transport.evict(worker_id)

    def alive_workers(self) -> List[str]:
        return self.driver.alive_workers()

    # ------------------------------------------------------------------
    # Job execution
    # ------------------------------------------------------------------
    def run_plan(self, plan: PhysicalPlan, job_key: Any = None, reuse: bool = False) -> Any:
        return self.driver.run_job(plan, job_key=job_key, reuse=reuse)

    def run(self, dataset: Dataset, action: Optional[Action] = None) -> Any:
        plan = compile_plan(
            dataset, action or collect_action(), map_side_combine=self.conf.map_side_combine
        )
        return self.run_plan(plan)

    def collect(self, dataset: Dataset) -> List[Any]:
        return self.run(dataset, collect_action())

    def run_group(
        self, plans: Sequence[PhysicalPlan], job_keys: Optional[Sequence[Any]] = None
    ) -> List[Any]:
        return self.driver.run_group(plans, job_keys=job_keys)

    def sort(
        self,
        dataset: Dataset,
        key: Any = None,
        num_partitions: int = 4,
        sample_fraction: float = 0.1,
    ) -> List[Any]:
        """Distributed sort, Spark-style: a sampling job picks range
        boundaries, then a range-partitioned job sorts each partition.

        Two jobs total — this is the database-style optimization that
        "depends on data statistics" (§3.6): statistics from one pass
        drive the plan of the next.
        """
        from repro.dag.partitioning import RangePartitioner

        key_fn = key if key is not None else (lambda x: x)
        sample = self.collect(dataset.sample(sample_fraction, seed=self.conf.seed))
        if not sample:
            return sorted(self.collect(dataset), key=key_fn)
        sample_keys = sorted(key_fn(x) for x in sample)
        boundaries = [
            sample_keys[(i + 1) * len(sample_keys) // num_partitions]
            for i in range(num_partitions - 1)
        ]
        partitioner = RangePartitioner(boundaries)
        ranged = (
            dataset.map(lambda x: (key_fn(x), x))
            .partition_by(partitioner)
            .map_partitions(lambda _p, it: [v for _k, v in sorted(it, key=lambda kv: kv[0])])
        )
        parts = self.run(
            ranged.map_partitions(lambda p, it: [(p, list(it))]), None
        )
        ordered: List[Any] = []
        for _p, chunk in sorted(parts):
            ordered.extend(chunk)
        return ordered

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def export_trace(self, path: str, fmt: str = "perfetto") -> int:
        """Write the recorded trace to ``path``; returns the event count.

        ``fmt`` is ``"perfetto"`` (Chrome/Perfetto ``trace_event`` JSON,
        loadable in ``ui.perfetto.dev``) or ``"jsonl"`` (one raw span
        event per line).  Requires ``conf.tracing.enabled``.
        """
        events = self.tracer.events()
        if fmt == "perfetto":
            write_perfetto(events, path)
        elif fmt == "jsonl":
            write_jsonl(events, path)
        else:
            raise ValueError(f"unknown trace format: {fmt!r}")
        return len(events)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        if self.chaos is not None:
            uninstall(self.chaos)
            self.chaos = None
        self.driver.stop_monitor()
        for worker in self.workers.values():
            worker.shutdown()
        if self.journal is not None:
            # A clean close fsyncs the tail; replay of a clean journal is
            # a strict superset of replay after a torn tail.
            self.journal.close()
            self.journal = None
            self.driver.journal = None
        # Close transports last: worker shutdown may still flush reports.
        for transport in reversed(self._transports):
            transport.close()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
