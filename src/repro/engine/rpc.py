"""Message transport between the driver and workers.

All cross-node communication in the engine flows through
:meth:`BaseTransport.call` so that (a) every message is counted — the RPC
amortization claims of §3.1 are observable as message counts, (b) optional
per-message latency can be injected, and (c) a dead endpoint behaves like
a crashed machine: calls to it raise :class:`WorkerLost`.

Two implementations exist behind the same API (selected by
``TransportConf.backend``):

* :class:`Transport` (here) — the in-process registry + router: a call is
  a Python method call plus accounting.
* :class:`repro.net.transport.TcpTransport` — the same contract over real
  loopback sockets, with the :class:`Envelope` as the literal wire format.

When tracing is enabled, every message is wrapped in an
:class:`Envelope` carrying the sender's current span context, which is
re-activated on the receiving side — that is how a trace started on the
driver continues through worker-side handlers, and how it survives the
move to the tcp transport, where the envelope is what goes on the wire.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.common.clock import Clock, WallClock
from repro.common.errors import WorkerLost
from repro.common.metrics import COUNT_RPC_MESSAGES, MetricsRegistry
from repro.obs.trace import NULL_RECORDER, Recorder, SpanContext

# Method names with transport-level significance.  A transport may
# rewrite the *payload* of these calls (e.g. the tcp transport replaces
# launch_tasks plans with content-addressed stage-blob tokens, see
# repro.net.stageblobs) but must deliver semantically identical
# arguments to the endpoint and count exactly one engine message per
# call() — internal renegotiation round trips are plumbing, like
# discovery, and never touch COUNT_RPC_MESSAGES.
LAUNCH_TASKS = "launch_tasks"
FETCH_BUCKETS = "fetch_buckets"
# Steady-state group launch against a worker-cached execution template
# (repro.core.templates): the tcp transport rewrites an eligible
# launch_tasks call into this much smaller message when the peer holds
# the template — still exactly one counted engine message.
INSTANTIATE_TEMPLATE = "instantiate_template"


@dataclass(frozen=True)
class Envelope:
    """One routed message: destination, method, and the trace context the
    sender was in when it sent (None when tracing is disabled)."""

    dst: str
    method: str
    trace_ctx: Optional[SpanContext]


class BaseTransport:
    """Contract shared by the in-process and tcp transports: endpoint
    registry, failure surface (:class:`WorkerLost`), message accounting,
    and optional injected latency."""

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        latency_s: float = 0.0,
        clock: Clock | None = None,
        tracer: Recorder | None = None,
    ):
        self.metrics = metrics or MetricsRegistry()
        self.latency_s = latency_s
        self._clock = clock or WallClock()
        self.tracer = tracer if tracer is not None else NULL_RECORDER

    def register(self, endpoint_id: str, obj: Any) -> None:
        raise NotImplementedError

    def mark_dead(self, endpoint_id: str) -> None:
        raise NotImplementedError

    def is_alive(self, endpoint_id: str) -> bool:
        raise NotImplementedError

    def call(self, dst_id: str, method: str, *args: Any, **kwargs: Any) -> Any:
        raise NotImplementedError

    def try_call(self, dst_id: str, method: str, *args: Any, **kwargs: Any) -> bool:
        """Best-effort delivery (used for notifications): swallow
        :class:`WorkerLost`, return whether the message was delivered."""
        try:
            self.call(dst_id, method, *args, **kwargs)
            return True
        except WorkerLost:
            return False

    def ship_telemetry(self, dst_id: str, src_id: str, delta: Any) -> bool:
        """Deliver a telemetry delta to ``dst_id`` as *plumbing*: like
        discovery (``__announce__``/``__ping__``), this never touches
        ``COUNT_RPC_MESSAGES`` and never injects latency, so arming
        telemetry preserves the ±0 message-count parity between
        transports.  Best-effort: returns whether the delta was taken."""
        return False

    def invalidate_templates(self) -> int:
        """Drop every execution template this transport believes its peers
        hold (driver-side, on cluster-membership change).  The in-process
        transport ships no templates, so there is nothing to drop; the tcp
        transport overrides this.  Returns how many were dropped."""
        return 0

    def evict(self, endpoint_id: str) -> None:
        """Remove a decommissioned endpoint from the discovery directory so
        ``__resolve__`` stops serving its stale address.  The in-process
        transport has no directory; the tcp transport overrides this."""

    def close(self) -> None:
        """Release transport resources (sockets, pools); no-op in-process."""


class Transport(BaseTransport):
    """Registry + router for in-process endpoints."""

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        latency_s: float = 0.0,
        clock: Clock | None = None,
        tracer: Recorder | None = None,
    ):
        super().__init__(metrics, latency_s, clock, tracer)
        self._endpoints: Dict[str, Any] = {}
        self._dead: set = set()
        self._lock = threading.Lock()

    def register(self, endpoint_id: str, obj: Any) -> None:
        with self._lock:
            self._endpoints[endpoint_id] = obj
            self._dead.discard(endpoint_id)

    def mark_dead(self, endpoint_id: str) -> None:
        """Simulate a machine crash: the endpoint stays registered but all
        traffic to it fails from now on."""
        with self._lock:
            self._dead.add(endpoint_id)

    def is_alive(self, endpoint_id: str) -> bool:
        with self._lock:
            return endpoint_id in self._endpoints and endpoint_id not in self._dead

    def endpoints(self) -> Dict[str, Any]:
        with self._lock:
            return dict(self._endpoints)

    def ship_telemetry(self, dst_id: str, src_id: str, delta: Any) -> bool:
        with self._lock:
            if dst_id not in self._endpoints or dst_id in self._dead:
                return False
            target = self._endpoints[dst_id]
        ingest = getattr(target, "ingest_telemetry", None)
        if ingest is None:
            return False
        try:
            return bool(ingest(src_id, delta))
        except Exception:  # noqa: BLE001 - telemetry must never break the engine
            return False

    def call(self, dst_id: str, method: str, *args: Any, **kwargs: Any) -> Any:
        """Deliver one message; returns the method's return value."""
        with self._lock:
            if dst_id not in self._endpoints:
                raise WorkerLost(dst_id, "unknown endpoint")
            if dst_id in self._dead:
                raise WorkerLost(dst_id, "endpoint is down")
            target = self._endpoints[dst_id]
        self.metrics.counter(COUNT_RPC_MESSAGES).add(1)
        if self.latency_s > 0:
            self._clock.sleep(self.latency_s)
        if not self.tracer.enabled:
            return getattr(target, method)(*args, **kwargs)
        envelope = Envelope(dst_id, method, self.tracer.current())
        return self._deliver(envelope, target, args, kwargs)

    def _deliver(
        self, envelope: Envelope, target: Any, args: Tuple, kwargs: Dict[str, Any]
    ) -> Any:
        """Dispatch with the envelope's trace context re-established on
        the receiving side (trace propagation through RPC)."""
        with self.tracer.activate(envelope.trace_ctx):
            return getattr(target, envelope.method)(*args, **kwargs)
