"""In-process message transport between the driver and workers.

All cross-node communication in the engine flows through
:meth:`Transport.call` so that (a) every message is counted — the RPC
amortization claims of §3.1 are observable as message counts, (b) optional
per-message latency can be injected, and (c) a dead endpoint behaves like
a crashed machine: calls to it raise :class:`WorkerLost`.
"""

from __future__ import annotations

import threading
from typing import Any, Dict

from repro.common.clock import Clock, WallClock
from repro.common.errors import WorkerLost
from repro.common.metrics import COUNT_RPC_MESSAGES, MetricsRegistry


class Transport:
    """Registry + router for in-process endpoints."""

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        latency_s: float = 0.0,
        clock: Clock | None = None,
    ):
        self.metrics = metrics or MetricsRegistry()
        self.latency_s = latency_s
        self._clock = clock or WallClock()
        self._endpoints: Dict[str, Any] = {}
        self._dead: set = set()
        self._lock = threading.Lock()

    def register(self, endpoint_id: str, obj: Any) -> None:
        with self._lock:
            self._endpoints[endpoint_id] = obj
            self._dead.discard(endpoint_id)

    def mark_dead(self, endpoint_id: str) -> None:
        """Simulate a machine crash: the endpoint stays registered but all
        traffic to it fails from now on."""
        with self._lock:
            self._dead.add(endpoint_id)

    def is_alive(self, endpoint_id: str) -> bool:
        with self._lock:
            return endpoint_id in self._endpoints and endpoint_id not in self._dead

    def endpoints(self) -> Dict[str, Any]:
        with self._lock:
            return dict(self._endpoints)

    def call(self, dst_id: str, method: str, *args: Any, **kwargs: Any) -> Any:
        """Deliver one message; returns the method's return value."""
        with self._lock:
            if dst_id not in self._endpoints:
                raise WorkerLost(dst_id, "unknown endpoint")
            if dst_id in self._dead:
                raise WorkerLost(dst_id, "endpoint is down")
            target = self._endpoints[dst_id]
        self.metrics.counter(COUNT_RPC_MESSAGES).add(1)
        if self.latency_s > 0:
            self._clock.sleep(self.latency_s)
        return getattr(target, method)(*args, **kwargs)

    def try_call(self, dst_id: str, method: str, *args: Any, **kwargs: Any) -> bool:
        """Best-effort delivery (used for notifications): swallow
        :class:`WorkerLost`, return whether the message was delivered."""
        try:
            self.call(dst_id, method, *args, **kwargs)
            return True
        except WorkerLost:
            return False
