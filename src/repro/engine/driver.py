"""The centralized driver/scheduler.

Implements the control-plane variants the paper compares:

* ``PER_BATCH`` (Spark baseline) — each stage is scheduled after its
  parents complete; map tasks report output sizes to the driver; the
  driver launches reduce tasks with explicit block locations.  One launch
  RPC *per task* (Figure 1).
* ``PRE_SCHEDULED`` — all stages of one micro-batch are assigned up front;
  reduce tasks are parked on workers and triggered by worker-to-worker
  notifications (§3.2).  One launch RPC per worker per batch.
* ``DRIZZLE`` — pre-scheduling plus *group scheduling* (§3.1): placement
  is computed once per group and every batch's tasks ship in a single RPC
  per worker per group.
* ``PIPELINED`` — §3.6 design alternative; identical semantics to
  PER_BATCH in the real engine (the timing difference is modeled in the
  simulator, where it matters).

Fault tolerance follows §3.3: heartbeat-based detection, resubmission of
lost tasks, parallel recovery across in-flight micro-batches, reuse of
surviving intermediate (map) outputs, and pre-population of completed
dependencies when a pre-scheduled task is moved to a new machine.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.common.clock import Clock, WallClock
from repro.common.config import EngineConf, SchedulingMode
from repro.common.errors import (
    FetchFailed,
    RecoveryBudgetExceeded,
    ReproError,
    SerializationError,
    StageTimeout,
    TaskError,
    WorkerLost,
)
from repro.common.metrics import (
    COUNT_BATCHES_EXECUTED,
    COUNT_GROUPS_SCHEDULED,
    COUNT_LAUNCH_RPCS,
    COUNT_RECOVERIES,
    COUNT_SPECULATIVE,
    COUNT_TASKS_LAUNCHED,
    TIME_SCHEDULING,
    TIME_TASK_TRANSFER,
    MetricsRegistry,
)
from repro.core.groups import CoordinationLedger, PlacementPolicy, StageTemplate
from repro.core.prescheduling import DepKey
from repro.core.templates import PlanDigestCache, compute_template_id
from repro.core.tuner import GroupSizeTuner
from repro.dag.plan import PhysicalPlan, StageSpec
from repro.engine.rpc import BaseTransport
from repro.engine.task import TaskDescriptor, TaskId, TaskReport
from repro.obs.names import (
    EVENT_TASK_RESUBMIT,
    EVENT_TUNER_DECISION,
    SPAN_BATCH,
    SPAN_GROUP,
    SPAN_RECOVERY,
    SPAN_STAGE,
    SPAN_TASK_LAUNCH_RPC,
    SPAN_TASK_SCHEDULE,
)
from repro.obs.trace import NULL_RECORDER, Recorder, SpanContext

DRIVER_ID = "driver"


@dataclass
class JobState:
    """Driver-side bookkeeping for one submitted job (one micro-batch)."""

    job_id: int
    job_key: Any
    plan: PhysicalPlan
    pre_scheduled: bool
    stage_remaining: Dict[int, Set[int]] = field(default_factory=dict)
    map_status: Dict[DepKey, str] = field(default_factory=dict)
    # Epoch (producing task attempt) each completed map output was written
    # under — shipped beside map_status wherever locations travel, so no
    # reader can be served a stale co-named block from an older attempt.
    map_epochs: Dict[DepKey, int] = field(default_factory=dict)
    results: Dict[int, Any] = field(default_factory=dict)
    task_locations: Dict[Tuple[int, int], str] = field(default_factory=dict)
    attempts: Dict[Tuple[int, int], int] = field(default_factory=dict)
    blocked: Set[Tuple[int, int]] = field(default_factory=set)
    # Tasks re-placed after a failure: map completions must be forwarded
    # to their new location, since in-flight map descriptors still carry
    # the old downstream pointer (§3.3).
    relocated: Set[Tuple[int, int]] = field(default_factory=set)
    # Straggler mitigation bookkeeping.
    task_started: Dict[Tuple[int, int], float] = field(default_factory=dict)
    task_durations: Dict[int, List[float]] = field(default_factory=dict)
    speculated: Set[Tuple[int, int]] = field(default_factory=set)
    # Human-readable history of every fault this job survived (bounded);
    # attached to RecoveryBudgetExceeded when the retry budget runs out.
    fault_log: List[str] = field(default_factory=list)
    error: Optional[BaseException] = None
    done: threading.Event = field(default_factory=threading.Event)
    # shuffle_id -> consumer stage index / producer (map) stage index
    consumers: Dict[int, int] = field(default_factory=dict)
    producers: Dict[int, int] = field(default_factory=dict)
    # Tracing: the batch's root span and one child span per stage (empty
    # when tracing is disabled).
    batch_span: Any = None
    stage_spans: Dict[int, Any] = field(default_factory=dict)

    def stage_complete(self, stage_index: int) -> bool:
        return not self.stage_remaining.get(stage_index)

    def is_finished(self) -> bool:
        return self.done.is_set()

    @property
    def result_stage_index(self) -> int:
        return self.plan.stages[-1].stage_index


class Driver:
    """Centralized scheduler; registered on the transport as ``driver``."""

    def __init__(
        self,
        transport: "BaseTransport",
        conf: EngineConf,
        metrics: Optional[MetricsRegistry] = None,
        clock: Optional[Clock] = None,
        tracer: Optional[Recorder] = None,
    ):
        conf.validate()
        self.conf = conf
        self.transport = transport
        self.metrics = metrics or MetricsRegistry()
        self.clock = clock or WallClock()
        self.tracer = tracer if tracer is not None else NULL_RECORDER
        self.jobs: Dict[int, JobState] = {}
        self._job_ids_by_key: Dict[Any, int] = {}
        self._alive: Set[str] = set()
        self._draining: Set[str] = set()
        self._next_job_id = 0
        self._rr_cursor = 0
        self._lock = threading.RLock()
        self._cv = threading.Condition(self._lock)
        self._last_heartbeat: Dict[str, float] = {}
        self._monitor: Optional[threading.Thread] = None
        self._stop_monitor = threading.Event()
        # Lazily-created pool for concurrent per-worker launch RPCs —
        # persistent because creating (and joining) a ThreadPoolExecutor
        # per group launch costs more than the launches themselves.
        self._launch_pool: Optional[ThreadPoolExecutor] = None
        self.tuner: Optional[GroupSizeTuner] = (
            GroupSizeTuner(conf.tuner, conf.group_size) if conf.tuner.enabled else None
        )
        self.last_group_ledger: Optional[CoordinationLedger] = None
        # Execution templates (repro.core.templates): the epoch counts
        # membership changes — any join/leave/re-announce bumps it and
        # clears the transport's shipped-template registry, so a stale
        # template can never instantiate under the new placement.
        self._template_epoch = 0
        self._plan_digests = PlanDigestCache()
        # Live telemetry store (repro.obs.live), wired by LocalCluster
        # when TelemetryConf.enabled; heartbeat deltas land here.
        self.telemetry = None
        # Driver fault tolerance (repro.ha), wired by LocalCluster when
        # HaConf.enabled: the control-plane journal, and this driver
        # incarnation's session epoch.  Epoch 0 means HA is off — no
        # journaling, no fencing stamp, byte-identical non-HA behaviour.
        self.journal = None
        self.session_epoch = 0
        transport.register(DRIVER_ID, self)
        if conf.transport.data_plane.shm_shuffle:
            # Join the shm co-location directory (repro.data.shm): workers
            # that share this address space hand completion reports over
            # by direct call instead of a wire RPC — the control-plane
            # analogue of reading a shuffle bucket out of the segment
            # rather than fetching it.  Remote workers never see this
            # entry and keep the transport path.
            from repro.data.shm import segment_registry

            registry = segment_registry()
            if registry.available:
                registry.register_peer(DRIVER_ID, self)

    # ------------------------------------------------------------------
    # Cluster membership
    # ------------------------------------------------------------------
    def add_worker(self, worker_id: str) -> None:
        with self._lock:
            self._alive.add(worker_id)
            self._draining.discard(worker_id)
            self._last_heartbeat[worker_id] = self.clock.now()
            self._bump_template_epoch()
        self._annotate_scale_event(worker_id, "join", "worker added")
        self._journal_membership()

    def decommission_worker(self, worker_id: str) -> None:
        """Graceful removal: excluded from future placement; running tasks
        finish normally (elasticity at group boundaries, §3.3)."""
        with self._lock:
            self._draining.add(worker_id)
            self._bump_template_epoch()
        self._annotate_scale_event(worker_id, "leave", "decommissioned")
        self._journal_membership()

    def _journal_membership(self) -> None:
        if self.journal is not None:
            with self._lock:
                workers = sorted(self._alive - self._draining)
                epoch = self._template_epoch
            self.journal.record_membership(workers, template_epoch=epoch)

    def _epoch_kwargs(self) -> Dict[str, int]:
        """The fencing stamp for worker-bound messages; empty when HA is
        off, so non-HA wire traffic stays byte-identical."""
        if self.session_epoch > 0:
            return {"driver_epoch": self.session_epoch}
        return {}

    def _annotate_scale_event(self, worker_id: str, action: str, reason: str) -> None:
        if self.telemetry is not None:
            try:
                self.telemetry.annotate_scale_event(worker_id, action, reason)
            except Exception:
                pass  # observability must never break membership changes

    def _bump_template_epoch(self) -> None:
        """Membership changed (caller holds the lock): cached execution
        templates bake the old placement into their downstream pointers,
        so every one of them — driver-side shipped sets and worker-side
        stores alike — must die.  The epoch bump makes worker copies
        uninstantiable; the transport drop clears the send side."""
        self._template_epoch += 1
        self.transport.invalidate_templates()

    def alive_workers(self) -> List[str]:
        with self._lock:
            return sorted(self._alive)

    def placement_workers(self) -> List[str]:
        with self._lock:
            return sorted(self._alive - self._draining)

    @property
    def current_group_size(self) -> int:
        if self.tuner is not None:
            return self.tuner.group_size
        return self.conf.group_size

    # ------------------------------------------------------------------
    # Failure detection
    # ------------------------------------------------------------------
    def start_monitor(self) -> None:
        self._stop_monitor.clear()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="driver-monitor", daemon=True
        )
        self._monitor.start()

    def stop_monitor(self) -> None:
        self._stop_monitor.set()
        if self._launch_pool is not None:
            self._launch_pool.shutdown(wait=False)
            self._launch_pool = None
        if self.conf.transport.data_plane.shm_shuffle:
            from repro.data.shm import segment_registry

            segment_registry().unregister_peer(DRIVER_ID)

    def start_speculation(self) -> None:
        """Launch the straggler-mitigation monitor (SpeculationConf)."""
        thread = threading.Thread(
            target=self._speculation_loop, name="driver-speculation", daemon=True
        )
        thread.start()

    def _speculation_loop(self) -> None:
        interval = self.conf.speculation.check_interval_s
        while not self._stop_monitor.wait(interval):
            self.speculation_pass()

    def speculation_pass(self) -> int:
        """One sweep: launch a second copy of every detected straggler.
        Returns how many speculative copies were launched."""
        spec = self.conf.speculation
        now = self.clock.now()
        launched = 0
        with self._lock:
            for job in self.jobs.values():
                if job.is_finished():
                    continue
                for stage in job.plan.stages:
                    launched += self._speculate_stage(job, stage, now, spec)
        if launched:
            self.metrics.counter(COUNT_SPECULATIVE).add(launched)
        return launched

    def _speculate_stage(self, job: JobState, stage, now: float, spec) -> int:
        s = stage.stage_index
        remaining = job.stage_remaining.get(s, set())
        if not remaining:
            return 0
        done = stage.num_tasks - len(remaining)
        if done / stage.num_tasks < spec.min_completed_fraction:
            return 0
        durations = sorted(job.task_durations.get(s, ()))
        if not durations:
            return 0
        median = durations[len(durations) // 2]
        threshold = max(spec.min_runtime_s, spec.multiplier * median)
        launched = 0
        for partition in sorted(remaining):
            key = (s, partition)
            if key in job.speculated:
                continue
            started = job.task_started.get(key)
            if started is None or now - started <= threshold:
                continue
            # Only speculate tasks that are plausibly *running* (all of
            # their inputs exist), not tasks parked for dependencies.
            deps = stage.task_dependencies(partition)
            if any(d not in job.map_status for d in deps):
                continue
            job.speculated.add(key)
            job.attempts[key] = job.attempts.get(key, 0) + 1
            self._resubmit_task(
                job, s, partition, exclude=job.task_locations.get(key)
            )
            launched += 1
        return launched

    def heartbeat(self, worker_id: str, _ts: float, telemetry=None) -> None:
        """Liveness ping from a worker; ``telemetry`` optionally carries a
        piggybacked metrics delta (same message, bigger payload)."""
        with self._lock:
            if worker_id in self._alive:
                self._last_heartbeat[worker_id] = self.clock.now()
        if self.telemetry is not None:
            self.telemetry.ingest(worker_id, telemetry)

    def ingest_telemetry(self, worker_id: str, delta) -> bool:
        """Target of the uncounted ``__metrics__`` shipping path (used
        when heartbeats are off).  Returns False when no store is armed."""
        if self.telemetry is None:
            return False
        self.telemetry.ingest(worker_id, delta)
        return True

    def _monitor_loop(self) -> None:
        interval = self.conf.monitor.heartbeat_interval_s
        timeout = self.conf.monitor.heartbeat_timeout_s
        while not self._stop_monitor.wait(interval):
            now = self.clock.now()
            with self._lock:
                expired = [
                    w
                    for w in self._alive
                    if now - self._last_heartbeat.get(w, now) > timeout
                ]
            for worker_id in expired:
                self.on_worker_lost(
                    worker_id, reason=f"heartbeat timeout after {timeout}s"
                )

    def notify_delivery_failed(
        self, job_id: int, shuffle_id: int, map_index: int, src: str, target: str
    ) -> None:
        """A worker could not deliver a map-output notification.

        If the target really is unreachable, treat it as lost (workers
        rely on the driver as the single source of truth, §3.3).  If the
        target is healthy, the *notification* was the casualty (a dropped
        frame): re-deliver it driver-side, because a reduce task parked on
        that dependency would otherwise wait forever."""
        if not self.transport.is_alive(target):
            self.on_worker_lost(target, reason=f"unreachable from {src}")
            return
        for _ in range(3):
            if self.transport.try_call(
                target,
                "pre_populate",
                job_id,
                [((shuffle_id, map_index), src)],
                **self._epoch_kwargs(),
            ):
                return
        self.on_worker_lost(
            target, reason="redelivery of a map-output notification failed"
        )

    # ------------------------------------------------------------------
    # Public job API
    # ------------------------------------------------------------------
    def run_job(self, plan: PhysicalPlan, job_key: Any = None, reuse: bool = False) -> Any:
        """Execute one job synchronously and return the action's result."""
        if self.conf.scheduling_mode in (
            SchedulingMode.PER_BATCH,
            SchedulingMode.PIPELINED,
        ):
            return self._run_barrier(plan, job_key=job_key, reuse=reuse)
        job_ids = self.submit_group([plan], job_keys=[job_key], reuse=reuse)
        return self.wait_job(job_ids[0])

    def run_group(
        self,
        plans: Sequence[PhysicalPlan],
        job_keys: Optional[Sequence[Any]] = None,
        reuse: bool = False,
    ) -> List[Any]:
        """Execute a group of jobs and return their results in order.

        Under DRIZZLE this is one group-scheduling round; under barrier
        modes the jobs run sequentially (the Spark-streaming behaviour).
        Feeds the group-size tuner with the measured coordination ledger.
        """
        keys = list(job_keys) if job_keys is not None else [None] * len(plans)
        group_span = self.tracer.start_span(
            SPAN_GROUP,
            root=True,
            actor=DRIVER_ID,
            num_batches=len(plans),
            mode=self.conf.scheduling_mode.value,
        )
        start = self.clock.now()
        sched_before = self.metrics.counter(TIME_SCHEDULING).value
        xfer_before = self.metrics.counter(TIME_TASK_TRANSFER).value

        with group_span:
            try:
                if self.conf.scheduling_mode in (
                    SchedulingMode.PER_BATCH,
                    SchedulingMode.PIPELINED,
                ):
                    results = [
                        self._run_barrier(plan, job_key=key, reuse=reuse)
                        for plan, key in zip(plans, keys)
                    ]
                else:
                    job_ids = self.submit_group(plans, job_keys=keys, reuse=reuse)
                    results = [self.wait_job(job_id) for job_id in job_ids]
            finally:
                # Runs before the span closes so the annotations are kept.
                ledger = CoordinationLedger(
                    scheduling_s=self.metrics.counter(TIME_SCHEDULING).value
                    - sched_before,
                    task_transfer_s=self.metrics.counter(TIME_TASK_TRANSFER).value
                    - xfer_before,
                    wall_s=self.clock.now() - start,
                )
                self.last_group_ledger = ledger
                group_span.annotate(
                    scheduling_s=ledger.scheduling_s,
                    task_transfer_s=ledger.task_transfer_s,
                    wall_s=ledger.wall_s,
                )
                if self.tuner is not None and ledger.wall_s > 0:
                    decision = self.tuner.observe(ledger.coordination_s, ledger.wall_s)
                    self.tracer.instant(
                        EVENT_TUNER_DECISION,
                        parent=group_span,
                        actor=DRIVER_ID,
                        **decision.as_annotation(),
                    )
        return results

    def wait_job(self, job_id: int, timeout: Optional[float] = None) -> Any:
        with self._lock:
            job = self.jobs[job_id]
        # An explicit timeout wins; otherwise the conf-level deadline
        # applies, so an injected hang surfaces as a descriptive error
        # instead of blocking this thread forever.
        effective = timeout if timeout is not None else self.conf.stage_timeout_s
        if not job.done.wait(effective):
            raise self._stage_timeout_error(job, effective)
        if job.error is not None:
            raise job.error
        parts = [job.results[p] for p in range(job.plan.result_stage.num_tasks)]
        return job.plan.finalize(parts)

    def _stage_timeout_error(self, job: JobState, timeout_s: float) -> StageTimeout:
        """Build a StageTimeout naming the stalled stage, its pending
        partitions, and the workers they were last placed on."""
        with self._lock:
            stalled = next(
                (s for s in sorted(job.stage_remaining) if job.stage_remaining[s]),
                job.result_stage_index,
            )
            pending = sorted(job.stage_remaining.get(stalled, ()))
            workers = sorted(
                {
                    job.task_locations[(stalled, p)]
                    for p in pending
                    if (stalled, p) in job.task_locations
                }
            ) or ["<unplaced>"]
        return StageTimeout(job.job_id, stalled, pending, workers, timeout_s)

    @staticmethod
    def _note_fault(job: JobState, msg: str) -> None:
        """Append to the job's (bounded) fault history; caller holds the lock."""
        if len(job.fault_log) < 100:
            job.fault_log.append(msg)

    def drop_job(self, job_id: int) -> None:
        """Garbage-collect a job's shuffle blocks cluster-wide."""
        with self._lock:
            job = self.jobs.pop(job_id, None)
            if job is not None:
                self._job_ids_by_key.pop(job.job_key, None)
            workers = list(self._alive)
        for worker_id in workers:
            self.transport.try_call(
                worker_id, "drop_job", job_id, **self._epoch_kwargs()
            )

    # ------------------------------------------------------------------
    # Job registration (shared)
    # ------------------------------------------------------------------
    def _register_job(
        self, plan: PhysicalPlan, job_key: Any, pre_scheduled: bool, reuse: bool
    ) -> JobState:
        with self._lock:
            prior: Optional[JobState] = None
            if job_key is not None and job_key in self._job_ids_by_key:
                prior_id = self._job_ids_by_key[job_key]
                prior = self.jobs.get(prior_id)
            if prior is not None:
                job_id = prior.job_id
                # Clear any parked tasks left over from the prior attempt.
                for worker_id in list(self._alive):
                    self.transport.try_call(
                        worker_id, "cancel_job", job_id, **self._epoch_kwargs()
                    )
            else:
                job_id = self._next_job_id
                self._next_job_id += 1
            job = JobState(
                job_id=job_id,
                job_key=job_key,
                plan=plan,
                pre_scheduled=pre_scheduled,
            )
            for stage in plan.stages:
                job.stage_remaining[stage.stage_index] = set(range(stage.num_tasks))
                for spec in stage.input_shuffles:
                    job.consumers[spec.shuffle_id] = stage.stage_index
                if stage.output_shuffle is not None:
                    job.producers[stage.output_shuffle.shuffle_id] = stage.stage_index
            if prior is not None and reuse:
                self._carry_over_outputs(job, prior)
            self.jobs[job_id] = job
            if job_key is not None:
                self._job_ids_by_key[job_key] = job_id
            self._journal_job("submitted", job)
            if self.tracer.enabled:
                if prior is not None:
                    self._finish_job_spans(prior, superseded=True)
                job.batch_span = self.tracer.start_span(
                    SPAN_BATCH,
                    root=True,
                    actor=DRIVER_ID,
                    job_id=job.job_id,
                    job_key=None if job_key is None else str(job_key),
                    mode=self.conf.scheduling_mode.value,
                    pre_scheduled=pre_scheduled,
                )
                for stage in plan.stages:
                    job.stage_spans[stage.stage_index] = self.tracer.start_span(
                        SPAN_STAGE,
                        parent=job.batch_span,
                        actor=DRIVER_ID,
                        stage=stage.stage_index,
                        num_tasks=stage.num_tasks,
                    )
            return job

    def _finish_job_spans(self, job: JobState, superseded: bool = False) -> None:
        """End a job's batch/stage spans (idempotent; lock held)."""
        if job.batch_span is None:
            return
        for span in job.stage_spans.values():
            span.end()
        if superseded:
            job.batch_span.annotate(superseded=True)
        if job.error is not None:
            job.batch_span.annotate(error=repr(job.error))
        job.batch_span.end()

    def _carry_over_outputs(self, job: JobState, prior: JobState) -> None:
        """Reuse intermediate map outputs from a prior attempt of the same
        micro-batch that still live on healthy workers (§3.3 lineage reuse)."""
        for (shuffle_id, map_index), worker_id in prior.map_status.items():
            if worker_id not in self._alive:
                continue
            epoch = prior.map_epochs.get((shuffle_id, map_index), 0)
            if not self.transport.try_call(
                worker_id, "has_map_output", job.job_id, shuffle_id, map_index, epoch
            ):
                continue
            producer_stage = job.producers.get(shuffle_id)
            if producer_stage is None:
                continue
            job.map_status[(shuffle_id, map_index)] = worker_id
            job.map_epochs[(shuffle_id, map_index)] = epoch
            job.stage_remaining[producer_stage].discard(map_index)
            job.task_locations[(producer_stage, map_index)] = worker_id

    @staticmethod
    def _stage_templates(plan: PhysicalPlan) -> List[StageTemplate]:
        return [
            StageTemplate(
                stage_index=s.stage_index,
                num_tasks=s.num_tasks,
                is_shuffle_map=s.output_shuffle is not None,
                shuffle_id=(
                    s.output_shuffle.shuffle_id if s.output_shuffle is not None else None
                ),
                locality=s.locality,
            )
            for s in plan.stages
        ]

    def _pick_worker(self, exclude: Optional[str] = None) -> str:
        workers = self.placement_workers()
        if not workers:
            raise ReproError("no live workers available")
        if exclude is not None and len(workers) > 1:
            workers = [w for w in workers if w != exclude]
        worker = workers[self._rr_cursor % len(workers)]
        self._rr_cursor += 1
        return worker

    # ------------------------------------------------------------------
    # Pre-scheduled (Drizzle) path
    # ------------------------------------------------------------------
    def submit_group(
        self,
        plans: Sequence[PhysicalPlan],
        job_keys: Optional[Sequence[Any]] = None,
        reuse: bool = False,
    ) -> List[int]:
        """Pre-schedule every stage of every micro-batch in the group.

        Placement is computed once (scheduling-decision reuse, §3.1) and
        each worker receives a single ``launch_tasks`` RPC for the whole
        group, followed by a ``pre_populate`` message when reused outputs
        already satisfy some dependencies.
        """
        if not plans:
            return []
        keys = list(job_keys) if job_keys is not None else [None] * len(plans)
        sched_start = self.clock.now()
        per_worker: Dict[str, List[TaskDescriptor]] = {}
        prepopulate: Dict[int, List[Tuple[DepKey, str]]] = {}
        job_ids: List[int] = []
        job_assignments: Dict[int, Any] = {}

        with self._lock:
            workers = self.placement_workers()
            if not workers:
                raise ReproError("no live workers available")
            policy = PlacementPolicy(workers, self.conf.slots_per_worker)
            jobs: List[JobState] = []
            for plan, key in zip(plans, keys):
                job = self._register_job(plan, key, pre_scheduled=True, reuse=reuse)
                jobs.append(job)
                job_ids.append(job.job_id)
            # One assignment per DAG *shape* per group: jobs sharing the
            # (static) streaming DAG reuse the same scheduling decision
            # (§3.1); a context with several output operators contributes
            # one extra assignment per distinct shape.
            assignments: Dict[Tuple, Any] = {}
            for job in jobs:
                shape = tuple(
                    (
                        s.num_tasks,
                        s.output_shuffle.shuffle_id if s.output_shuffle else None,
                        tuple(spec.shuffle_id for spec in s.input_shuffles),
                    )
                    for s in job.plan.stages
                )
                if shape not in assignments:
                    assignments[shape] = policy.assign(
                        self._stage_templates(job.plan)
                    )
                job_assignments[job.job_id] = assignments[shape]
            for job in jobs:
                completed = [
                    (dep, loc, job.map_epochs.get(dep, 0))
                    for dep, loc in job.map_status.items()
                ]
                if completed:
                    prepopulate[job.job_id] = completed
                for desc, worker_id in self._build_prescheduled_tasks(
                    job, job_assignments[job.job_id]
                ):
                    per_worker.setdefault(worker_id, []).append(desc)
        sched_end = self.clock.now()
        self.metrics.counter(TIME_SCHEDULING).add(sched_end - sched_start)
        self.metrics.counter(COUNT_GROUPS_SCHEDULED).add(1)
        self.metrics.counter(COUNT_BATCHES_EXECUTED).add(len(plans))
        if self.tracer.enabled:
            # Exact same window as the TIME_SCHEDULING counter add above,
            # so trace totals and counters agree.  The span is group-wide;
            # ``batches`` lets the analyzer attribute its cost per batch.
            self.tracer.record_span(
                SPAN_TASK_SCHEDULE,
                sched_start,
                sched_end,
                actor=DRIVER_ID,
                batches=list(job_ids),
                tasks=sum(len(d) for d in per_worker.values()),
            )

        # Execution templates: identical group shapes (plan content,
        # placement, group size) digest to the same template id, so the
        # transport can replace the per-task payload with one
        # instantiate_template message per worker on repeat launches.
        # Tracing disqualifies a launch — descriptors then carry
        # per-batch span contexts, which a cached template cannot.
        template_meta: Dict[str, Tuple[str, Tuple[int, ...], int]] = {}
        if self.conf.templates.enabled and not self.tracer.enabled:
            epoch = self._template_epoch
            batch_ids = tuple(job_ids)
            for worker_id, descs in per_worker.items():
                template_meta[worker_id] = (
                    compute_template_id(descs, batch_ids, self._plan_digests),
                    batch_ids,
                    epoch,
                )

        xfer_start = self.clock.now()
        for worker_id in sorted(per_worker):
            self.metrics.counter(COUNT_TASKS_LAUNCHED).add(len(per_worker[worker_id]))
            self.metrics.counter(COUNT_LAUNCH_RPCS).add(1)
        lost = self._launch_group(per_worker, template_meta)
        if lost:
            # Error fidelity: each loss report carries the full split of
            # the parallel launch, not just the one failed id.
            survived = sorted(set(per_worker) - set(lost))
            for worker_id, why in sorted(lost.items()):
                self.on_worker_lost(
                    worker_id,
                    reason=(
                        f"lost during group launch ({why}); "
                        f"failed={sorted(lost)} survived={survived}"
                    ),
                )
        ek = self._epoch_kwargs()
        for job_id, completed in prepopulate.items():
            for worker_id in self.alive_workers():
                if not self.transport.try_call(
                    worker_id, "pre_populate", job_id, completed, **ek
                ):
                    # One retry: losing this message silently parks the
                    # worker's reduce tasks until the stage deadline.
                    self.transport.try_call(
                        worker_id, "pre_populate", job_id, completed, **ek
                    )
        xfer_end = self.clock.now()
        self.metrics.counter(TIME_TASK_TRANSFER).add(xfer_end - xfer_start)
        if self.tracer.enabled:
            self.tracer.record_span(
                SPAN_TASK_LAUNCH_RPC,
                xfer_start,
                xfer_end,
                actor=DRIVER_ID,
                batches=list(job_ids),
                rpcs=len(per_worker),
            )

        # A job whose result partitions were all carried over (rare: zero
        # remaining everywhere) completes immediately.
        with self._lock:
            for job in jobs:
                self._check_job_done(job)
        return job_ids

    def _launch_group(
        self,
        per_worker: Dict[str, List[TaskDescriptor]],
        template_meta: Optional[Dict[str, Tuple[str, Tuple[int, ...], int]]] = None,
    ) -> Dict[str, str]:
        """Send one ``launch_tasks`` per worker; returns the workers that
        were lost mid-launch, mapped to the loss reason.

        ``template_meta`` (worker -> ``(template_id, batch_ids, epoch)``)
        rides along with eligible launches; the tcp transport uses it to
        ship a cached-template instantiation instead of the full payload,
        other transports deliver it to the worker as an installation hint.
        Either way it is still one counted message per worker per group.

        Over tcp the per-worker launches are independent wire round trips,
        so they go out concurrently (bounded like the fetch path by
        ``DataPlaneConf.max_concurrent_fetches``).  In-process they stay
        sequential: with a synchronous inline executor the launch *runs*
        the tasks, and that determinism is part of the inproc contract.
        Message counts are identical either way."""
        workers = sorted(per_worker)
        lost: Dict[str, str] = {}
        meta = template_meta or {}

        ek = self._epoch_kwargs()

        def launch(worker_id: str) -> Optional[Tuple[str, str]]:
            try:
                worker_meta = meta.get(worker_id)
                if worker_meta is None:
                    self.transport.call(
                        worker_id, "launch_tasks", per_worker[worker_id], **ek
                    )
                else:
                    self.transport.call(
                        worker_id,
                        "launch_tasks",
                        per_worker[worker_id],
                        worker_meta,
                        **ek,
                    )
                return None
            except WorkerLost as err:
                return (worker_id, err.reason)

        max_conc = self.conf.transport.data_plane.max_concurrent_fetches
        if (
            self.conf.transport.backend != "tcp"
            or len(workers) <= 1
            or max_conc <= 1
        ):
            for worker_id in workers:
                failure = launch(worker_id)
                if failure is not None:
                    lost[failure[0]] = failure[1]
            return lost
        pool = self._launch_pool
        if pool is None:
            pool = self._launch_pool = ThreadPoolExecutor(
                max_workers=max_conc, thread_name_prefix="driver-launch"
            )
        try:
            results = list(pool.map(launch, workers))
        except RuntimeError:  # pool shut down mid-teardown: go sequential
            results = [launch(worker_id) for worker_id in workers]
        for failure in results:
            if failure is not None:
                lost[failure[0]] = failure[1]
        return lost

    def _build_prescheduled_tasks(self, job: JobState, assignment) -> List[
        Tuple[TaskDescriptor, str]
    ]:
        """Descriptors for every not-yet-complete task of one job."""
        out: List[Tuple[TaskDescriptor, str]] = []
        for stage in job.plan.stages:
            slots = assignment.by_stage[stage.stage_index]
            for partition in sorted(job.stage_remaining[stage.stage_index]):
                worker_id = slots[partition].worker_id
                desc = self._make_descriptor(job, stage, partition, assignment)
                job.task_locations[(stage.stage_index, partition)] = worker_id
                job.task_started[(stage.stage_index, partition)] = self.clock.now()
                out.append((desc, worker_id))
        return out

    def _make_descriptor(
        self, job: JobState, stage: StageSpec, partition: int, assignment
    ) -> TaskDescriptor:
        attempt = job.attempts.get((stage.stage_index, partition), 0)
        deps = stage.task_dependencies(partition)
        downstream: Dict[int, str] = {}
        if stage.output_shuffle is not None:
            spec = stage.output_shuffle
            consumer = job.consumers.get(spec.shuffle_id)
            if consumer is not None:
                consumer_slots = assignment.by_stage[consumer]
                if spec.structure == "tree":
                    relevant = [partition // spec.fan_in]
                else:
                    relevant = list(range(spec.num_reducers))
                downstream = {r: consumer_slots[r].worker_id for r in relevant}
        return TaskDescriptor(
            task_id=TaskId(job.job_id, stage.stage_index, partition, attempt),
            plan=job.plan,
            pre_scheduled=True,
            deps=deps,
            downstream=downstream,
            trace_ctx=self._stage_ctx(job, stage.stage_index),
        )

    @staticmethod
    def _stage_ctx(job: JobState, stage_index: int) -> Optional[SpanContext]:
        """Trace context a task descriptor for this stage should carry."""
        span = job.stage_spans.get(stage_index)
        return span.context if span is not None else None

    # ------------------------------------------------------------------
    # Barrier (Spark) path
    # ------------------------------------------------------------------
    def _run_barrier(self, plan: PhysicalPlan, job_key: Any, reuse: bool) -> Any:
        job = self._register_job(plan, job_key, pre_scheduled=False, reuse=reuse)
        self.metrics.counter(COUNT_BATCHES_EXECUTED).add(1)
        for stage in plan.stages:
            with self._lock:
                pending = sorted(job.stage_remaining[stage.stage_index])
                for partition in pending:
                    self._launch_barrier_task(job, stage.stage_index, partition)
            self._await_stage(job, stage.stage_index)
            if job.error is not None:
                raise job.error
        with self._lock:
            self._check_job_done(job)
        return self.wait_job(job.job_id)

    def _launch_barrier_task(
        self, job: JobState, stage_index: int, partition: int
    ) -> None:
        """Launch one task if its inputs are available, else park it.

        Caller holds the driver lock.  One RPC per task — the Spark
        baseline's per-task launch cost that group scheduling amortizes.
        """
        stage = job.plan.stages[stage_index]
        deps = stage.task_dependencies(partition)
        missing = [d for d in deps if d not in job.map_status]
        if missing:
            job.blocked.add((stage_index, partition))
            return
        sched_start = self.clock.now()
        worker_id = self._pick_worker()
        attempt = job.attempts.get((stage_index, partition), 0)
        desc = TaskDescriptor(
            task_id=TaskId(job.job_id, stage_index, partition, attempt),
            plan=job.plan,
            pre_scheduled=False,
            deps=frozenset(),
            map_locations={d: job.map_status[d] for d in deps},
            map_epochs={d: job.map_epochs.get(d, 0) for d in deps},
            trace_ctx=self._stage_ctx(job, stage_index),
        )
        job.task_locations[(stage_index, partition)] = worker_id
        job.task_started[(stage_index, partition)] = self.clock.now()
        job.blocked.discard((stage_index, partition))
        sched_end = self.clock.now()
        self.metrics.counter(TIME_SCHEDULING).add(sched_end - sched_start)
        self.metrics.counter(COUNT_TASKS_LAUNCHED).add(1)
        self.metrics.counter(COUNT_LAUNCH_RPCS).add(1)
        if self.tracer.enabled:
            self.tracer.record_span(
                SPAN_TASK_SCHEDULE,
                sched_start,
                sched_end,
                parent=desc.trace_ctx,
                actor=DRIVER_ID,
                stage=stage_index,
                partition=partition,
            )
        xfer_start = self.clock.now()
        try:
            self.transport.call(
                worker_id, "launch_tasks", [desc], **self._epoch_kwargs()
            )
        finally:
            # WorkerLost propagates; the monitor path retries the task.
            xfer_end = self.clock.now()
            self.metrics.counter(TIME_TASK_TRANSFER).add(xfer_end - xfer_start)
            if self.tracer.enabled:
                self.tracer.record_span(
                    SPAN_TASK_LAUNCH_RPC,
                    xfer_start,
                    xfer_end,
                    parent=desc.trace_ctx,
                    actor=DRIVER_ID,
                    stage=stage_index,
                    partition=partition,
                    worker=worker_id,
                )

    def _await_stage(self, job: JobState, stage_index: int) -> None:
        deadline = (
            None
            if self.conf.stage_timeout_s is None
            else self.clock.now() + self.conf.stage_timeout_s
        )
        with self._cv:
            while job.error is None and any(
                job.stage_remaining[s] for s in range(stage_index + 1)
            ):
                if deadline is not None and self.clock.now() > deadline:
                    raise self._stage_timeout_error(job, self.conf.stage_timeout_s)
                self._cv.wait(timeout=0.5)

    # ------------------------------------------------------------------
    # Worker -> driver callbacks
    # ------------------------------------------------------------------
    def task_finished(self, report: TaskReport) -> None:
        with self._lock:
            job = self.jobs.get(report.task_id.job_id)
            if job is None or job.is_finished():
                return
            if report.worker_id not in self._alive:
                # A report racing the loss of its worker: the machine's
                # block store is gone (or about to be), so recording its
                # outputs would point consumers at a dead holder — and a
                # dead holder cannot be invalidated by the FetchFailed
                # path, leaving them refetching forever.  Recovery already
                # resubmitted this task.
                return
            stage_index = report.task_id.stage_index
            partition = report.task_id.partition
            if not report.succeeded:
                self._handle_task_failure(job, report)
                self._cv.notify_all()
                return
            stage = job.plan.stages[stage_index]
            if partition not in job.stage_remaining[stage_index]:
                return  # stale duplicate from an old attempt
            job.stage_remaining[stage_index].discard(partition)
            if not job.stage_remaining[stage_index]:
                span = job.stage_spans.get(stage_index)
                if span is not None:
                    span.end()
            started = job.task_started.get((stage_index, partition))
            if started is not None:
                job.task_durations.setdefault(stage_index, []).append(
                    self.clock.now() - started
                )
            job.task_locations[(stage_index, partition)] = report.worker_id
            if stage.output_shuffle is not None:
                dep = (stage.output_shuffle.shuffle_id, partition)
                job.map_status[dep] = report.worker_id
                job.map_epochs[dep] = report.task_id.attempt
                if job.pre_scheduled:
                    self._forward_to_relocated(job, stage, partition, report.worker_id)
                else:
                    self._unblock_barrier_tasks(job)
            if stage.is_result:
                job.results[partition] = report.result
            self._check_job_done(job)
            self._cv.notify_all()

    def _forward_to_relocated(
        self, job: JobState, map_stage: StageSpec, map_index: int, holder: str
    ) -> None:
        """A map task completed, but some of its consumers were re-placed
        after the map's descriptor was built; its worker-to-worker
        notification went to the old (dead) machines.  The driver forwards
        the completion to the consumers' current locations."""
        spec = map_stage.output_shuffle
        assert spec is not None
        consumer = job.consumers.get(spec.shuffle_id)
        if consumer is None:
            return
        if spec.structure == "tree":
            relevant = [map_index // spec.fan_in]
        else:
            relevant = range(spec.num_reducers)
        remaining = job.stage_remaining.get(consumer, set())
        for r in relevant:
            if (consumer, r) not in job.relocated or r not in remaining:
                continue
            where = job.task_locations.get((consumer, r))
            if where is not None and where in self._alive:
                self.transport.try_call(
                    where,
                    "pre_populate",
                    job.job_id,
                    [
                        (
                            (spec.shuffle_id, map_index),
                            holder,
                            job.map_epochs.get((spec.shuffle_id, map_index), 0),
                        )
                    ],
                    **self._epoch_kwargs(),
                )

    def _unblock_barrier_tasks(self, job: JobState) -> None:
        for stage_index, partition in sorted(job.blocked):
            stage = job.plan.stages[stage_index]
            deps = stage.task_dependencies(partition)
            if all(d in job.map_status for d in deps):
                self._launch_barrier_task(job, stage_index, partition)

    def _journal_job(self, event: str, job: JobState) -> None:
        if self.journal is not None:
            self.journal.record_job(event, job.job_id, key=job.job_key)

    def _check_job_done(self, job: JobState) -> None:
        if job.error is not None:
            if not job.done.is_set():
                job.done.set()
                self._finish_job_spans(job)
                self._journal_job("completed", job)
            return
        if all(not rem for rem in job.stage_remaining.values()):
            if not job.done.is_set():
                job.done.set()
                self._finish_job_spans(job)
                self._journal_job("completed", job)

    def _handle_task_failure(self, job: JobState, report: TaskReport) -> None:
        err = report.error
        if isinstance(err, FetchFailed):
            holder = err.worker_id
            self._note_fault(
                job,
                f"fetch failed: shuffle={err.shuffle_id} map={err.map_index} "
                f"holder={holder}",
            )
            if holder != "<unknown>" and not self.transport.is_alive(holder):
                # The block's machine is gone: full worker-loss handling.
                self._worker_lost_locked(
                    holder, reason="unreachable during shuffle fetch"
                )
            # Invalidate unconditionally.  When the holder was *already*
            # removed from _alive, _worker_lost_locked above is a no-op —
            # but a stale completion report may have re-registered the
            # dead holder in map_status, and without invalidation the
            # consumer would refetch the same missing block forever.
            self._invalidate_map_output(job, err.shuffle_id, err.map_index)
            # Retry the failed task itself.
            stage_index = report.task_id.stage_index
            partition = report.task_id.partition
            if partition in job.stage_remaining.get(stage_index, set()):
                job.attempts[(stage_index, partition)] = (
                    job.attempts.get((stage_index, partition), 0) + 1
                )
                self._resubmit_task(job, stage_index, partition)
            return
        if isinstance(err, SerializationError):
            # A payload that cannot cross the executor boundary is a
            # configuration/programming error, not a task fault: surface
            # it unwrapped so callers see the named capture directly.
            job.error = err
        else:
            job.error = TaskError(str(report.task_id), err or ReproError("unknown"))
        job.done.set()
        self._finish_job_spans(job)

    def _invalidate_map_output(
        self, job: JobState, shuffle_id: int, map_index: int
    ) -> None:
        if shuffle_id < 0:
            return
        dep = (shuffle_id, map_index)
        if dep not in job.map_status:
            return
        del job.map_status[dep]
        job.map_epochs.pop(dep, None)
        producer = job.producers.get(shuffle_id)
        if producer is None:
            return
        job.stage_remaining[producer].add(map_index)
        job.attempts[(producer, map_index)] = (
            job.attempts.get((producer, map_index), 0) + 1
        )
        self._resubmit_task(job, producer, map_index)

    # ------------------------------------------------------------------
    # Worker-loss recovery (§3.3)
    # ------------------------------------------------------------------
    def on_worker_lost(self, worker_id: str, reason: str = "worker lost") -> None:
        with self._lock:
            self._worker_lost_locked(worker_id, reason=reason)
            self._cv.notify_all()

    def _worker_lost_locked(self, worker_id: str, reason: str = "worker lost") -> None:
        if worker_id not in self._alive:
            return
        self._alive.discard(worker_id)
        self._draining.discard(worker_id)
        self.metrics.counter(COUNT_RECOVERIES).add(1)
        self.transport.mark_dead(worker_id)
        self._bump_template_epoch()
        self._annotate_scale_event(worker_id, "lost", reason)
        if self.journal is not None:
            self.journal.record_membership(
                sorted(self._alive - self._draining),
                template_epoch=self._template_epoch,
            )
        for job in self.jobs.values():
            if not job.is_finished():
                self._note_fault(job, f"worker {worker_id} lost: {reason}")
        if not self._alive:
            for job in self.jobs.values():
                if not job.is_finished():
                    job.error = WorkerLost(worker_id, f"last worker lost ({reason})")
                    job.done.set()
                    self._finish_job_spans(job)
            return
        # Recovery tasks across all in-flight micro-batches are resubmitted
        # together — this is the paper's parallel recovery.
        recovery_span = self.tracer.start_span(
            SPAN_RECOVERY, root=True, actor=DRIVER_ID, worker=worker_id
        )
        with recovery_span:
            resubmitted = 0
            jobs_touched = 0
            for job in self.jobs.values():
                if job.is_finished():
                    continue
                count = self._recover_job(job, worker_id)
                resubmitted += count
                jobs_touched += 1 if count else 0
            recovery_span.annotate(
                resubmitted=resubmitted, jobs_recovered=jobs_touched
            )

    def _recover_job(self, job: JobState, worker_id: str) -> int:
        """Resubmit a job's work lost with ``worker_id``; returns how many
        tasks were resubmitted."""
        resubmitted = 0
        # 1. Map outputs lost with the machine, still needed downstream.
        lost_deps = [d for d, w in job.map_status.items() if w == worker_id]
        for shuffle_id, map_index in lost_deps:
            consumer = job.consumers.get(shuffle_id)
            still_needed = consumer is not None and bool(
                job.stage_remaining.get(consumer)
            )
            del job.map_status[(shuffle_id, map_index)]
            job.map_epochs.pop((shuffle_id, map_index), None)
            if not still_needed:
                continue
            producer = job.producers[shuffle_id]
            if map_index not in job.stage_remaining[producer]:
                job.stage_remaining[producer].add(map_index)
                job.attempts[(producer, map_index)] = (
                    job.attempts.get((producer, map_index), 0) + 1
                )
                self._resubmit_task(job, producer, map_index)
                resubmitted += 1
        # 2. Unfinished tasks that were placed on the lost machine.
        for (stage_index, partition), where in sorted(job.task_locations.items()):
            if where != worker_id:
                continue
            if partition not in job.stage_remaining.get(stage_index, set()):
                continue
            job.attempts[(stage_index, partition)] = (
                job.attempts.get((stage_index, partition), 0) + 1
            )
            self._resubmit_task(job, stage_index, partition)
            resubmitted += 1
        return resubmitted

    def _resubmit_task(
        self,
        job: JobState,
        stage_index: int,
        partition: int,
        exclude: Optional[str] = None,
    ) -> None:
        """Re-place one task on a live worker (caller holds the lock)."""
        attempts = job.attempts.get((stage_index, partition), 0)
        if attempts > self.conf.max_task_retries:
            # Recovery budget exhausted: fail the job with the fault
            # history instead of resubmitting forever.
            job.error = RecoveryBudgetExceeded(
                f"task (stage={stage_index}, partition={partition}) "
                f"of job {job.job_id}",
                attempts,
                job.fault_log,
            )
            job.done.set()
            self._finish_job_spans(job)
            return
        stage = job.plan.stages[stage_index]
        if self.tracer.enabled:
            # Parent to the batch span so resubmissions (and the recovered
            # tasks' compute spans, via the stage context on the new
            # descriptor) stay inside the batch's trace tree.
            self.tracer.instant(
                EVENT_TASK_RESUBMIT,
                parent=job.batch_span,
                actor=DRIVER_ID,
                stage=stage_index,
                partition=partition,
                attempt=job.attempts.get((stage_index, partition), 0),
            )
        if job.pre_scheduled:
            worker_id = self._pick_worker(exclude=exclude)
            # Recompute downstream pointers against *current* locations of
            # the consumer tasks ("the scheduler also updates the active
            # upstream tasks to send outputs ... to the new machines").
            downstream: Dict[int, str] = {}
            if stage.output_shuffle is not None:
                spec = stage.output_shuffle
                consumer = job.consumers.get(spec.shuffle_id)
                if consumer is not None:
                    if spec.structure == "tree":
                        relevant = [partition // spec.fan_in]
                    else:
                        relevant = list(range(spec.num_reducers))
                    for r in relevant:
                        where = job.task_locations.get((consumer, r))
                        if where is not None and where in self._alive:
                            downstream[r] = where
            desc = TaskDescriptor(
                task_id=TaskId(
                    job.job_id,
                    stage_index,
                    partition,
                    job.attempts.get((stage_index, partition), 0),
                ),
                plan=job.plan,
                pre_scheduled=True,
                deps=stage.task_dependencies(partition),
                downstream=downstream,
                trace_ctx=self._stage_ctx(job, stage_index),
            )
            job.task_locations[(stage_index, partition)] = worker_id
            job.task_started[(stage_index, partition)] = self.clock.now()
            job.relocated.add((stage_index, partition))
            self.metrics.counter(COUNT_TASKS_LAUNCHED).add(1)
            self.metrics.counter(COUNT_LAUNCH_RPCS).add(1)
            delivered = self.transport.try_call(
                worker_id, "launch_tasks", [desc], **self._epoch_kwargs()
            )
            if not delivered:
                # A recovery launch that silently vanishes wedges the task
                # forever.  One lost message is not proof the worker died
                # (the heartbeat monitor owns that verdict) — declaring it
                # lost here cascades: the recovery launches it triggers can
                # themselves fail and take down the next worker.  Re-place
                # just this task instead; the attempt budget bounds the
                # loop, and _pick_worker falls back to the excluded worker
                # when it is the last one standing.
                self._note_fault(
                    job,
                    f"recovery launch to {worker_id} failed "
                    f"(stage={stage_index}, partition={partition})",
                )
                if partition in job.stage_remaining.get(stage_index, set()):
                    job.attempts[(stage_index, partition)] = attempts + 1
                    self._resubmit_task(job, stage_index, partition, exclude=worker_id)
                return
            if desc.deps:
                # Pre-populate dependencies already satisfied (§3.3).
                completed = [
                    (dep, loc, job.map_epochs.get(dep, 0))
                    for dep, loc in job.map_status.items()
                    if dep in desc.deps
                ]
                if completed and not self.transport.try_call(
                    worker_id,
                    "pre_populate",
                    job.job_id,
                    completed,
                    **self._epoch_kwargs(),
                ):
                    if not self.transport.try_call(
                        worker_id,
                        "pre_populate",
                        job.job_id,
                        completed,
                        **self._epoch_kwargs(),
                    ):
                        # Task delivered but its dependency seed was not:
                        # it would park forever.  Same remedy as a failed
                        # launch — re-place the task, don't condemn the
                        # worker over lost messages (the parked duplicate
                        # is harmless: first completion wins).
                        self._note_fault(
                            job,
                            f"pre_populate to {worker_id} failed "
                            f"(stage={stage_index}, partition={partition})",
                        )
                        if partition in job.stage_remaining.get(stage_index, set()):
                            job.attempts[(stage_index, partition)] = attempts + 1
                            self._resubmit_task(
                                job, stage_index, partition, exclude=worker_id
                            )
        else:
            try:
                self._launch_barrier_task(job, stage_index, partition)
            except WorkerLost:
                job.blocked.add((stage_index, partition))
