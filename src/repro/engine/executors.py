"""Pluggable executor backends: how a worker actually runs its slots.

The worker's control plane (local scheduler, block store, notifications,
reports) is backend-agnostic — Naiad-style, the scheduling logic never
cares where compute happens.  A backend supplies exactly two operations:

* :meth:`ExecutorBackend.submit` — run a task *orchestration* callable on
  one of the worker's slots (the callable does fetching, block-store
  writes, downstream notification, and reporting, so it must stay in the
  worker's process);
* :meth:`ExecutorBackend.run_compute` — run the pure compute core of one
  task (source/merge → pipeline → bucketing/action) and return a
  :class:`ComputeOutcome`.

Backends (selected via ``EngineConf.executor.backend``):

``inline``
    ``submit`` calls synchronously in the caller's thread.  Fully
    deterministic; used by tests and sim calibration.
``thread``
    A slot pool of threads per worker (historical default).  Cheap, but
    CPU-bound user code serializes on the GIL.
``process``
    Slot threads drive a spawn-safe ``multiprocessing`` pool: the stage
    closure crosses the boundary as pickled bytes
    (:mod:`repro.dag.serde`), is cached child-side by token so a group of
    tasks ships each stage once (the same amortization group scheduling
    gives launch RPCs, §3.1), and results return as pickled outcomes the
    worker turns into ``TaskReport``s.  Trace contexts ride the payload
    both ways, Envelope-style, so spans survive the process boundary.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
import time
import traceback
from dataclasses import dataclass
from queue import SimpleQueue
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.config import EngineConf
from repro.common.errors import SerializationError
from repro.dag.plan import StageSpec
from repro.dag.serde import dumps_closure, loads_closure
from repro.obs.trace import SpanContext

__all__ = [
    "ComputeOutcome",
    "ComputeRequest",
    "ExecutorBackend",
    "InlineExecutor",
    "ProcessExecutor",
    "ThreadExecutor",
    "create_backend",
    "run_stage_compute",
]

# Child-side stage cache bound; evicted wholesale (stages are small).
_CHILD_CACHE_LIMIT = 64
# Parent-side serialized-stage cache bound (entries hold plan refs).
_PARENT_CACHE_LIMIT = 64


@dataclass
class ComputeRequest:
    """The pure-compute slice of one task attempt, backend-portable."""

    job_id: int
    stage: StageSpec
    partition: int
    # ``fetched[input_shuffle_index] = [bucket, ...]``; None for source
    # stages (inputs were pulled by the worker — transport stays parent-side).
    fetched: Optional[List[List[List]]]
    compute_delay_s: float = 0.0
    # Active span context at submission; carried across the boundary and
    # echoed back so the worker can parent an exec span under it.
    trace_ctx: Optional[SpanContext] = None


@dataclass
class ComputeOutcome:
    """What came back: either shuffle buckets or an action result."""

    kind: str  # "map" | "result"
    buckets: Optional[Dict[int, List]] = None
    result: Any = None
    elapsed_s: float = 0.0
    trace_ctx: Optional[SpanContext] = None
    backend: str = "inline"


def run_stage_compute(
    stage: StageSpec,
    partition: int,
    fetched: Optional[List[List[List]]],
    compute_delay_s: float = 0.0,
) -> Tuple[str, Optional[Dict[int, List]], Any]:
    """The backend-independent compute core of one task: evaluate the
    stage's closures over one partition.  Runs in the worker's process
    for inline/thread backends and inside a pool child for process."""
    if stage.source_fn is not None:
        records = iter(stage.source_fn(partition))
    else:
        assert stage.input_merge is not None
        records = stage.input_merge(partition, fetched)
    records = stage.pipeline(partition, records)
    if compute_delay_s > 0:
        time.sleep(compute_delay_s)
    if stage.output_shuffle is not None:
        assert stage.map_output_fn is not None
        return ("map", stage.map_output_fn(partition, records), None)
    assert stage.action_fn is not None
    return ("result", None, stage.action_fn(partition, records))


class ExecutorBackend:
    """Interface between the worker's control plane and its slots."""

    name: str = "abstract"

    def submit(self, fn: Callable[..., None], *args: Any) -> None:
        """Schedule one task-orchestration callable on a slot."""
        raise NotImplementedError

    def run_compute(self, request: ComputeRequest) -> ComputeOutcome:
        """Execute the pure compute core of one task."""
        raise NotImplementedError

    def shutdown(self, wait: bool = True) -> None:
        """Release every slot resource (threads, child processes)."""

    @property
    def slot_thread_names(self) -> List[str]:
        """Names of live slot threads (empty for the inline backend)."""
        return []


class InlineExecutor(ExecutorBackend):
    """Deterministic backend: tasks run synchronously in the submitting
    thread, so a single-threaded test observes one fixed interleaving.

    With ``deferred=True`` (selected automatically under the tcp
    transport) submissions run on ONE dedicated slot thread instead of
    the caller's: execution stays strictly serialized, but an RPC handler
    thread that delivered ``launch_tasks`` over a socket returns
    immediately.  Running the task in that handler would deadlock the
    cluster — the task's completion report calls back into a driver that
    is still holding its scheduling lock waiting for the launch call to
    return (in-process, the driver's re-entrant lock hides this because
    caller and handler share a thread)."""

    name = "inline"

    def __init__(self, worker_id: str = "inline", deferred: bool = False):
        self._pool = _SlotPool(worker_id, 1) if deferred else None

    def submit(self, fn: Callable[..., None], *args: Any) -> None:
        if self._pool is not None:
            self._pool.submit(fn, *args)
        else:
            fn(*args)

    def run_compute(self, request: ComputeRequest) -> ComputeOutcome:
        return _local_outcome(request, self.name)

    def shutdown(self, wait: bool = True) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait)

    @property
    def slot_thread_names(self) -> List[str]:
        return [] if self._pool is None else self._pool.thread_names


def _local_outcome(request: ComputeRequest, backend: str) -> ComputeOutcome:
    start = time.perf_counter()
    kind, buckets, result = run_stage_compute(
        request.stage, request.partition, request.fetched, request.compute_delay_s
    )
    return ComputeOutcome(
        kind=kind,
        buckets=buckets,
        result=result,
        elapsed_s=time.perf_counter() - start,
        trace_ctx=request.trace_ctx,
        backend=backend,
    )


class _SlotPool:
    """A fixed pool of daemon worker threads with controllable shutdown.

    Thread names keep the historical ``{worker_id}-slot`` prefix — tests
    and examples identify the executing worker through it."""

    def __init__(self, worker_id: str, slots: int):
        self._queue: SimpleQueue = SimpleQueue()
        self._threads = [
            threading.Thread(
                target=self._loop, name=f"{worker_id}-slot-{i}", daemon=True
            )
            for i in range(slots)
        ]
        for t in self._threads:
            t.start()

    def submit(self, fn: Callable[..., None], *args: Any) -> None:
        self._queue.put((fn, args))

    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            fn, args = item
            try:
                fn(*args)
            except Exception:  # noqa: BLE001 - orchestration callables
                # already report their own failures; never kill the slot.
                pass

    def shutdown(self, wait: bool = True, timeout_s: float = 1.0) -> None:
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for t in self._threads:
                t.join(timeout=timeout_s)

    @property
    def thread_names(self) -> List[str]:
        return [t.name for t in self._threads if t.is_alive()]


class ThreadExecutor(ExecutorBackend):
    """Thread-pool backend (the historical default): compute runs in the
    slot thread itself, sharing the GIL with every other slot."""

    name = "thread"

    def __init__(self, worker_id: str, slots: int):
        self._pool = _SlotPool(worker_id, slots)

    def submit(self, fn: Callable[..., None], *args: Any) -> None:
        self._pool.submit(fn, *args)

    def run_compute(self, request: ComputeRequest) -> ComputeOutcome:
        return _local_outcome(request, self.name)

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)

    @property
    def slot_thread_names(self) -> List[str]:
        return self._pool.thread_names


# ----------------------------------------------------------------------
# Process backend: child-side entry point and cache.
# ----------------------------------------------------------------------

# token -> deserialized StageSpec, per pool child.
_child_stage_cache: Dict[str, StageSpec] = {}


def _child_run(token: str, stage_blob: Optional[bytes], task_blob: bytes) -> bytes:
    """Runs inside a pool child: resolve the stage (from cache or blob),
    execute the compute core, pickle the outcome back.

    Every failure mode is folded into the returned bytes so the parent
    never sees a raw pool-level PicklingError."""
    stage = _child_stage_cache.get(token)
    if stage is None:
        if stage_blob is None:
            # A child that has not seen this stage yet (pool siblings race
            # on first send); the parent retries with the blob attached.
            return pickle.dumps(("stage_miss",))
        if len(_child_stage_cache) >= _CHILD_CACHE_LIMIT:
            _child_stage_cache.clear()
        stage = loads_closure(stage_blob)
        _child_stage_cache[token] = stage
    partition, fetched, compute_delay_s, trace_ctx = pickle.loads(task_blob)
    start = time.perf_counter()
    try:
        kind, buckets, result = run_stage_compute(
            stage, partition, fetched, compute_delay_s
        )
        elapsed = time.perf_counter() - start
        try:
            return pickle.dumps(("ok", kind, buckets, result, elapsed, trace_ctx))
        except Exception as err:  # noqa: BLE001 - unpicklable records
            failure = SerializationError(
                f"task produced records that cannot return from the process "
                f"executor: {err}"
            )
            return pickle.dumps(("error", failure, "", elapsed, trace_ctx))
    except Exception as err:  # noqa: BLE001 - user code may raise anything
        elapsed = time.perf_counter() - start
        tb = traceback.format_exc()
        try:
            return pickle.dumps(("error", err, tb, elapsed, trace_ctx))
        except Exception:  # noqa: BLE001 - exception itself unpicklable
            substitute = RuntimeError(f"{type(err).__name__}: {err}")
            return pickle.dumps(("error", substitute, tb, elapsed, trace_ctx))


@dataclass
class _StageEntry:
    stage: StageSpec  # strong ref keeps id(stage) stable while cached
    token: str
    blob: bytes
    shipped: bool = False


class ProcessExecutor(ExecutorBackend):
    """Multi-core backend: slot threads drive a spawn-safe process pool.

    The expensive part of IPC — serializing the stage closure — is paid
    once per stage, not once per task: the parent caches the pickled
    stage under a token, children cache the deserialized stage, and task
    payloads after the first carry only the token (with a miss-retry for
    pool siblings that have not seen it)."""

    name = "process"

    def __init__(self, worker_id: str, slots: int, start_method: str = "spawn"):
        self.worker_id = worker_id
        self._slots = slots
        self._start_method = start_method
        self._slot_pool = _SlotPool(worker_id, slots)
        self._pool: Optional[Any] = None
        self._pool_lock = threading.Lock()
        self._stages: Dict[int, _StageEntry] = {}
        self._stage_lock = threading.Lock()
        self._token_seq = 0
        self._closed = False

    def submit(self, fn: Callable[..., None], *args: Any) -> None:
        self._slot_pool.submit(fn, *args)

    # -- pool management ------------------------------------------------
    def _ensure_pool(self) -> Any:
        with self._pool_lock:
            if self._closed:
                raise RuntimeError(f"{self.worker_id}: executor is shut down")
            if self._pool is None:
                ctx = multiprocessing.get_context(self._start_method)
                self._pool = ctx.Pool(processes=self._slots)
            return self._pool

    def _stage_entry(self, stage: StageSpec) -> _StageEntry:
        with self._stage_lock:
            entry = self._stages.get(id(stage))
            if entry is not None and entry.stage is stage:
                return entry
            if len(self._stages) >= _PARENT_CACHE_LIMIT:
                self._stages.clear()
            blob = dumps_closure(stage, context=f"stage {stage.stage_index} payload")
            self._token_seq += 1
            entry = _StageEntry(stage, f"{self.worker_id}:{self._token_seq}", blob)
            self._stages[id(stage)] = entry
            return entry

    # -- compute --------------------------------------------------------
    def run_compute(self, request: ComputeRequest) -> ComputeOutcome:
        entry = self._stage_entry(request.stage)
        task_blob = dumps_closure(
            (request.partition, request.fetched, request.compute_delay_s,
             request.trace_ctx),
            context=f"task inputs for partition {request.partition}",
        )
        pool = self._ensure_pool()
        stage_blob = None if entry.shipped else entry.blob
        while True:
            raw = pool.apply(_child_run, (entry.token, stage_blob, task_blob))
            response = pickle.loads(raw)
            if response[0] == "stage_miss":
                stage_blob = entry.blob  # retry, blob attached
                continue
            break
        entry.shipped = True
        if response[0] == "error":
            _, err, remote_tb, elapsed, _ctx = response
            if remote_tb:
                err.remote_traceback = remote_tb
            raise err
        _, kind, buckets, result, elapsed, echoed_ctx = response
        return ComputeOutcome(
            kind=kind,
            buckets=buckets,
            result=result,
            elapsed_s=elapsed,
            trace_ctx=echoed_ctx,
            backend=self.name,
        )

    def shutdown(self, wait: bool = True) -> None:
        self._slot_pool.shutdown(wait=wait)
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            if wait:
                pool.join()
        with self._stage_lock:
            self._stages.clear()

    @property
    def slot_thread_names(self) -> List[str]:
        return self._slot_pool.thread_names


def create_backend(conf: EngineConf, worker_id: str) -> ExecutorBackend:
    """Build the backend ``conf.executor`` selects, sized to the worker's
    slot count."""
    backend = conf.executor.backend
    if backend == "inline":
        # Over sockets, synchronous submit would run tasks inside RPC
        # handler threads and deadlock against the driver's lock; keep
        # serialized semantics on one slot thread instead.
        return InlineExecutor(worker_id, deferred=conf.transport.backend == "tcp")
    if backend == "thread":
        return ThreadExecutor(worker_id, conf.slots_per_worker)
    if backend == "process":
        return ProcessExecutor(
            worker_id, conf.slots_per_worker, conf.executor.start_method
        )
    raise ValueError(f"unknown executor backend {backend!r}")  # pragma: no cover
