"""Per-worker shuffle block store.

Map tasks "materialize the output on local disk" (§3.2); here the backing
store is an in-memory dict per worker.  Blocks are keyed by
``(job_id, shuffle_id, map_index)`` with one bucket list per reduce
partition.  Losing a worker loses its store — exactly the failure mode the
paper's recovery protocol handles.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from repro.common.errors import FetchFailed

BlockKey = Tuple[int, int, int]  # (job_id, shuffle_id, map_index)


class BlockStore:
    """Thread-safe map-output storage for one worker."""

    def __init__(self, worker_id: str):
        self.worker_id = worker_id
        self._blocks: Dict[BlockKey, Dict[int, List]] = {}
        self._lock = threading.Lock()

    def put_map_output(
        self, job_id: int, shuffle_id: int, map_index: int, buckets: Dict[int, List]
    ) -> None:
        with self._lock:
            self._blocks[(job_id, shuffle_id, map_index)] = buckets

    def has_map_output(self, job_id: int, shuffle_id: int, map_index: int) -> bool:
        with self._lock:
            return (job_id, shuffle_id, map_index) in self._blocks

    def get_bucket(
        self, job_id: int, shuffle_id: int, map_index: int, reduce_index: int
    ) -> List:
        """Fetch one reduce partition's slice of one map output.

        Raises :class:`FetchFailed` when the block is absent (the caller
        treats this like fetching from a crashed machine)."""
        with self._lock:
            block = self._blocks.get((job_id, shuffle_id, map_index))
            if block is None:
                raise FetchFailed(shuffle_id, map_index, self.worker_id)
            return block.get(reduce_index, [])

    def bucket_sizes(
        self, job_id: int, shuffle_id: int, map_index: int
    ) -> Optional[Dict[int, int]]:
        with self._lock:
            block = self._blocks.get((job_id, shuffle_id, map_index))
            if block is None:
                return None
            return {r: len(v) for r, v in block.items()}

    def drop_job(self, job_id: int) -> int:
        """Garbage-collect every block belonging to ``job_id``."""
        with self._lock:
            doomed = [k for k in self._blocks if k[0] == job_id]
            for k in doomed:
                del self._blocks[k]
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._blocks.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._blocks)
