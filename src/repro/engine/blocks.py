"""Per-worker shuffle block store.

Map tasks "materialize the output on local disk" (§3.2); here the backing
store is an in-memory dict per worker.  Blocks are keyed by
``(job_id, shuffle_id, map_index)`` with one bucket list per reduce
partition.  Losing a worker loses its store — exactly the failure mode the
paper's recovery protocol handles.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.injector import chaos_hit
from repro.chaos.plan import SITE_BLOCKS_FETCH
from repro.common.errors import FetchFailed

BlockKey = Tuple[int, int, int]  # (job_id, shuffle_id, map_index)

# Per-request outcome markers for get_buckets (these literals are part of
# the fetch_buckets wire protocol; see Worker.fetch_buckets).
BUCKET_OK = "ok"
BUCKET_MISSING = "missing"


class BlockStore:
    """Thread-safe map-output storage for one worker."""

    def __init__(self, worker_id: str):
        self.worker_id = worker_id
        self._blocks: Dict[BlockKey, Dict[int, List]] = {}
        self._records = 0
        self._lock = threading.Lock()

    @staticmethod
    def _block_records(buckets: Dict[int, List]) -> int:
        return sum(len(v) for v in buckets.values())

    def put_map_output(
        self, job_id: int, shuffle_id: int, map_index: int, buckets: Dict[int, List]
    ) -> None:
        key = (job_id, shuffle_id, map_index)
        with self._lock:
            prior = self._blocks.get(key)
            if prior is not None:
                self._records -= self._block_records(prior)
            self._blocks[key] = buckets
            self._records += self._block_records(buckets)

    def has_map_output(self, job_id: int, shuffle_id: int, map_index: int) -> bool:
        with self._lock:
            return (job_id, shuffle_id, map_index) in self._blocks

    def get_bucket(
        self, job_id: int, shuffle_id: int, map_index: int, reduce_index: int
    ) -> List:
        """Fetch one reduce partition's slice of one map output.

        Raises :class:`FetchFailed` when the block is absent (the caller
        treats this like fetching from a crashed machine)."""
        with self._lock:
            self._maybe_drop_block_locked((job_id, shuffle_id, map_index))
            block = self._blocks.get((job_id, shuffle_id, map_index))
            if block is None:
                raise FetchFailed(shuffle_id, map_index, self.worker_id)
            return block.get(reduce_index, [])

    def get_buckets(
        self, job_id: int, requests: Sequence[Tuple[int, int, int]]
    ) -> List[Tuple[str, Optional[List]]]:
        """Serve many ``(shuffle_id, map_index, reduce_index)`` lookups in
        one consistent pass.

        Returns one ``(BUCKET_OK, bucket)`` or ``(BUCKET_MISSING, None)``
        per request, in request order.  Unlike :meth:`get_bucket` this
        never raises for an absent block: the batched fetch path needs
        per-map-output partial-failure semantics, so absence is data —
        the caller raises :class:`FetchFailed` for exactly the missing
        outputs (§3.3 recovery unchanged)."""
        out: List[Tuple[str, Optional[List]]] = []
        with self._lock:
            if requests:
                sid, mid, _ = requests[0]
                self._maybe_drop_block_locked((job_id, sid, mid))
            for shuffle_id, map_index, reduce_index in requests:
                block = self._blocks.get((job_id, shuffle_id, map_index))
                if block is None:
                    out.append((BUCKET_MISSING, None))
                else:
                    out.append((BUCKET_OK, block.get(reduce_index, [])))
        return out

    def _maybe_drop_block_locked(self, key: BlockKey) -> None:
        """Chaos hook: delete the looked-up block so the caller observes a
        missing map output (the disk-loss failure mode of §3.3).  Called
        under ``self._lock``; the only scheduled kind at this site is
        ``block_delete``."""
        if chaos_hit(SITE_BLOCKS_FETCH, target=self.worker_id) is None:
            return
        buckets = self._blocks.pop(key, None)
        if buckets is not None:
            self._records -= self._block_records(buckets)

    def bucket_sizes(
        self, job_id: int, shuffle_id: int, map_index: int
    ) -> Optional[Dict[int, int]]:
        with self._lock:
            block = self._blocks.get((job_id, shuffle_id, map_index))
            if block is None:
                return None
            return {r: len(v) for r, v in block.items()}

    @property
    def stored_records(self) -> int:
        """Total records held (record counts stand in for bytes, as in
        :class:`~repro.engine.task.TaskReport.output_sizes`)."""
        with self._lock:
            return self._records

    def drop_job(self, job_id: int) -> int:
        """Garbage-collect every block belonging to ``job_id``."""
        with self._lock:
            doomed = [k for k in self._blocks if k[0] == job_id]
            for k in doomed:
                self._records -= self._block_records(self._blocks[k])
                del self._blocks[k]
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._blocks.clear()
            self._records = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._blocks)
