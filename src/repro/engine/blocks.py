"""Per-worker shuffle block store.

Map tasks "materialize the output on local disk" (§3.2); here the backing
store is an in-memory dict per worker.  Blocks are keyed by
``(job_id, shuffle_id, map_index)`` with one bucket list per reduce
partition.  Losing a worker loses its store — exactly the failure mode the
paper's recovery protocol handles.

Two raw-speed options ride on top (see "Raw speed" in
``docs/networking.md``):

* ``record_blocks`` stores each bucket as a columnar
  :class:`~repro.data.blocks.RecordBlock` instead of ``List[tuple]``, so
  buckets cross process/socket boundaries as raw column buffers;
* ``shm_shuffle`` additionally publishes every map output into a
  ``multiprocessing.shared_memory`` segment via the process-global
  :class:`~repro.data.shm.SegmentRegistry`, letting co-located reducers
  skip the ``fetch_buckets`` RPC entirely.

Every block also carries the *epoch* (producing task attempt) it was
written under: a re-run of a map task publishes a higher epoch, and
readers that require a minimum epoch treat older co-named blocks as
missing rather than silently serving stale data.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.injector import chaos_hit
from repro.chaos.plan import SITE_BLOCKS_FETCH
from repro.common.errors import FetchFailed
from repro.common.metrics import (
    COUNT_BLOCKS_ENCODE_MS,
    COUNT_BLOCKS_ENCODED,
    MetricsRegistry,
)
from repro.data.blocks import RecordBlock, to_record_block

BlockKey = Tuple[int, int, int]  # (job_id, shuffle_id, map_index)

# Per-request outcome markers for get_buckets (these literals are part of
# the fetch_buckets wire protocol; see Worker.fetch_buckets).
BUCKET_OK = "ok"
BUCKET_MISSING = "missing"


class BlockStore:
    """Thread-safe map-output storage for one worker."""

    def __init__(
        self,
        worker_id: str,
        record_blocks: bool = False,
        shm_shuffle: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.worker_id = worker_id
        self.record_blocks = record_blocks
        self.metrics = metrics
        # Bound the hot-path counters once: put_map_output runs per task,
        # and the name->counter lookup takes the registry lock each time.
        self._c_encoded = (
            metrics.counter(COUNT_BLOCKS_ENCODED) if metrics else None
        )
        self._c_encode_ms = (
            metrics.counter(COUNT_BLOCKS_ENCODE_MS) if metrics else None
        )
        self._blocks: Dict[BlockKey, Dict[int, List]] = {}
        self._epochs: Dict[BlockKey, int] = {}
        self._records = 0
        self._lock = threading.Lock()
        self._shm = None
        if shm_shuffle:
            from repro.data.shm import segment_registry

            registry = segment_registry()
            if registry.available:
                self._shm = registry
                registry.attach()

    @property
    def shm(self):
        """The process-global segment registry, or None when the shm
        shuffle is off (readers use this to probe for co-located blocks)."""
        return self._shm

    def release_shm(self) -> None:
        """Unlink every segment this store published (worker kill or
        shutdown): a dead machine's blocks must be unreachable so §3.3
        recovery triggers instead of peers reading ghost data.  Detaching
        the last store also drains the registry's free pool."""
        if self._shm is not None:
            registry, self._shm = self._shm, None
            registry.drop_owner(self.worker_id)
            registry.detach()

    @staticmethod
    def _block_records(buckets: Dict[int, List]) -> int:
        return sum(len(v) for v in buckets.values())

    def put_map_output(
        self,
        job_id: int,
        shuffle_id: int,
        map_index: int,
        buckets: Dict[int, List],
        epoch: int = 0,
    ) -> None:
        if self.record_blocks and buckets:
            start = time.perf_counter()
            buckets = {
                r: to_record_block(bucket) for r, bucket in buckets.items()
            }
            if self._c_encoded is not None:
                self._c_encoded.add(
                    sum(
                        1
                        for b in buckets.values()
                        if isinstance(b, RecordBlock) and b.is_typed
                    )
                )
                self._c_encode_ms.add((time.perf_counter() - start) * 1000.0)
        key = (job_id, shuffle_id, map_index)
        with self._lock:
            prior = self._blocks.get(key)
            if prior is not None:
                self._records -= self._block_records(prior)
            self._blocks[key] = buckets
            self._epochs[key] = epoch
            self._records += self._block_records(buckets)
        if self._shm is not None:
            start = time.perf_counter()
            self._shm.publish(
                self.worker_id, job_id, shuffle_id, map_index, buckets, epoch
            )
            if self._c_encode_ms is not None:
                self._c_encode_ms.add((time.perf_counter() - start) * 1000.0)

    def has_map_output(
        self, job_id: int, shuffle_id: int, map_index: int, min_epoch: int = 0
    ) -> bool:
        key = (job_id, shuffle_id, map_index)
        with self._lock:
            if key not in self._blocks:
                return False
            return self._epochs.get(key, 0) >= min_epoch

    def get_bucket(
        self,
        job_id: int,
        shuffle_id: int,
        map_index: int,
        reduce_index: int,
        min_epoch: int = 0,
    ) -> List:
        """Fetch one reduce partition's slice of one map output.

        Raises :class:`FetchFailed` when the block is absent — or written
        under an older epoch than required (a stale co-named block from a
        superseded attempt is *missing*, not data).  The caller treats
        this like fetching from a crashed machine."""
        key = (job_id, shuffle_id, map_index)
        with self._lock:
            self._maybe_drop_block_locked(key)
            block = self._blocks.get(key)
            if block is None or self._epochs.get(key, 0) < min_epoch:
                raise FetchFailed(shuffle_id, map_index, self.worker_id)
            return block.get(reduce_index, [])

    def get_buckets(
        self, job_id: int, requests: Sequence[Tuple]
    ) -> List[Tuple[str, Optional[List]]]:
        """Serve many ``(shuffle_id, map_index, reduce_index[,
        min_epoch])`` lookups in one consistent pass.

        Returns one ``(BUCKET_OK, bucket)`` or ``(BUCKET_MISSING, None)``
        per request, in request order.  Unlike :meth:`get_bucket` this
        never raises for an absent block: the batched fetch path needs
        per-map-output partial-failure semantics, so absence is data —
        the caller raises :class:`FetchFailed` for exactly the missing
        outputs (§3.3 recovery unchanged).  A block held at an older
        epoch than a request's ``min_epoch`` is reported missing for the
        same reason."""
        out: List[Tuple[str, Optional[List]]] = []
        with self._lock:
            if requests:
                sid, mid = requests[0][0], requests[0][1]
                self._maybe_drop_block_locked((job_id, sid, mid))
            for request in requests:
                shuffle_id, map_index, reduce_index = request[:3]
                min_epoch = request[3] if len(request) > 3 else 0
                key = (job_id, shuffle_id, map_index)
                block = self._blocks.get(key)
                if block is None or self._epochs.get(key, 0) < min_epoch:
                    out.append((BUCKET_MISSING, None))
                else:
                    out.append((BUCKET_OK, block.get(reduce_index, [])))
        return out

    def _maybe_drop_block_locked(self, key: BlockKey) -> None:
        """Chaos hook: delete the looked-up block so the caller observes a
        missing map output (the disk-loss failure mode of §3.3).  Called
        under ``self._lock``; the only scheduled kind at this site is
        ``block_delete``.  The block's shared-memory segment is unlinked
        too — the shm fast path must not serve a block chaos destroyed."""
        if chaos_hit(SITE_BLOCKS_FETCH, target=self.worker_id) is None:
            return
        buckets = self._blocks.pop(key, None)
        self._epochs.pop(key, None)
        if buckets is not None:
            self._records -= self._block_records(buckets)
            if self._shm is not None:
                self._shm.unpublish(self.worker_id, *key)

    def bucket_sizes(
        self, job_id: int, shuffle_id: int, map_index: int
    ) -> Optional[Dict[int, int]]:
        with self._lock:
            block = self._blocks.get((job_id, shuffle_id, map_index))
            if block is None:
                return None
            return {r: len(v) for r, v in block.items()}

    @property
    def stored_records(self) -> int:
        """Total records held (record counts stand in for bytes, as in
        :class:`~repro.engine.task.TaskReport.output_sizes`)."""
        with self._lock:
            return self._records

    def drop_job(self, job_id: int) -> int:
        """Garbage-collect every block belonging to ``job_id``."""
        with self._lock:
            doomed = [k for k in self._blocks if k[0] == job_id]
            for k in doomed:
                self._records -= self._block_records(self._blocks[k])
                del self._blocks[k]
                self._epochs.pop(k, None)
        if self._shm is not None:
            self._shm.drop_job(self.worker_id, job_id)
        return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._blocks.clear()
            self._epochs.clear()
            self._records = 0
        if self._shm is not None:
            self._shm.drop_owner(self.worker_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._blocks)
