"""The real (multi-backend) BSP execution engine.

Substrate equivalent to the Apache Spark core the paper modified:
a centralized :class:`~repro.engine.driver.Driver`, worker machines with
executor slots and a pre-scheduling local scheduler, an in-memory shuffle
block store, and worker-loss recovery per §3.3 of the paper.  Each
worker's slots run on a pluggable :class:`ExecutorBackend` (inline,
thread, or true multi-core process pools — see ``docs/executors.md``).
"""

from repro.engine.cluster import LocalCluster
from repro.engine.driver import Driver, JobState
from repro.engine.executors import (
    ComputeOutcome,
    ComputeRequest,
    ExecutorBackend,
    InlineExecutor,
    ProcessExecutor,
    ThreadExecutor,
)
from repro.engine.rpc import Transport
from repro.engine.task import TaskDescriptor, TaskId, TaskReport
from repro.engine.worker import Worker

__all__ = [
    "LocalCluster",
    "Driver",
    "JobState",
    "Transport",
    "TaskDescriptor",
    "TaskId",
    "TaskReport",
    "Worker",
    "ExecutorBackend",
    "InlineExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "ComputeRequest",
    "ComputeOutcome",
]
