"""TCP transport: the in-process :class:`~repro.engine.rpc.Transport`
contract over real sockets.

Topology
--------
Every participant owns one :class:`TcpTransport`, which owns one
:class:`~repro.net.server.MessageServer` (all its endpoints answer there)
and one :class:`~repro.net.pool.ConnectionPool` (all its outbound calls
dial from there).  Exactly one transport — the driver's — is the *hub*:
it holds the authoritative endpoint directory.  Worker transports are
constructed knowing only the hub's socket address; they announce their
endpoints to it on :meth:`register` and resolve peer addresses through it
on first contact (cached afterwards).  That is the whole discovery
protocol: a cluster is a driver and N workers that share nothing but one
``(host, port)`` pair.

Wire format
-----------
A call serializes ``(Envelope, args, kwargs)`` with the closure-capable
serializer from :mod:`repro.dag.serde` — the same
:class:`~repro.engine.rpc.Envelope` the in-process transport routes,
``SpanContext`` included, so traces recorded via :mod:`repro.obs`
propagate driver→wire→worker unchanged.  The response carries
``("ok", value)``, ``("err", exception)`` (re-raised caller-side), or
``("lost", reason)`` (surfaced as :class:`WorkerLost`).

Failure model
-------------
A dead peer is one whose server is gone: connection refused after the
bounded-backoff dial budget, a reset mid-exchange, or a response that
never arrives within ``call_timeout_s`` all surface as
:class:`WorkerLost` — the same exception the in-process transport raises
for a marked-dead endpoint, so the §3.3 recovery path is identical on
both backends.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Tuple

from repro.common.clock import Clock
from repro.common.config import TransportConf
from repro.common.errors import SerializationError, WorkerLost
from repro.common.metrics import (
    COUNT_NET_BYTES_RECEIVED,
    COUNT_NET_BYTES_SENT,
    COUNT_RPC_MESSAGES,
    HIST_NET_CALL_LATENCY,
    MetricsRegistry,
)
from repro.dag.serde import dumps_closure, loads_closure
from repro.engine.rpc import BaseTransport, Envelope
from repro.net.framing import (
    KIND_REQUEST,
    KIND_RESPONSE,
    ConnectionClosed,
    FrameError,
    encode_frame,
    read_frame,
)
from repro.net.pool import Address, ConnectFailed, ConnectionPool
from repro.net.server import MessageServer
from repro.obs.trace import Recorder

# Directory/ping methods handled by the transport itself; they never
# touch COUNT_RPC_MESSAGES or the injected latency — they are plumbing,
# not engine messages (bytes counters still see them: wire truth).
ANNOUNCE = "__announce__"
RESOLVE = "__resolve__"
PING = "__ping__"

_OK = "ok"
_ERR = "err"
_LOST = "lost"


class TcpTransport(BaseTransport):
    """Socket-backed transport; one per driver / worker process-equivalent."""

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        latency_s: float = 0.0,
        clock: Clock | None = None,
        tracer: Recorder | None = None,
        conf: Optional[TransportConf] = None,
        hub_addr: Optional[Address] = None,
        name: str = "net",
    ):
        super().__init__(metrics, latency_s, clock, tracer)
        self.conf = conf or TransportConf(backend="tcp")
        self._hub_addr = hub_addr  # None => this transport IS the hub
        self._local: Dict[str, Any] = {}
        self._dead: set = set()
        self._directory: Dict[str, Address] = {}  # authoritative on the hub
        self._addr_cache: Dict[str, Address] = {}
        self._lock = threading.Lock()
        self.pool = ConnectionPool(
            self.metrics,
            connect_timeout_s=self.conf.connect_timeout_s,
            call_timeout_s=self.conf.call_timeout_s,
            max_retries=self.conf.max_retries,
            retry_backoff_s=self.conf.retry_backoff_s,
        )
        self.server = MessageServer(self._handle_raw, self.metrics, name=name)

    # ------------------------------------------------------------------
    # Registry API (Transport contract)
    # ------------------------------------------------------------------
    @property
    def address(self) -> Address:
        return self.server.address

    @property
    def is_hub(self) -> bool:
        return self._hub_addr is None

    def register(self, endpoint_id: str, obj: Any) -> None:
        with self._lock:
            self._local[endpoint_id] = obj
            self._dead.discard(endpoint_id)
            if self.is_hub:
                self._directory[endpoint_id] = self.address
        if not self.is_hub:
            status, value = self._internal_call(
                self._hub_addr,
                Envelope("<hub>", ANNOUNCE, None),
                (endpoint_id, self.address[0], self.address[1]),
            )
            if status != _OK:
                raise WorkerLost(endpoint_id, f"announce to hub failed: {value}")

    def mark_dead(self, endpoint_id: str) -> None:
        """Local endpoint: crash it for real — close the server so peers
        get refused/reset.  Remote endpoint: record it dead so local
        callers fail fast without dialling."""
        with self._lock:
            self._dead.add(endpoint_id)
            local = endpoint_id in self._local
            all_local_dead = all(eid in self._dead for eid in self._local)
        if local and all_local_dead:
            self.close()

    def is_alive(self, endpoint_id: str) -> bool:
        with self._lock:
            if endpoint_id in self._dead:
                return False
            if endpoint_id in self._local:
                return True
        try:
            addr = self._resolve(endpoint_id)
            status, value = self._internal_call(
                addr, Envelope(endpoint_id, PING, None), ()
            )
        except WorkerLost:
            return False
        return status == _OK and bool(value)

    def endpoints(self) -> Dict[str, Any]:
        with self._lock:
            return dict(self._local)

    def close(self) -> None:
        self.server.close()
        self.pool.close()

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def call(self, dst_id: str, method: str, *args: Any, **kwargs: Any) -> Any:
        with self._lock:
            if dst_id in self._dead:
                raise WorkerLost(dst_id, "endpoint is down")
        addr = self._resolve(dst_id)
        self.metrics.counter(COUNT_RPC_MESSAGES).add(1)
        if self.latency_s > 0:
            self._clock.sleep(self.latency_s)
        ctx = self.tracer.current() if self.tracer.enabled else None
        envelope = Envelope(dst_id, method, ctx)
        start = self._clock.now()
        status, value = self._internal_call(addr, envelope, args, kwargs)
        self.metrics.histogram(f"{HIST_NET_CALL_LATENCY}.{method}").record(
            self._clock.now() - start
        )
        if status == _OK:
            return value
        if status == _LOST:
            raise WorkerLost(dst_id, str(value))
        raise value  # _ERR: the handler's exception, re-raised caller-side

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def _resolve(self, dst_id: str) -> Address:
        with self._lock:
            if dst_id in self._local:
                return self.address
            cached = self._addr_cache.get(dst_id) or self._directory.get(dst_id)
            if cached is not None:
                return cached
        if self.is_hub:
            raise WorkerLost(dst_id, "unknown endpoint")
        status, value = self._internal_call(
            self._hub_addr, Envelope("<hub>", RESOLVE, None), (dst_id,)
        )
        if status != _OK or value is None:
            raise WorkerLost(dst_id, "unknown endpoint")
        addr = (value[0], value[1])
        with self._lock:
            self._addr_cache[dst_id] = addr
        return addr

    # ------------------------------------------------------------------
    # Wire exchange (shared by engine calls and directory plumbing)
    # ------------------------------------------------------------------
    def _internal_call(
        self,
        addr: Address,
        envelope: Envelope,
        args: Tuple = (),
        kwargs: Optional[Dict[str, Any]] = None,
    ) -> Tuple[str, Any]:
        payload = dumps_closure(
            (envelope, args, kwargs or {}),
            context=f"rpc {envelope.method!r} payload",
        )
        frame = encode_frame(KIND_REQUEST, payload)
        dst = envelope.dst
        try:
            with self.pool.connection(addr) as sock:
                sock.sendall(frame)
                self.metrics.counter(COUNT_NET_BYTES_SENT).add(len(frame))
                kind, response = read_frame(sock)
        except ConnectFailed as err:
            # Nothing is listening there any more: the peer machine is
            # gone.  Remember it so later callers fail without dialling.
            with self._lock:
                self._dead.add(dst)
            raise WorkerLost(dst, f"connection refused: {err}") from err
        except (ConnectionClosed, FrameError, OSError) as err:
            raise WorkerLost(
                dst, f"connection lost during {envelope.method!r}: {err}"
            ) from err
        if kind != KIND_RESPONSE:
            raise WorkerLost(dst, f"protocol violation: frame kind {kind}")
        self.metrics.counter(COUNT_NET_BYTES_RECEIVED).add(len(response))
        status, value = loads_closure(response)
        return status, value

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    def _handle_raw(self, payload: bytes) -> bytes:
        method = "<undecoded>"
        try:
            envelope, args, kwargs = loads_closure(payload)
            method = envelope.method
            result = self._dispatch(envelope, args, kwargs)
        except BaseException as err:  # noqa: BLE001 - malformed payloads
            result = (_ERR, SerializationError(f"bad request payload: {err!r}"))
        try:
            return dumps_closure(result, context="rpc response payload")
        except BaseException as err:  # noqa: BLE001 - unpicklable values
            fallback: Tuple[str, Any] = (
                _ERR,
                SerializationError(
                    f"rpc response for {method!r} cannot cross the wire: {err}"
                ),
            )
            return dumps_closure(fallback, context="rpc response payload")

    def _dispatch(self, envelope: Envelope, args: Tuple, kwargs: Dict) -> Tuple[str, Any]:
        method = envelope.method
        if method == ANNOUNCE:
            endpoint_id, host, port = args
            with self._lock:
                self._directory[endpoint_id] = (host, port)
                self._dead.discard(endpoint_id)
            return (_OK, None)
        if method == RESOLVE:
            (endpoint_id,) = args
            with self._lock:
                if endpoint_id in self._dead:
                    return (_OK, None)
                addr = self._directory.get(endpoint_id)
            return (_OK, None if addr is None else (addr[0], addr[1]))
        if method == PING:
            with self._lock:
                alive = (
                    envelope.dst in self._local and envelope.dst not in self._dead
                )
            return (_OK, alive)
        with self._lock:
            if envelope.dst not in self._local:
                return (_LOST, f"unknown endpoint: {envelope.dst}")
            if envelope.dst in self._dead:
                return (_LOST, f"endpoint is down: {envelope.dst}")
            target = self._local[envelope.dst]
        try:
            if self.tracer.enabled and envelope.trace_ctx is not None:
                with self.tracer.activate(envelope.trace_ctx):
                    return (_OK, getattr(target, method)(*args, **kwargs))
            return (_OK, getattr(target, method)(*args, **kwargs))
        except BaseException as err:  # noqa: BLE001 - handlers may raise anything
            return (_ERR, err)
