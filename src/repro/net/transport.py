"""TCP transport: the in-process :class:`~repro.engine.rpc.Transport`
contract over real sockets.

Topology
--------
Every participant owns one :class:`TcpTransport`, which owns one
:class:`~repro.net.server.MessageServer` (all its endpoints answer there)
and one :class:`~repro.net.pool.ConnectionPool` (all its outbound calls
dial from there).  Exactly one transport — the driver's — is the *hub*:
it holds the authoritative endpoint directory.  Worker transports are
constructed knowing only the hub's socket address; they announce their
endpoints to it on :meth:`register` and resolve peer addresses through it
on first contact (cached afterwards).  That is the whole discovery
protocol: a cluster is a driver and N workers that share nothing but one
``(host, port)`` pair.

Wire format
-----------
A call serializes ``(Envelope, args, kwargs)`` with the closure-capable
serializer from :mod:`repro.dag.serde` — the same
:class:`~repro.engine.rpc.Envelope` the in-process transport routes,
``SpanContext`` included, so traces recorded via :mod:`repro.obs`
propagate driver→wire→worker unchanged.  The response carries
``("ok", value)``, ``("err", exception)`` (re-raised caller-side), or
``("lost", reason)`` (surfaced as :class:`WorkerLost`).

Failure model
-------------
A dead peer is one whose server is gone: connection refused after the
bounded-backoff dial budget, a reset mid-exchange, or a response that
never arrives within ``call_timeout_s`` all surface as
:class:`WorkerLost` — the same exception the in-process transport raises
for a marked-dead endpoint, so the §3.3 recovery path is identical on
both backends.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Tuple

from repro.chaos.injector import chaos_hit
from repro.chaos.plan import (
    KIND_NET_DROP,
    KIND_NET_DUPLICATE,
    SITE_NET_CALL,
    SITE_NET_FRAME,
    FaultEvent,
)
from repro.common.clock import Clock
from repro.common.config import TransportConf
from repro.common.errors import SerializationError, WorkerLost
from repro.common.metrics import (
    COUNT_NET_BYTES_RECEIVED,
    COUNT_NET_BYTES_SAVED_COMPRESSION,
    COUNT_NET_BYTES_SENT,
    COUNT_NET_LAUNCH_BYTES_SENT,
    COUNT_NET_TEMPLATE_BYTES_SAVED,
    COUNT_RPC_MESSAGES,
    COUNT_TEMPLATE_HIT,
    COUNT_TEMPLATE_INVALIDATED,
    COUNT_TEMPLATE_MISS,
    HIST_NET_CALL_LATENCY,
    MetricsRegistry,
)
from repro.core.templates import TemplateSender
from repro.dag.serde import dumps_closure, loads_closure
from repro.engine.rpc import INSTANTIATE_TEMPLATE, LAUNCH_TASKS, BaseTransport, Envelope
from repro.net.framing import (
    KIND_REQUEST,
    KIND_RESPONSE,
    ConnectionClosed,
    FrameError,
    compress_payload,
    encode_frame,
    read_frame_ex,
)
from repro.net.pool import Address, ConnectFailed, ConnectionPool
from repro.net.server import MessageServer
from repro.net.stageblobs import (
    StageBlobReceiver,
    StageBlobSender,
    WireGroupLaunch,
    WireLaunch,
    WireTemplateInstantiate,
)
from repro.obs.trace import Recorder

# Directory/ping methods handled by the transport itself; they never
# touch COUNT_RPC_MESSAGES or the injected latency — they are plumbing,
# not engine messages (bytes counters still see them: wire truth).
ANNOUNCE = "__announce__"
RESOLVE = "__resolve__"
PING = "__ping__"
# Directory eviction for decommissioned endpoints: plumbing like
# ANNOUNCE/RESOLVE — without it the hub serves a decommissioned worker's
# stale address forever (the ISSUE 10 satellite bugfix).
EVICT = "__evict__"
# Telemetry-delta shipping (repro.obs.live) when heartbeats are off:
# plumbing like the three above, so ±0 message-count parity holds.
METRICS = "__metrics__"

_OK = "ok"
_ERR = "err"
_LOST = "lost"
# Receiver-side stage-blob cache miss: the response value lists the
# digests to re-ship.  Like discovery, the retry is plumbing — the
# renegotiated exchange still counts as one engine message.
_STAGE_MISS = "stage_miss"
# Receiver-side execution-template miss (evicted, never installed, or a
# stale membership epoch): the sender falls back to a full
# template-installing launch within the same counted exchange, mirroring
# the stage_miss reship protocol.
_TEMPLATE_MISS = "template_miss"

# Attempts for one launch negotiation (first send + stage_miss reships).
_MAX_LAUNCH_ATTEMPTS = 3

# Methods whose request may be dropped/garbled by chaos without wedging
# the engine: every caller of these treats WorkerLost as a recoverable
# signal (retry, FetchFailed, or §3.3 recovery).  Anything else — e.g.
# notify_delivery_failed, which is itself the failure path's last resort —
# degrades to a delay instead, so chaos never manufactures a hang the
# engine has no handler for.
_CHAOS_DROP_SAFE = frozenset(
    {
        "launch_tasks",
        "instantiate_template",
        "fetch_bucket",
        "fetch_buckets",
        "notify_output",
        "heartbeat",
        "task_finished",
        "pre_populate",
        # Migration RPCs: the executor turns WorkerLost into an abort +
        # requeue (install) or a driver-mirror fallback (extract), and
        # release is best-effort by contract.
        "extract_state_shards",
        "install_state_shards",
        "release_state_shards",
    }
)
# Methods that are idempotent on the receiver, so delivering the request
# twice (at-least-once semantics) is observationally safe.  The shard
# migration pair is idempotent by design: install is keyed by
# (store, range, epoch) and refuses stale epochs; release of an
# already-released range is a no-op.
_CHAOS_DUP_SAFE = frozenset(
    {
        "fetch_bucket",
        "fetch_buckets",
        "notify_output",
        "heartbeat",
        "pre_populate",
        "install_state_shards",
        "release_state_shards",
    }
)


class _ConnectRefused(WorkerLost):
    """Internal marker: the failure was a refused dial, so the request was
    never delivered and a retry at a fresh address is safe."""


class TcpTransport(BaseTransport):
    """Socket-backed transport; one per driver / worker process-equivalent."""

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        latency_s: float = 0.0,
        clock: Clock | None = None,
        tracer: Recorder | None = None,
        conf: Optional[TransportConf] = None,
        hub_addr: Optional[Address] = None,
        name: str = "net",
    ):
        super().__init__(metrics, latency_s, clock, tracer)
        self.conf = conf or TransportConf(backend="tcp")
        self._hub_addr = hub_addr  # None => this transport IS the hub
        self._local: Dict[str, Any] = {}
        self._dead: set = set()
        self._directory: Dict[str, Address] = {}  # authoritative on the hub
        self._addr_cache: Dict[str, Address] = {}
        self._lock = threading.Lock()
        self.pool = ConnectionPool(
            self.metrics,
            connect_timeout_s=self.conf.connect_timeout_s,
            call_timeout_s=self.conf.call_timeout_s,
            max_retries=self.conf.max_retries,
            retry_backoff_s=self.conf.retry_backoff_s,
        )
        dp = self.conf.data_plane
        self._compression = dp.compression
        self._compress_threshold = dp.compress_threshold_bytes
        if dp.stage_blob_cache_entries > 0:
            self._stage_sender: Optional[StageBlobSender] = StageBlobSender(
                self.metrics, dp.stage_blob_cache_entries
            )
            self._stage_receiver: Optional[StageBlobReceiver] = StageBlobReceiver(
                dp.stage_blob_cache_entries
            )
        else:
            self._stage_sender = None
            self._stage_receiver = None
        # Execution-template registry (repro.core.templates).  Always
        # present: the feature activates only when a caller passes
        # template metadata with a launch (the driver gates that on
        # TemplateConf.enabled), and an idle sender is two empty dicts.
        self._template_sender = TemplateSender()
        server_cls = MessageServer
        if dp.async_io:
            # Event-loop server (docs/networking.md "Raw speed"): same
            # framing and crash model, idle connections cost no threads.
            from repro.net.aio import AsyncMessageServer

            server_cls = AsyncMessageServer
        self.server = server_cls(
            self._handle_raw,
            self.metrics,
            name=name,
            compression=self._compression,
            compress_threshold=self._compress_threshold,
        )

    # ------------------------------------------------------------------
    # Registry API (Transport contract)
    # ------------------------------------------------------------------
    @property
    def address(self) -> Address:
        return self.server.address

    @property
    def is_hub(self) -> bool:
        return self._hub_addr is None

    def register(self, endpoint_id: str, obj: Any) -> None:
        with self._lock:
            self._local[endpoint_id] = obj
            self._dead.discard(endpoint_id)
            if self.is_hub:
                self._directory[endpoint_id] = self.address
        if not self.is_hub:
            status, value = self._internal_call(
                self._hub_addr,
                Envelope("<hub>", ANNOUNCE, None),
                (endpoint_id, self.address[0], self.address[1]),
            )
            if status != _OK:
                raise WorkerLost(endpoint_id, f"announce to hub failed: {value}")

    def mark_dead(self, endpoint_id: str) -> None:
        """Local endpoint: crash it for real — close the server so peers
        get refused/reset.  Remote endpoint: record it dead so local
        callers fail fast without dialling."""
        with self._lock:
            self._dead.add(endpoint_id)
            self._addr_cache.pop(endpoint_id, None)
            local = endpoint_id in self._local
            all_local_dead = all(eid in self._dead for eid in self._local)
        if local and all_local_dead:
            self.close()

    def evict(self, endpoint_id: str) -> None:
        """Decommission an endpoint from discovery: the hub drops its
        directory entry (plus per-peer caches) so ``__resolve__`` stops
        serving a stale address; a non-hub transport forwards the
        eviction to the hub as uncounted plumbing."""
        self._forget_addr(endpoint_id)
        if self.is_hub:
            self._evict_entry(endpoint_id)
            return
        try:
            self._internal_call(
                self._hub_addr, Envelope("<hub>", EVICT, None), (endpoint_id,)
            )
        except WorkerLost:
            pass  # hub gone: there is no directory left to evict from

    def _evict_entry(self, endpoint_id: str) -> None:
        with self._lock:
            prior = self._directory.pop(endpoint_id, None)
            self._addr_cache.pop(endpoint_id, None)
        if prior is not None:
            self.pool.invalidate(prior)
        if self._stage_sender is not None:
            self._stage_sender.forget_peer(endpoint_id)
        dropped = self._template_sender.forget_peer(endpoint_id)
        if dropped:
            self.metrics.counter(COUNT_TEMPLATE_INVALIDATED).add(dropped)

    def is_alive(self, endpoint_id: str) -> bool:
        with self._lock:
            if endpoint_id in self._dead:
                return False
            if endpoint_id in self._local:
                return True
        try:
            addr = self._resolve(endpoint_id)
            status, value = self._internal_call(
                addr, Envelope(endpoint_id, PING, None), ()
            )
        except WorkerLost:
            return False
        return status == _OK and bool(value)

    def ship_telemetry(self, dst_id: str, src_id: str, delta: Any) -> bool:
        """Deliver a telemetry delta over the wire as an uncounted
        ``__metrics__`` exchange — plumbing like ``__ping__``: no
        ``COUNT_RPC_MESSAGES``, no injected latency, no per-method
        latency histogram (bytes counters still see it: wire truth)."""
        try:
            addr = self._resolve(dst_id)
            status, value = self._internal_call(
                addr, Envelope(dst_id, METRICS, None), (src_id, delta)
            )
        except WorkerLost:
            return False
        return status == _OK and bool(value)

    def endpoints(self) -> Dict[str, Any]:
        with self._lock:
            return dict(self._local)

    def close(self) -> None:
        self.server.close()
        self.pool.close()

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def call(self, dst_id: str, method: str, *args: Any, **kwargs: Any) -> Any:
        with self._lock:
            if dst_id in self._dead:
                raise WorkerLost(dst_id, "endpoint is down")
        addr = self._resolve(dst_id)
        self.metrics.counter(COUNT_RPC_MESSAGES).add(1)
        if self.latency_s > 0:
            self._clock.sleep(self.latency_s)
        ctx = self.tracer.current() if self.tracer.enabled else None
        envelope = Envelope(dst_id, method, ctx)
        fault = chaos_hit(SITE_NET_CALL, target=dst_id, method=method)
        if fault is not None:
            self._apply_call_fault(fault, dst_id, method, addr, envelope, args, kwargs)
        start = self._clock.now()
        try:
            status, value = self._exchange(addr, envelope, args, kwargs)
        except _ConnectRefused as refused:
            # Nothing was listening at `addr` — possibly a *stale* cached
            # address for a peer that re-announced elsewhere.  A refused
            # connect delivered nothing, so one retry at a freshly
            # resolved address is safe (never for mid-exchange failures).
            fresh = self._refresh_addr(dst_id)
            if fresh is None or fresh == addr:
                with self._lock:
                    self._dead.add(dst_id)
                raise WorkerLost(dst_id, refused.reason) from refused
            try:
                status, value = self._exchange(fresh, envelope, args, kwargs)
            except WorkerLost:
                with self._lock:
                    self._dead.add(dst_id)
                self._forget_addr(dst_id)
                raise
        except WorkerLost:
            # Mid-exchange loss: the cached address may be stale too, but
            # the request may have been delivered — no retry, just make
            # sure the next caller re-resolves.
            self._forget_addr(dst_id)
            raise
        self.metrics.histogram(f"{HIST_NET_CALL_LATENCY}.{method}").record(
            self._clock.now() - start
        )
        if status == _OK:
            return value
        if status == _LOST:
            self._forget_addr(dst_id)
            raise WorkerLost(dst_id, str(value))
        raise value  # _ERR: the handler's exception, re-raised caller-side

    def _apply_call_fault(
        self,
        fault: FaultEvent,
        dst_id: str,
        method: str,
        addr: Address,
        envelope: Envelope,
        args: Tuple,
        kwargs: Optional[Dict],
    ) -> None:
        if fault.kind == KIND_NET_DROP and method in _CHAOS_DROP_SAFE:
            # The request never leaves this host; the caller observes the
            # same WorkerLost a vanished peer would produce.
            raise WorkerLost(dst_id, f"chaos {fault.kind}: {method!r} request dropped")
        if fault.kind == KIND_NET_DUPLICATE and method in _CHAOS_DUP_SAFE:
            # Deliver once extra, discard the outcome: the real exchange
            # below is the one whose response the caller sees.
            try:
                self._exchange(addr, envelope, args, kwargs)
            except WorkerLost:
                pass
            return
        # net_delay — or a drop/duplicate degraded on an unsafe method.
        self._clock.sleep(fault.param if fault.param > 0 else 0.02)

    def _exchange(
        self, addr: Address, envelope: Envelope, args: Tuple, kwargs: Optional[Dict]
    ) -> Tuple[str, Any]:
        """One engine exchange, including any transport-internal
        renegotiation (stage-blob reships) that stays off the counters."""
        if (
            envelope.method == LAUNCH_TASKS
            and self._stage_sender is not None
            and 1 <= len(args) <= 2
            and (not kwargs or set(kwargs) == {"driver_epoch"})
        ):
            # The HA fencing stamp (driver_epoch) is the one kwarg the
            # tokenized launch path carries through; anything else falls
            # back to the plain exchange below.
            template_meta = args[1] if len(args) == 2 else None
            return self._launch_exchange(addr, envelope, args[0], template_meta, kwargs)
        return self._internal_call(addr, envelope, args, kwargs)

    def _launch_exchange(
        self,
        addr: Address,
        envelope: Envelope,
        descriptors: Any,
        template_meta: Optional[Tuple[str, Tuple[int, ...], int]] = None,
        kwargs: Optional[Dict[str, Any]] = None,
    ) -> Tuple[str, Any]:
        """Send a launch with plans tokenized; re-ship blobs on
        ``stage_miss`` until the receiver can decode (bounded).

        With ``template_meta = (template_id, batch_ids, epoch)`` this is
        the template tier: when the peer is known to hold the template,
        the whole launch crosses the wire as one tiny
        :class:`WireTemplateInstantiate`; a ``template_miss`` reply falls
        back to the full (template-installing) launch — an uncounted
        internal retry, exactly like a stage_miss reship, so
        ``count.rpc_messages`` parity stays ±0 either way."""
        dst = envelope.dst
        launch_bytes = self.metrics.counter(COUNT_NET_LAUNCH_BYTES_SENT)
        if template_meta is not None:
            template_id, batch_ids, epoch = template_meta
            if self._template_sender.holds(dst, template_id, epoch):
                instantiate = WireTemplateInstantiate(
                    template_id, list(batch_ids), epoch
                )
                inst_start = self._clock.now()
                status, value, sent = self._internal_call_ex(
                    addr,
                    Envelope(dst, INSTANTIATE_TEMPLATE, envelope.trace_ctx),
                    (instantiate,),
                    kwargs,
                )
                launch_bytes.add(sent)
                if status == _TEMPLATE_MISS:
                    # The peer evicted it (restart, cap, stale epoch):
                    # degrade to the full launch below, uncounted.
                    self._template_sender.forget(dst, template_id)
                else:
                    if status == _OK:
                        # The explicit lower tier: one small counted RPC
                        # replaced the whole per-task payload.
                        self.metrics.counter(COUNT_TEMPLATE_HIT).add(1)
                        self.metrics.histogram(
                            f"{HIST_NET_CALL_LATENCY}.{INSTANTIATE_TEMPLATE}"
                        ).record(self._clock.now() - inst_start)
                        full = self._template_sender.full_size(dst, template_id)
                        if full > sent:
                            self.metrics.counter(
                                COUNT_NET_TEMPLATE_BYTES_SAVED
                            ).add(full - sent)
                    return status, value
        force: frozenset = frozenset()
        for _attempt in range(_MAX_LAUNCH_ATTEMPTS):
            launch, digests = self._stage_sender.encode(
                dst, descriptors, force=force
            )
            payload: Any = launch
            if template_meta is not None:
                payload = WireGroupLaunch(
                    launch, template_meta[0], list(template_meta[1]), template_meta[2]
                )
            status, value, sent = self._internal_call_ex(
                addr, envelope, (payload,), kwargs
            )
            launch_bytes.add(sent)
            if status == _STAGE_MISS:
                force = force | frozenset(value)
                continue
            if status == _OK:
                self._stage_sender.mark_shipped(dst, digests)
                if template_meta is not None:
                    self.metrics.counter(COUNT_TEMPLATE_MISS).add(1)
                    self._template_sender.mark_shipped(
                        dst, template_meta[0], template_meta[2], sent
                    )
            return status, value
        return (
            _LOST,
            f"stage-blob negotiation with {dst} did not converge",
        )

    def invalidate_templates(self) -> int:
        """Cluster membership changed: every shipped template baked the
        old placement into its downstream pointers — drop them all, so
        the next launch of each shape re-installs under the new epoch."""
        dropped = self._template_sender.invalidate_all()
        if dropped:
            self.metrics.counter(COUNT_TEMPLATE_INVALIDATED).add(dropped)
        return dropped

    def _forget_addr(self, dst_id: str) -> None:
        """Drop a (possibly stale) cached address and its pooled sockets."""
        with self._lock:
            addr = self._addr_cache.pop(dst_id, None)
        if addr is not None:
            self.pool.invalidate(addr)

    def _refresh_addr(self, dst_id: str) -> Optional[Address]:
        """Forget any cached address for ``dst_id`` and re-resolve through
        the hub; returns the fresh address, or None if unresolvable."""
        self._forget_addr(dst_id)
        if self.is_hub:
            with self._lock:
                return self._directory.get(dst_id)
        try:
            status, value = self._internal_call(
                self._hub_addr, Envelope("<hub>", RESOLVE, None), (dst_id,)
            )
        except WorkerLost:
            return None
        if status != _OK or value is None:
            return None
        addr = (value[0], value[1])
        with self._lock:
            self._addr_cache[dst_id] = addr
        return addr

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def _resolve(self, dst_id: str) -> Address:
        with self._lock:
            if dst_id in self._local:
                return self.address
            cached = self._addr_cache.get(dst_id) or self._directory.get(dst_id)
            if cached is not None:
                return cached
        if self.is_hub:
            raise WorkerLost(dst_id, "unknown endpoint")
        status, value = self._internal_call(
            self._hub_addr, Envelope("<hub>", RESOLVE, None), (dst_id,)
        )
        if status != _OK or value is None:
            raise WorkerLost(dst_id, "unknown endpoint")
        addr = (value[0], value[1])
        with self._lock:
            self._addr_cache[dst_id] = addr
        return addr

    # ------------------------------------------------------------------
    # Wire exchange (shared by engine calls and directory plumbing)
    # ------------------------------------------------------------------
    def _internal_call(
        self,
        addr: Address,
        envelope: Envelope,
        args: Tuple = (),
        kwargs: Optional[Dict[str, Any]] = None,
    ) -> Tuple[str, Any]:
        status, value, _sent = self._internal_call_ex(addr, envelope, args, kwargs)
        return status, value

    def _internal_call_ex(
        self,
        addr: Address,
        envelope: Envelope,
        args: Tuple = (),
        kwargs: Optional[Dict[str, Any]] = None,
    ) -> Tuple[str, Any, int]:
        """Like :meth:`_internal_call` but also returns the framed request
        size actually written to the socket — the launch path uses it to
        attribute wire cost per exchange (``net.launch_bytes_sent``) and
        to price template hits against the full launches they replace."""
        payload = dumps_closure(
            (envelope, args, kwargs or {}),
            context=f"rpc {envelope.method!r} payload",
        )
        wire, flags, saved = compress_payload(
            payload, self._compression, self._compress_threshold
        )
        if saved:
            self.metrics.counter(COUNT_NET_BYTES_SAVED_COMPRESSION).add(saved)
        frame = encode_frame(KIND_REQUEST, wire, flags)
        dst = envelope.dst
        if envelope.method in _CHAOS_DROP_SAFE and (
            chaos_hit(SITE_NET_FRAME, target=dst, method=envelope.method) is not None
        ):
            # Garble the frame HEADER (never the payload): the server's
            # framing layer rejects it and drops the connection, so the
            # caller sees a mid-exchange loss — the payload path would
            # instead decode garbage into a SerializationError response,
            # which is a programming-error signal, not a fault.
            frame = b"\x00\x00" + frame[2:]
        try:
            with self.pool.connection(addr) as sock:
                sock.sendall(frame)
                self.metrics.counter(COUNT_NET_BYTES_SENT).add(len(frame))
                kind, response, _flags, wire_len = read_frame_ex(sock)
        except ConnectFailed as err:
            # Nothing is listening there: either the peer is gone or the
            # address is stale.  call() decides — it may retry once at a
            # freshly resolved address (a refused dial delivered nothing)
            # before caching the peer dead.
            raise _ConnectRefused(dst, f"connection refused: {err}") from err
        except (ConnectionClosed, FrameError, OSError) as err:
            raise WorkerLost(
                dst, f"connection lost during {envelope.method!r}: {err}"
            ) from err
        if kind != KIND_RESPONSE:
            raise WorkerLost(dst, f"protocol violation: frame kind {kind}")
        # Byte counters are wire truth: the compressed size.
        self.metrics.counter(COUNT_NET_BYTES_RECEIVED).add(wire_len)
        status, value = loads_closure(response)
        return status, value, len(frame)

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    def _handle_raw(self, payload: bytes) -> bytes:
        method = "<undecoded>"
        try:
            envelope, args, kwargs = loads_closure(payload)
            method = envelope.method
            result = self._dispatch(envelope, args, kwargs)
        except BaseException as err:  # noqa: BLE001 - malformed payloads
            result = (_ERR, SerializationError(f"bad request payload: {err!r}"))
        try:
            return dumps_closure(result, context="rpc response payload")
        except BaseException as err:  # noqa: BLE001 - unpicklable values
            fallback: Tuple[str, Any] = (
                _ERR,
                SerializationError(
                    f"rpc response for {method!r} cannot cross the wire: {err}"
                ),
            )
            return dumps_closure(fallback, context="rpc response payload")

    def _dispatch(self, envelope: Envelope, args: Tuple, kwargs: Dict) -> Tuple[str, Any]:
        method = envelope.method
        if method == ANNOUNCE:
            endpoint_id, host, port = args
            with self._lock:
                prior = self._directory.get(endpoint_id)
                self._directory[endpoint_id] = (host, port)
                self._dead.discard(endpoint_id)
                self._addr_cache.pop(endpoint_id, None)
            if prior is not None and prior != (host, port):
                # Re-registration at a new address: stale pooled sockets
                # must not serve it, and its blob and template caches are
                # gone with it.
                self.pool.invalidate(prior)
                if self._stage_sender is not None:
                    self._stage_sender.forget_peer(endpoint_id)
                dropped = self._template_sender.forget_peer(endpoint_id)
                if dropped:
                    self.metrics.counter(COUNT_TEMPLATE_INVALIDATED).add(dropped)
            return (_OK, None)
        if method == RESOLVE:
            (endpoint_id,) = args
            with self._lock:
                if endpoint_id in self._dead:
                    return (_OK, None)
                addr = self._directory.get(endpoint_id)
            return (_OK, None if addr is None else (addr[0], addr[1]))
        if method == EVICT:
            (endpoint_id,) = args
            self._evict_entry(endpoint_id)
            return (_OK, None)
        if method == PING:
            with self._lock:
                alive = (
                    envelope.dst in self._local and envelope.dst not in self._dead
                )
            return (_OK, alive)
        if method == METRICS:
            src_id, delta = args
            with self._lock:
                target = (
                    self._local.get(envelope.dst)
                    if envelope.dst not in self._dead
                    else None
                )
            ingest = getattr(target, "ingest_telemetry", None)
            if ingest is None:
                return (_OK, False)
            try:
                return (_OK, bool(ingest(src_id, delta)))
            except Exception:  # noqa: BLE001 - telemetry must never break the engine
                return (_OK, False)
        with self._lock:
            if envelope.dst not in self._local:
                return (_LOST, f"unknown endpoint: {envelope.dst}")
            if envelope.dst in self._dead:
                return (_LOST, f"endpoint is down: {envelope.dst}")
            target = self._local[envelope.dst]
        if (
            method == LAUNCH_TASKS
            and args
            and isinstance(args[0], (WireLaunch, WireGroupLaunch))
        ):
            wire_launch = args[0]
            template_arg: Tuple = ()
            if isinstance(wire_launch, WireGroupLaunch):
                template_arg = (
                    (
                        wire_launch.template_id,
                        list(wire_launch.batch_ids),
                        wire_launch.epoch,
                    ),
                )
                wire_launch = wire_launch.launch
            receiver = self._stage_receiver
            if receiver is None:
                # Caching disabled locally but the sender tokenized anyway
                # (mixed configuration): decode without retaining.
                receiver = StageBlobReceiver(cache_entries=len(wire_launch.blobs) or 1)
            descriptors, missing = receiver.decode(wire_launch)
            if missing:
                return (_STAGE_MISS, missing)
            args = (descriptors,) + template_arg + args[1:]
        if method == INSTANTIATE_TEMPLATE and args:
            instantiate = args[0]
            handler = getattr(target, "instantiate_template", None)
            try:
                accepted = handler is not None and handler(
                    instantiate.template_id,
                    list(instantiate.batch_ids),
                    instantiate.epoch,
                    **kwargs,
                )
            except BaseException as err:  # noqa: BLE001 - surfaced caller-side
                return (_ERR, err)
            if not accepted:
                # Evicted, never installed, or a stale membership epoch:
                # the sender re-ships the full launch, uncounted.
                return (_TEMPLATE_MISS, instantiate.template_id)
            return (_OK, None)
        try:
            if self.tracer.enabled and envelope.trace_ctx is not None:
                with self.tracer.activate(envelope.trace_ctx):
                    return (_OK, getattr(target, method)(*args, **kwargs))
            return (_OK, getattr(target, method)(*args, **kwargs))
        except BaseException as err:  # noqa: BLE001 - handlers may raise anything
            return (_ERR, err)
