"""Content-addressed stage-blob caching for the tcp launch path.

Under group scheduling the driver launches the same :class:`PhysicalPlan`
to every worker, and a plan's serialized closures dwarf the per-task
fields.  *Execution Templates* (Mashayekhi et al., 2017) caches the
control-plane artifact at the workers and ships only a token plus the
per-launch deltas; this module applies that idea to the wire:

* the sender serializes each plan **once** (memoized by object identity),
  names it by a content digest, and ships the blob to each peer at most
  once — later launches to that peer carry only the digest token;
* the receiver caches ``digest -> deserialized plan`` and rebuilds full
  :class:`~repro.engine.task.TaskDescriptor` objects locally;
* a receiver that lost its cache (restart, eviction) answers
  ``stage_miss`` listing the digests it needs, and the sender re-encodes
  with those blobs forced in — the retry path that makes the cache a pure
  optimization, never a correctness hazard.

Both sides live inside :class:`~repro.net.transport.TcpTransport`; the
engine above it still passes plain descriptors to ``call("launch_tasks")``
and receives plain descriptors in ``Worker.launch_tasks``.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.common.metrics import (
    COUNT_STAGE_CACHE_HIT,
    COUNT_STAGE_CACHE_MISS,
    MetricsRegistry,
)
from repro.dag.serde import dumps_closure, loads_closure
from repro.engine.task import TaskDescriptor


def blob_digest(blob: bytes) -> str:
    """Content address of one serialized plan."""
    return hashlib.sha256(blob).hexdigest()[:16]


@dataclass
class WireTaskDescriptor:
    """A :class:`TaskDescriptor` with the plan replaced by its digest —
    the per-task fields that actually differ between launches."""

    task_id: Any
    plan_digest: str
    pre_scheduled: bool = False
    deps: FrozenSet = frozenset()
    downstream: Dict[int, str] = field(default_factory=dict)
    map_locations: Dict = field(default_factory=dict)
    trace_ctx: Any = None


@dataclass
class WireLaunch:
    """The ``launch_tasks`` payload on the wire: light descriptors plus
    whichever blobs the sender believes the receiver is missing."""

    descriptors: List[WireTaskDescriptor]
    blobs: Dict[str, bytes]


@dataclass
class WireGroupLaunch:
    """A full group launch that doubles as a template installation
    (repro.core.templates): the receiver decodes ``launch`` as usual,
    then caches the decoded descriptors under ``template_id`` with
    ``batch_ids`` as the substitution parameters, so the *next* launch of
    the same shape can be a :class:`WireTemplateInstantiate` instead."""

    launch: WireLaunch
    template_id: str
    batch_ids: List[int]
    epoch: int


@dataclass
class WireTemplateInstantiate:
    """The steady-state group launch: no descriptors, no blobs — just the
    template to re-run and the batch (job) ids to substitute into it.
    A receiver that does not hold ``(template_id, epoch)`` answers
    ``template_miss`` and the sender re-ships the full
    :class:`WireGroupLaunch` within the same counted exchange."""

    template_id: str
    batch_ids: List[int]
    epoch: int


class StageBlobSender:
    """Driver/launcher side: plan serialization memo + per-peer shipped
    sets."""

    def __init__(self, metrics: MetricsRegistry, cache_entries: int = 64):
        self.metrics = metrics
        self._cache_entries = cache_entries
        self._lock = threading.Lock()
        # id(plan) -> (plan, digest, blob).  The plan reference keeps the
        # id stable for the cache's lifetime (and guards against reuse of
        # a collected object's id).
        self._blobs: Dict[int, Tuple[Any, str, bytes]] = {}
        # peer -> digests that peer has acknowledged receiving.
        self._shipped: Dict[str, Set[str]] = {}

    def _entry(self, plan: Any) -> Tuple[str, bytes]:
        entry = self._blobs.get(id(plan))
        if entry is None or entry[0] is not plan:
            if len(self._blobs) >= self._cache_entries:
                # Wholesale eviction, like the process-backend cache: at
                # steady state one streaming plan repeats; sweeps of many
                # distinct plans gain nothing from LRU bookkeeping.
                self._blobs.clear()
            blob = dumps_closure(plan, context="stage blob")
            entry = (plan, blob_digest(blob), blob)
            self._blobs[id(plan)] = entry
        return entry[1], entry[2]

    def encode(
        self,
        dst_id: str,
        descriptors: Sequence[TaskDescriptor],
        force: FrozenSet[str] = frozenset(),
    ) -> Tuple[WireLaunch, List[str]]:
        """Build the wire payload for one launch to one peer.

        Returns ``(launch, digests)`` where ``digests`` lists every plan
        digest the launch references — pass it to :meth:`mark_shipped`
        once the peer acknowledges.  ``force`` digests get their blob
        attached even if previously shipped (the stage_miss retry)."""
        wire_descs: List[WireTaskDescriptor] = []
        blobs: Dict[str, bytes] = {}
        digests: List[str] = []
        hits = misses = 0
        with self._lock:
            shipped = self._shipped.setdefault(dst_id, set())
            for desc in descriptors:
                digest, blob = self._entry(desc.plan)
                wire_descs.append(
                    WireTaskDescriptor(
                        task_id=desc.task_id,
                        plan_digest=digest,
                        pre_scheduled=desc.pre_scheduled,
                        deps=desc.deps,
                        downstream=desc.downstream,
                        map_locations=desc.map_locations,
                        trace_ctx=desc.trace_ctx,
                    )
                )
                if digest in digests:
                    continue
                digests.append(digest)
                if digest in shipped and digest not in force:
                    hits += 1
                else:
                    blobs[digest] = blob
                    misses += 1
        if hits:
            self.metrics.counter(COUNT_STAGE_CACHE_HIT).add(hits)
        if misses:
            self.metrics.counter(COUNT_STAGE_CACHE_MISS).add(misses)
        return WireLaunch(wire_descs, blobs), digests

    def mark_shipped(self, dst_id: str, digests: Sequence[str]) -> None:
        """The peer acknowledged a launch: it now holds these blobs."""
        with self._lock:
            self._shipped.setdefault(dst_id, set()).update(digests)

    def forget_peer(self, dst_id: str) -> None:
        """The peer re-registered (restart): assume its cache is empty."""
        with self._lock:
            self._shipped.pop(dst_id, None)


class StageBlobReceiver:
    """Worker side: ``digest -> deserialized plan`` cache."""

    def __init__(self, cache_entries: int = 64):
        self._cache_entries = cache_entries
        self._lock = threading.Lock()
        self._plans: Dict[str, Any] = {}

    def decode(
        self, launch: WireLaunch
    ) -> Tuple[Optional[List[TaskDescriptor]], List[str]]:
        """Rebuild full descriptors, or report which digests are missing.

        Returns ``(descriptors, [])`` on success or ``(None, missing)``
        when a referenced blob is neither attached nor cached — the
        caller answers ``stage_miss`` and the sender re-ships."""
        with self._lock:
            if launch.blobs and (
                len(self._plans) + len(launch.blobs) > self._cache_entries
            ):
                self._plans.clear()
            for digest, blob in launch.blobs.items():
                if digest in self._plans:
                    continue
                # Content addressing doubles as an integrity check: a blob
                # that does not hash to its label is dropped (it would
                # poison every later token-only launch), surfacing as a
                # miss for the sender to re-ship.
                if blob_digest(blob) != digest:
                    continue
                self._plans[digest] = loads_closure(blob)
            missing = sorted(
                {d.plan_digest for d in launch.descriptors} - set(self._plans)
            )
            if missing:
                return None, missing
            descriptors = [
                TaskDescriptor(
                    task_id=w.task_id,
                    plan=self._plans[w.plan_digest],
                    pre_scheduled=w.pre_scheduled,
                    deps=w.deps,
                    downstream=w.downstream,
                    map_locations=w.map_locations,
                    trace_ctx=w.trace_ctx,
                )
                for w in launch.descriptors
            ]
        return descriptors, []

    def clear(self) -> None:
        """Drop every cached plan (tests simulate a worker restart)."""
        with self._lock:
            self._plans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)
