"""Async event-loop socket server (see "Raw speed" in docs/networking.md).

Drop-in replacement for :class:`~repro.net.server.MessageServer` behind
``DataPlaneConf.async_io``: same framing, same chaos hooks, same
byte-counter semantics, same crash model (closing tears down the
listener and every connection so peers observe refused/reset —
:class:`~repro.common.errors.WorkerLost` detection is untouched).  What
changes is the threading model — connections are *parked* on one event
loop while idle and *activated* onto a bounded thread pool when bytes
arrive:

* **Parked**: the loop watches the socket with ``add_reader``.  An idle
  connection costs one fd and a selector entry, not a Python thread, so
  the server holds thousands of open connections where the threaded
  server's per-connection stacks pile up.
* **Active**: the first readable byte hands the raw socket to a pool
  thread, which runs the same blocking read/handle/reply loop as the
  threaded server — the hot request path pays zero event-loop hops, so
  a busy connection is served at per-connection-thread speed.  When the
  connection goes quiet (or the pool is contended) the thread parks it
  back on the loop and returns to the pool.

Per-connection request ordering is preserved: exactly one pool thread
owns a connection while it is active, and a parked connection is not
read until it is activated again.  Handlers may block and make nested
RPCs; they only ever run on pool threads, never on the loop.
"""

from __future__ import annotations

import asyncio
import contextlib
import socket
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Set, Tuple

from repro.chaos.injector import chaos_hit
from repro.chaos.plan import KIND_SERVER_KILL, SITE_NET_SERVE
from repro.common.metrics import (
    COUNT_NET_BYTES_RECEIVED,
    COUNT_NET_BYTES_SAVED_COMPRESSION,
    COUNT_NET_BYTES_SENT,
    GAUGE_NET_OPEN_CONNECTIONS,
    MetricsRegistry,
)
from repro.net.framing import (
    KIND_REQUEST,
    KIND_RESPONSE,
    ConnectionClosed,
    FrameError,
    compress_payload,
    encode_frame,
    read_frame_ex,
)
from repro.net.server import _LIVE_SERVERS

# Handler concurrency cap.  Handlers may make nested RPCs, so the pool
# must comfortably exceed the realistic in-flight call depth of one
# process-equivalent (driver threads + executor slots + monitor).
_MAX_HANDLER_THREADS = 64

# How long an active connection's pool thread lingers waiting for the
# next request before parking the socket back on the loop.  Long enough
# that a request/response exchange every few hundred microseconds stays
# hot; short enough that a quiet connection frees its thread promptly.
_ACTIVE_LINGER = 0.02

# Above this many simultaneously active connections the linger is
# skipped: threads go straight back to the pool after each response so
# queued activations are never starved by idle-waiting threads.
_LINGER_ACTIVE_LIMIT = _MAX_HANDLER_THREADS // 2

# The event-loop transport is wakeup-latency-bound: every request crosses
# at least two threads (client → server thread → client), and each
# crossing waits for the GIL, which a compute-bound thread holds for up
# to a full switch interval.  CPython's 5 ms default turns a ~30 µs
# exchange into milliseconds whenever tasks are computing, so while any
# async server is live the interval is lowered (never raised) to 1 ms
# and restored when the last one closes.
_SWITCH_INTERVAL = 0.001
_gil_lock = threading.Lock()
_gil_refs = 0
_gil_saved: float | None = None


def _gil_tuning_acquire() -> None:
    global _gil_refs, _gil_saved
    with _gil_lock:
        _gil_refs += 1
        if _gil_refs == 1 and sys.getswitchinterval() > _SWITCH_INTERVAL:
            _gil_saved = sys.getswitchinterval()
            sys.setswitchinterval(_SWITCH_INTERVAL)


def _gil_tuning_release() -> None:
    global _gil_refs, _gil_saved
    with _gil_lock:
        _gil_refs = max(0, _gil_refs - 1)
        if _gil_refs == 0 and _gil_saved is not None:
            sys.setswitchinterval(_gil_saved)
            _gil_saved = None


class AsyncMessageServer:
    """Event-loop listener: idle connections parked on one loop thread,
    active connections served by a bounded pool.  Public surface mirrors
    :class:`MessageServer`."""

    def __init__(
        self,
        handler: Callable[[bytes], bytes],
        metrics: MetricsRegistry,
        host: str = "127.0.0.1",
        name: str = "net",
        compression: str = "off",
        compress_threshold: int = 4096,
    ):
        self._handler = handler
        self.metrics = metrics
        self._compression = compression
        self._compress_threshold = compress_threshold
        self._name = name
        self._closed = False
        self._lock = threading.Lock()
        self._conns: Set[socket.socket] = set()
        self._active = 0
        self._pool = ThreadPoolExecutor(
            max_workers=_MAX_HANDLER_THREADS, thread_name_prefix=f"{name}-handler"
        )
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._listener.bind((host, 0))
            self._listener.listen(1024)
        except OSError:
            self._listener.close()
            self._pool.shutdown(wait=False)
            raise
        self._listener.setblocking(False)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._loop = asyncio.new_event_loop()
        ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run_loop, args=(ready,), name=f"{name}-aio", daemon=True
        )
        self._thread.start()
        ready.wait()
        _gil_tuning_acquire()
        _LIVE_SERVERS.add(self)

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Loop thread: accept + park/activate bookkeeping
    # ------------------------------------------------------------------
    def _run_loop(self, ready: threading.Event) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.add_reader(self._listener.fileno(), self._on_accept)
        ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    def _on_accept(self) -> None:
        while True:
            try:
                conn, _peer = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener closed
            with self._lock:
                if self._closed:
                    with contextlib.suppress(OSError):
                        conn.close()
                    return
                self._conns.add(conn)
            with contextlib.suppress(OSError):
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self.metrics.gauge(GAUGE_NET_OPEN_CONNECTIONS).add(1)
            self._park(conn)

    def _park(self, conn: socket.socket) -> None:
        """Watch ``conn`` on the loop until it turns readable.  Runs on
        the loop thread only."""
        if self._closed:
            self._drop(conn)
            return
        try:
            self._loop.add_reader(conn.fileno(), self._activate, conn)
        except (OSError, ValueError):  # conn died while being handed over
            self._drop(conn)

    def _activate(self, conn: socket.socket) -> None:
        """First readable byte: hand the socket to a pool thread."""
        with contextlib.suppress(OSError, ValueError):
            self._loop.remove_reader(conn.fileno())
        try:
            self._pool.submit(self._serve_active, conn)
        except RuntimeError:  # pool shut down: server is closing
            self._drop(conn)

    # ------------------------------------------------------------------
    # Pool thread: the blocking serve loop (mirrors MessageServer)
    # ------------------------------------------------------------------
    def _serve_active(self, conn: socket.socket) -> None:
        with self._lock:
            self._active += 1
            contended = self._active > _LINGER_ACTIVE_LIMIT
        try:
            while not self._closed:
                # Wait (bounded) for the next frame's first byte without
                # consuming it; MSG_PEEK keeps a timeout from ever
                # splitting a frame.  On silence, trade the thread back
                # to the loop and park the connection.
                try:
                    conn.settimeout(0.0 if contended else _ACTIVE_LINGER)
                    probe = conn.recv(1, socket.MSG_PEEK)
                except (TimeoutError, BlockingIOError, InterruptedError):
                    try:
                        self._loop.call_soon_threadsafe(self._park, conn)
                    except RuntimeError:  # loop closed under us
                        self._drop(conn)
                    return
                except OSError:
                    self._drop(conn)
                    return
                if not probe:  # EOF
                    self._drop(conn)
                    return
                try:
                    conn.settimeout(None)
                    kind, payload, _flags, wire_len = read_frame_ex(conn)
                except (ConnectionClosed, FrameError, OSError):
                    self._drop(conn)
                    return
                if kind != KIND_REQUEST:
                    self._drop(conn)
                    return  # protocol violation; drop the connection
                # Byte counters are wire truth: the compressed size.
                self.metrics.counter(COUNT_NET_BYTES_RECEIVED).add(wire_len)
                if self._name != "driver":
                    # The driver's server is exempt: killing it ends the
                    # run rather than exercising §3.3 recovery.
                    fault = chaos_hit(SITE_NET_SERVE, target=self._name)
                    if fault is not None:
                        if fault.kind == KIND_SERVER_KILL:
                            self.close()
                        # KIND_RESPONSE_DROP: the handler never runs, the
                        # caller sees its connection reset mid-exchange.
                        self._drop(conn)
                        return
                response = self._handler(payload)
                wire, flags, saved = compress_payload(
                    response, self._compression, self._compress_threshold
                )
                if saved:
                    self.metrics.counter(
                        COUNT_NET_BYTES_SAVED_COMPRESSION
                    ).add(saved)
                frame = encode_frame(KIND_RESPONSE, wire, flags)
                try:
                    conn.sendall(frame)
                except OSError:
                    self._drop(conn)
                    return
                self.metrics.counter(COUNT_NET_BYTES_SENT).add(len(frame))
            self._drop(conn)
        finally:
            with self._lock:
                self._active -= 1

    def _drop(self, conn: socket.socket) -> None:
        """Close one connection exactly once (any thread; the caller
        guarantees the loop is no longer watching it)."""
        with self._lock:
            if conn not in self._conns:
                return
            self._conns.discard(conn)
        self.metrics.gauge(GAUGE_NET_OPEN_CONNECTIONS).add(-1)
        with contextlib.suppress(OSError):
            conn.shutdown(socket.SHUT_RDWR)
        with contextlib.suppress(OSError):
            conn.close()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear down the listener and every connection (the crash model:
        peers see refused/reset from now on).  Safe to call from any
        thread, including a pool thread via the chaos server-kill."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            conns = list(self._conns)

        def _teardown() -> None:
            with contextlib.suppress(OSError, ValueError):
                self._loop.remove_reader(self._listener.fileno())
            for conn in conns:
                with contextlib.suppress(OSError, ValueError):
                    self._loop.remove_reader(conn.fileno())
            self._loop.stop()

        with contextlib.suppress(RuntimeError):  # loop already closed
            self._loop.call_soon_threadsafe(_teardown)
        if threading.current_thread() is not self._thread:
            self._thread.join(timeout=1.0)
        with contextlib.suppress(OSError):
            self._listener.close()
        for conn in conns:
            self._drop(conn)
        self._pool.shutdown(wait=False)
        _gil_tuning_release()
