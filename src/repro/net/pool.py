"""Per-peer connection pool with bounded-backoff dialling.

One pool serves every outbound call a transport makes.  Connections are
keyed by ``(host, port)``, checked out for exactly one request/response
exchange, and returned for reuse on clean completion — shuffle fetches
and heartbeats ride long-lived sockets instead of paying a dial per
message.

Dialling retries refused/unreachable connects with exponential backoff up
to ``TransportConf.max_retries`` extra attempts: a server that has not
finished binding yet is a transient condition, but one that stays refused
is reported as :class:`ConnectFailed` for the caller to surface as
:class:`~repro.common.errors.WorkerLost`.  Errors on an *established*
connection are never retried here — a request that may already have been
delivered must not be sent twice (launching tasks is not idempotent).
"""

from __future__ import annotations

import contextlib
import random
import socket
import threading
import time
from typing import Dict, Iterator, List, Set, Tuple

from repro.chaos.injector import chaos_hit
from repro.chaos.plan import KIND_DIAL_REFUSE, SITE_NET_DIAL
from repro.common.errors import ReproError
from repro.common.metrics import (
    COUNT_NET_CONNECT_RETRIES,
    COUNT_NET_CONNECTIONS,
    COUNT_NET_RECONNECTS,
    COUNT_NET_REDIALS,
    MetricsRegistry,
)

Address = Tuple[str, int]

# Idle connections kept per peer; beyond this, returned sockets close.
_MAX_IDLE_PER_PEER = 4
# Backoff doubles per attempt but never exceeds this.
_MAX_BACKOFF_S = 0.5


class ConnectFailed(ReproError):
    """Could not establish a connection within the retry budget."""


class ConnectionPool:
    """Checkout/checkin pool of client sockets, one exchange at a time."""

    def __init__(
        self,
        metrics: MetricsRegistry,
        connect_timeout_s: float = 1.0,
        call_timeout_s: float = 30.0,
        max_retries: int = 2,
        retry_backoff_s: float = 0.02,
    ):
        self.metrics = metrics
        self.connect_timeout_s = connect_timeout_s
        self.call_timeout_s = call_timeout_s
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self._idle: Dict[Address, List[socket.socket]] = {}
        # Addresses we have successfully dialled before: a later _dial to
        # one of these is a *redial* (peer crash, invalidation, or idle
        # exhaustion) and is counted separately from first contacts.
        self._dialed: Set[Address] = set()
        self._rng = random.Random()
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    def _dial(self, addr: Address) -> socket.socket:
        delay = self.retry_backoff_s
        last_err: Exception | None = None
        with self._lock:
            if addr in self._dialed:
                self.metrics.counter(COUNT_NET_REDIALS).add(1)
        for attempt in range(self.max_retries + 1):
            try:
                if chaos_hit(SITE_NET_DIAL, target=f"{addr[0]}:{addr[1]}") is not None:
                    # KIND_DIAL_REFUSE: the only fault scheduled at this
                    # site — behave exactly like a refused connect so the
                    # retry/backoff path below is what gets exercised.
                    raise OSError(f"chaos {KIND_DIAL_REFUSE}: connection refused")
                sock = socket.create_connection(addr, timeout=self.connect_timeout_s)
            except OSError as err:
                last_err = err
                if attempt < self.max_retries:
                    self.metrics.counter(COUNT_NET_CONNECT_RETRIES).add(1)
                    if delay > 0:
                        # Jitter in [0.5, 1.5)x so concurrent redials
                        # after a server kill do not synchronize into a
                        # thundering herd against the reborn listener.
                        time.sleep(delay * (0.5 + self._rng.random()))
                    delay = min(delay * 2 if delay > 0 else 0, _MAX_BACKOFF_S)
                continue
            # Control messages are small; Nagle would batch them into the
            # exact round-trip stalls this subsystem exists to measure.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(self.call_timeout_s)
            self.metrics.counter(COUNT_NET_CONNECTIONS).add(1)
            with self._lock:
                if addr in self._dialed:
                    # A redial that actually *connected*: the peer (or its
                    # reborn successor) came back — the recovery signal a
                    # dashboard wants, as opposed to redial attempts.
                    self.metrics.counter(COUNT_NET_RECONNECTS).add(1)
                self._dialed.add(addr)
            return sock
        raise ConnectFailed(
            f"connect to {addr[0]}:{addr[1]} failed after "
            f"{self.max_retries + 1} attempt(s): {last_err}"
        ) from last_err

    @contextlib.contextmanager
    def connection(self, addr: Address) -> Iterator[socket.socket]:
        """Check out one socket for one request/response exchange.

        On clean exit the socket returns to the idle pool; on any error it
        is closed (its stream position is unknown, so it must never be
        reused)."""
        with self._lock:
            if self._closed:
                raise ConnectFailed("connection pool is closed")
            idle = self._idle.get(addr)
            sock = idle.pop() if idle else None
        if sock is None:
            sock = self._dial(addr)
        try:
            yield sock
        except BaseException:
            with contextlib.suppress(OSError):
                sock.close()
            raise
        with self._lock:
            if not self._closed:
                bucket = self._idle.setdefault(addr, [])
                if len(bucket) < _MAX_IDLE_PER_PEER:
                    bucket.append(sock)
                    return
        with contextlib.suppress(OSError):
            sock.close()

    def invalidate(self, addr: Address) -> None:
        """Close every idle socket to one peer.

        Used when an address is discovered stale (the peer re-announced
        elsewhere or is gone): pooled sockets to the old address must not
        be handed out again."""
        with self._lock:
            sockets = self._idle.pop(addr, [])
        for sock in sockets:
            with contextlib.suppress(OSError):
                sock.close()

    def close(self) -> None:
        """Close every idle socket and refuse further checkouts."""
        with self._lock:
            self._closed = True
            sockets = [s for bucket in self._idle.values() for s in bucket]
            self._idle.clear()
        for sock in sockets:
            with contextlib.suppress(OSError):
                sock.close()
