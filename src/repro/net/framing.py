"""Length-prefixed binary framing for the tcp transport.

Every message on a :mod:`repro.net` socket is one *frame*.  Two header
layouts share the magic/version/kind prefix and are negotiated
**per frame** — a sender only emits the extended layout when it has a
flag to set, so peers that never compress interoperate bit-for-bit with
the original protocol within the same run:

====== ====== ===========================================================
offset size   field
====== ====== ===========================================================
0      2      magic ``b"RN"``
2      1      protocol version: 1 = base frame, 2 = flagged frame
3      1      frame kind: 1 = request, 2 = response
4      1      flags byte (version 2 only; bit 0 = zlib payload)
...    4      payload length on the wire, unsigned big-endian
...    n      payload (closure-pickled, :mod:`repro.dag.serde`)
====== ====== ===========================================================

The header is versioned so a wire change is detected instead of
misparsed; a magic/version mismatch raises :class:`FrameError`
immediately rather than desynchronizing the stream.  Payload size is
bounded (1 GiB) purely as a corruption guard — a garbled length field
otherwise reads as a multi-terabyte allocation.  The same bound applies
after decompression, so a hostile/corrupt zlib stream cannot balloon.
"""

from __future__ import annotations

import socket
import struct
import zlib
from typing import Tuple

from repro.common.errors import ReproError

MAGIC = b"RN"
VERSION = 1  # base header: no flags byte
VERSION_FLAGS = 2  # extended header: one flags byte before the length
KIND_REQUEST = 1
KIND_RESPONSE = 2

# Base (version 1) header — also the layout tests and docs refer to.
HEADER = struct.Struct(">2sBBI")
HEADER_SIZE = HEADER.size  # 8 bytes
# Extended (version 2) header: magic, version, kind, flags, length.
HEADER_FLAGS = struct.Struct(">2sBBBI")
HEADER_FLAGS_SIZE = HEADER_FLAGS.size  # 9 bytes
# Shared prefix of both layouts, read first to pick the tail format.
_PREFIX = struct.Struct(">2sBB")
_TAIL_V1 = struct.Struct(">I")
_TAIL_V2 = struct.Struct(">BI")

# Flags byte bits (version-2 frames only).
FLAG_ZLIB = 0x01
_KNOWN_FLAGS = FLAG_ZLIB

MAX_PAYLOAD = 1 << 30

# zlib level 1: the payloads are pickles crossing loopback — cheap and
# fast beats maximal ratio on this path.
_ZLIB_LEVEL = 1


class FrameError(ReproError):
    """The byte stream does not parse as a repro.net frame."""


class ConnectionClosed(ReproError):
    """The peer closed the connection (EOF) at a frame boundary or
    mid-frame."""


def encode_frame(kind: int, payload: bytes, flags: int = 0) -> bytes:
    """Build one wire frame: versioned header + payload.

    With ``flags == 0`` the frame is byte-identical to the version-1
    protocol; any set flag switches to the version-2 header.
    """
    if len(payload) > MAX_PAYLOAD:
        raise FrameError(f"payload of {len(payload)} bytes exceeds frame limit")
    if flags & ~_KNOWN_FLAGS:
        raise FrameError(f"unknown frame flags 0x{flags:02x}")
    if flags:
        return HEADER_FLAGS.pack(MAGIC, VERSION_FLAGS, kind, flags, len(payload)) + payload
    return HEADER.pack(MAGIC, VERSION, kind, len(payload)) + payload


def compress_payload(
    payload: bytes, mode: str = "off", threshold: int = 4096
) -> Tuple[bytes, int, int]:
    """Maybe zlib-compress a payload before framing.

    Returns ``(wire_payload, flags, bytes_saved)``.  ``mode`` follows
    :class:`~repro.common.config.DataPlaneConf.compression`: ``"off"``
    never compresses, ``"auto"`` compresses payloads of at least
    ``threshold`` bytes, ``"on"`` tries every payload.  Compression is
    kept only when it actually shrinks the payload, so the flag on the
    wire always means the receiver must inflate.
    """
    if mode == "off" or not payload:
        return payload, 0, 0
    if mode == "auto" and len(payload) < threshold:
        return payload, 0, 0
    packed = zlib.compress(payload, _ZLIB_LEVEL)
    if len(packed) >= len(payload):
        return payload, 0, 0
    return packed, FLAG_ZLIB, len(payload) - len(packed)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionClosed(
                f"peer closed connection ({len(buf)}/{n} bytes read)"
            )
        buf.extend(chunk)
    return bytes(buf)


def read_frame_ex(sock: socket.socket) -> Tuple[int, bytes, int, int]:
    """Read one complete frame; returns ``(kind, payload, flags,
    wire_payload_len)``.

    ``payload`` is the logical (decompressed) payload; ``wire_payload_len``
    is what actually crossed the socket, for the byte counters.  Raises
    :class:`ConnectionClosed` on EOF and :class:`FrameError` on a header
    that is not ours (wrong magic, unknown version/flags, absurd size).
    """
    magic, version, kind = _PREFIX.unpack(_recv_exact(sock, _PREFIX.size))
    if magic != MAGIC:
        raise FrameError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version == VERSION:
        flags = 0
        (length,) = _TAIL_V1.unpack(_recv_exact(sock, _TAIL_V1.size))
    elif version == VERSION_FLAGS:
        flags, length = _TAIL_V2.unpack(_recv_exact(sock, _TAIL_V2.size))
    else:
        raise FrameError(f"unsupported frame version {version}")
    if kind not in (KIND_REQUEST, KIND_RESPONSE):
        raise FrameError(f"unknown frame kind {kind}")
    if flags & ~_KNOWN_FLAGS:
        raise FrameError(f"unknown frame flags 0x{flags:02x}")
    if length > MAX_PAYLOAD:
        raise FrameError(f"frame length {length} exceeds limit")
    payload = _recv_exact(sock, length) if length else b""
    if flags & FLAG_ZLIB:
        try:
            payload = zlib.decompress(payload)
        except zlib.error as err:
            raise FrameError(f"corrupt compressed payload: {err}") from err
        if len(payload) > MAX_PAYLOAD:
            raise FrameError(
                f"decompressed payload of {len(payload)} bytes exceeds frame limit"
            )
    return kind, payload, flags, length


def read_frame(sock: socket.socket) -> Tuple[int, bytes]:
    """Read one complete frame; returns ``(kind, payload)``.

    Compressed frames are inflated transparently; callers that need the
    flags or on-the-wire size use :func:`read_frame_ex`.
    """
    kind, payload, _flags, _wire_len = read_frame_ex(sock)
    return kind, payload
