"""Length-prefixed binary framing for the tcp transport.

Every message on a :mod:`repro.net` socket is one *frame*:

====== ====== ===========================================================
offset size   field
====== ====== ===========================================================
0      2      magic ``b"RN"``
2      1      protocol version (currently 1)
3      1      frame kind: 1 = request, 2 = response
4      4      payload length, unsigned big-endian
8      n      payload (closure-pickled, :mod:`repro.dag.serde`)
====== ====== ===========================================================

The header is versioned so a future wire change can be detected instead
of misparsed; a magic/version mismatch raises :class:`FrameError`
immediately rather than desynchronizing the stream.  Payload size is
bounded (1 GiB) purely as a corruption guard — a garbled length field
otherwise reads as a multi-terabyte allocation.
"""

from __future__ import annotations

import socket
import struct
from typing import Tuple

from repro.common.errors import ReproError

MAGIC = b"RN"
VERSION = 1
KIND_REQUEST = 1
KIND_RESPONSE = 2

HEADER = struct.Struct(">2sBBI")
HEADER_SIZE = HEADER.size  # 8 bytes
MAX_PAYLOAD = 1 << 30


class FrameError(ReproError):
    """The byte stream does not parse as a repro.net frame."""


class ConnectionClosed(ReproError):
    """The peer closed the connection (EOF) at a frame boundary or
    mid-frame."""


def encode_frame(kind: int, payload: bytes) -> bytes:
    """Build one wire frame: versioned header + payload."""
    if len(payload) > MAX_PAYLOAD:
        raise FrameError(f"payload of {len(payload)} bytes exceeds frame limit")
    return HEADER.pack(MAGIC, VERSION, kind, len(payload)) + payload


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionClosed(
                f"peer closed connection ({len(buf)}/{n} bytes read)"
            )
        buf.extend(chunk)
    return bytes(buf)


def read_frame(sock: socket.socket) -> Tuple[int, bytes]:
    """Read one complete frame; returns ``(kind, payload)``.

    Raises :class:`ConnectionClosed` on EOF and :class:`FrameError` on a
    header that is not ours (wrong magic, unknown version, absurd size).
    """
    header = _recv_exact(sock, HEADER_SIZE)
    magic, version, kind, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version != VERSION:
        raise FrameError(f"unsupported frame version {version}")
    if kind not in (KIND_REQUEST, KIND_RESPONSE):
        raise FrameError(f"unknown frame kind {kind}")
    if length > MAX_PAYLOAD:
        raise FrameError(f"frame length {length} exceeds limit")
    payload = _recv_exact(sock, length) if length else b""
    return kind, payload
