"""repro.net: a real TCP message transport for the engine.

The in-process :class:`repro.engine.rpc.Transport` makes coordination
cost a *simulation* (an injected sleep); this package makes it *real*:
length-prefixed framed messages over loopback sockets, a per-peer
connection pool with connect/call timeouts and bounded-backoff dial
retries, a per-transport socket server, and a hub-based discovery
protocol so a cluster shares nothing but one socket address.  Selected
via ``TransportConf(backend="tcp")`` or ``REPRO_TRANSPORT=tcp``; see
``docs/networking.md``.
"""

from repro.net.framing import (
    ConnectionClosed,
    FrameError,
    encode_frame,
    read_frame,
)
from repro.net.pool import ConnectFailed, ConnectionPool
from repro.net.server import MessageServer, live_servers
from repro.net.transport import TcpTransport

__all__ = [
    "ConnectFailed",
    "ConnectionClosed",
    "ConnectionPool",
    "FrameError",
    "MessageServer",
    "TcpTransport",
    "encode_frame",
    "live_servers",
    "read_frame",
]
