"""Socket server: accepts framed requests and dispatches to a handler.

One :class:`MessageServer` fronts one transport (and therefore every
endpoint registered on it).  The threading model is deliberately simple —
an accept loop plus one daemon thread per connection, each handling one
request at a time in arrival order — because peers open as many pooled
connections as they have concurrent calls in flight; concurrency comes
from the pool, not from per-connection multiplexing.

Closing the server is the wire-level crash model: the listener and every
active connection are torn down, so peers observe connection refused /
reset — exactly what :class:`~repro.common.errors.WorkerLost` detection
(§3.3) keys off.
"""

from __future__ import annotations

import contextlib
import socket
import threading
import weakref
from typing import Callable, List, Set, Tuple

from repro.chaos.injector import chaos_hit
from repro.chaos.plan import KIND_SERVER_KILL, SITE_NET_SERVE
from repro.common.metrics import (
    COUNT_NET_BYTES_RECEIVED,
    COUNT_NET_BYTES_SAVED_COMPRESSION,
    COUNT_NET_BYTES_SENT,
    MetricsRegistry,
)
from repro.net.framing import (
    KIND_REQUEST,
    KIND_RESPONSE,
    ConnectionClosed,
    FrameError,
    compress_payload,
    encode_frame,
    read_frame_ex,
)

# Every open server, for leak detection: tests assert that no server
# outlives its cluster (see the autouse fixture in tests/conftest.py).
_LIVE_SERVERS: "weakref.WeakSet[MessageServer]" = weakref.WeakSet()


def live_servers() -> List["MessageServer"]:
    """Servers that have been opened and not yet closed (leak check)."""
    return [s for s in _LIVE_SERVERS if not s.closed]


class MessageServer:
    """Listener + per-connection dispatch threads for one transport."""

    def __init__(
        self,
        handler: Callable[[bytes], bytes],
        metrics: MetricsRegistry,
        host: str = "127.0.0.1",
        name: str = "net",
        compression: str = "off",
        compress_threshold: int = 4096,
    ):
        self._handler = handler
        self.metrics = metrics
        self._compression = compression
        self._compress_threshold = compress_threshold
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, 0))
        self._listener.listen(128)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._conns: Set[socket.socket] = set()
        self._lock = threading.Lock()
        self._closed = False
        self._conn_seq = 0
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"{name}-accept", daemon=True
        )
        self._name = name
        _LIVE_SERVERS.add(self)
        self._accept_thread.start()

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _peer = self._listener.accept()
            except OSError:
                return  # listener closed
            with self._lock:
                if self._closed:
                    with contextlib.suppress(OSError):
                        conn.close()
                    return
                self._conns.add(conn)
                self._conn_seq += 1
                seq = self._conn_seq
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"{self._name}-conn-{seq}",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                try:
                    kind, payload, _flags, wire_len = read_frame_ex(conn)
                except (ConnectionClosed, FrameError, OSError):
                    return
                if kind != KIND_REQUEST:
                    return  # protocol violation; drop the connection
                # Byte counters are wire truth: the compressed size.
                self.metrics.counter(COUNT_NET_BYTES_RECEIVED).add(wire_len)
                if self._name != "driver":
                    # The driver's server is exempt: killing it ends the
                    # run rather than exercising §3.3 recovery.
                    fault = chaos_hit(SITE_NET_SERVE, target=self._name)
                    if fault is not None:
                        if fault.kind == KIND_SERVER_KILL:
                            self.close()
                            return
                        # KIND_RESPONSE_DROP: the handler never runs, the
                        # caller sees its connection reset mid-exchange.
                        return
                response = self._handler(payload)
                wire, flags, saved = compress_payload(
                    response, self._compression, self._compress_threshold
                )
                if saved:
                    self.metrics.counter(
                        COUNT_NET_BYTES_SAVED_COMPRESSION
                    ).add(saved)
                frame = encode_frame(KIND_RESPONSE, wire, flags)
                try:
                    conn.sendall(frame)
                except OSError:
                    return
                self.metrics.counter(COUNT_NET_BYTES_SENT).add(len(frame))
        finally:
            with self._lock:
                self._conns.discard(conn)
            with contextlib.suppress(OSError):
                conn.close()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear down the listener and every active connection (the crash
        model: peers see refused/reset from now on)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            conns = list(self._conns)
        # shutdown() before close(): while the accept thread is blocked
        # inside accept(), close() alone only drops the fd-table entry —
        # the kernel socket keeps listening until the syscall returns, so
        # peers could still connect (and then hang) during that window.
        with contextlib.suppress(OSError):
            self._listener.shutdown(socket.SHUT_RDWR)
        with contextlib.suppress(OSError):
            self._listener.close()
        for conn in conns:
            with contextlib.suppress(OSError):
                conn.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                conn.close()
        self._accept_thread.join(timeout=1.0)
