"""Minimal discrete-event loop for the task-level simulator.

Events are (time, sequence, callback) triples on a heap; causality is
enforced (an event may only schedule at or after the current time).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.common.errors import SimulationError


class EventLoop:
    """A deterministic event heap with FIFO tie-breaking."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list = []
        self._seq = itertools.count()
        self._processed = 0

    def at(self, when: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` at absolute time ``when``."""
        if when < self.now - 1e-12:
            raise SimulationError(
                f"causality violation: scheduling at {when} < now {self.now}"
            )
        heapq.heappush(self._heap, (when, next(self._seq), fn))

    def after(self, delay: float, fn: Callable[[], None]) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.at(self.now + delay, fn)

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> int:
        """Process events (optionally only up to time ``until``); returns
        the number of events processed."""
        processed = 0
        while self._heap:
            when, _seq, fn = self._heap[0]
            if until is not None and when > until:
                break
            heapq.heappop(self._heap)
            self.now = when
            fn()
            processed += 1
            if processed > max_events:
                raise SimulationError("event budget exhausted (runaway loop?)")
        self._processed += processed
        return processed

    @property
    def pending(self) -> int:
        return len(self._heap)
