"""Cluster simulator: cost model + micro-benchmark and streaming sims.

Substitutes for the paper's 128-node EC2 cluster.  Control-plane and
recovery behaviour are simulated at batch/window granularity against a
cost model calibrated to the paper's reported anchor numbers (see
``costmodel.py`` for the anchor list).
"""

from repro.sim.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.sim.events import EventLoop
from repro.sim.tasksim import TaskSimResult, simulate_microbenchmark_events
from repro.sim.elasticity import (
    ElasticityResult,
    group_size_adaptation_sweep,
    simulate_resize,
)
from repro.sim.microbench import (
    MicroBenchConfig,
    MicroBenchResult,
    run_microbenchmark,
    weak_scaling_sweep,
)
from repro.sim.streaming import (
    StreamRunResult,
    SystemConfig,
    WindowLatency,
    flink_normal_latency,
    max_throughput,
    microbatch_service_time,
    simulate_flink,
    simulate_microbatch,
    simulate_stream,
    tune_batch_interval,
)

__all__ = [
    "DEFAULT_COST_MODEL",
    "CostModel",
    "ElasticityResult",
    "group_size_adaptation_sweep",
    "simulate_resize",
    "EventLoop",
    "TaskSimResult",
    "simulate_microbenchmark_events",
    "MicroBenchConfig",
    "MicroBenchResult",
    "run_microbenchmark",
    "weak_scaling_sweep",
    "StreamRunResult",
    "SystemConfig",
    "WindowLatency",
    "flink_normal_latency",
    "max_throughput",
    "microbatch_service_time",
    "simulate_flink",
    "simulate_microbatch",
    "simulate_stream",
    "tune_batch_interval",
]
