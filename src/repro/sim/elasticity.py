"""Elasticity simulation (§3.3): reacting to cluster resizes.

"At the end of a group boundary, Drizzle updates the list of available
resources and adjusts the tasks to be scheduled for the next group.  Thus
in this case, using a larger group size could lead to larger delays in
responding to cluster changes."

We simulate a load spike absorbed by adding machines at ``resize_at_s``:
new capacity becomes *schedulable* only at the next group boundary, so
the window latencies between the resize request and the boundary show the
adaptation delay — which grows with the group size (the trade-off the
§3.4 tuner balances).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.sim.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.sim.streaming import (
    StreamRunResult,
    SystemConfig,
    _window_latencies,
    microbatch_service_time,
)
from repro.workloads.profiles import WorkloadProfile


@dataclass
class ElasticityResult:
    config: SystemConfig
    run: StreamRunResult
    resize_effective_s: float  # when the new machines began serving
    adaptation_delay_s: float  # resize request -> effective


def simulate_resize(
    profile: WorkloadProfile,
    config: SystemConfig,
    rate_before: float,
    rate_after: float,
    duration_s: float,
    resize_at_s: float,
    machines_after: int,
    batch_interval_s: float,
    seed: int = 0,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> ElasticityResult:
    """Load rises from ``rate_before`` to ``rate_after`` at ``resize_at_s``
    and the cluster manager grants ``machines_after`` machines at the same
    moment; they are *used* from the next group boundary onward."""
    interval = batch_interval_s
    group = config.group_size if config.kind == "drizzle" else 1
    rng = random.Random(seed)
    num_batches = int(duration_s / interval)

    # Group boundary at/after the resize request.
    resize_batch = int(math.ceil(resize_at_s / interval))
    boundary_batch = int(math.ceil(resize_batch / group)) * group
    resize_effective_s = boundary_batch * interval

    completions: List[float] = []
    prev = 0.0
    for b in range(num_batches):
        arrival = (b + 1) * interval
        rate = rate_before if arrival <= resize_at_s else rate_after
        machines = config.machines if b < boundary_batch else machines_after
        service, _ = microbatch_service_time(
            profile, config, rate, interval, cost, machines=machines
        )
        service *= math.exp(rng.gauss(0.0, profile.noise_sigma))
        start = max(arrival, prev)
        prev = start + service
        completions.append(prev)

    run = StreamRunResult(
        config=config,
        rate_events_per_s=rate_after,
        batch_interval_s=interval,
        window_latencies=_window_latencies(profile.window_s, interval, completions),
        stable=True,
    )
    normal = [
        w.latency_s for w in run.window_latencies if w.window_end_s < resize_at_s
    ]
    run.normal_median_latency_s = sorted(normal)[len(normal) // 2] if normal else 0.0
    return ElasticityResult(
        config=config,
        run=run,
        resize_effective_s=resize_effective_s,
        adaptation_delay_s=resize_effective_s - resize_at_s,
    )


def group_size_adaptation_sweep(
    group_sizes=(1, 20, 120),
    profile: Optional[WorkloadProfile] = None,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> List[dict]:
    """The §3.3 trade-off: adaptation delay and the resulting latency
    spike grow with group size when the cluster must be resized under a
    load spike (the resize lands mid-group on purpose)."""
    from repro.workloads.profiles import YAHOO

    profile = profile or YAHOO
    rows = []
    for g in group_sizes:
        config = SystemConfig(kind="drizzle", machines=64, group_size=g)
        result = simulate_resize(
            profile,
            config,
            rate_before=8e6,
            rate_after=13e6,
            duration_s=300.0,
            resize_at_s=121.3,  # deliberately unaligned with boundaries
            machines_after=128,
            batch_interval_s=0.5,
        )
        spike = max(
            w.latency_s
            for w in result.run.window_latencies
            if 120.0 <= w.window_end_s <= 250.0
        )
        rows.append(
            {
                "group_size": g,
                "adaptation_delay_s": result.adaptation_delay_s,
                "post_resize_spike_s": spike,
                "normal_median_s": result.run.normal_median_latency_s,
            }
        )
    return rows
