"""Task-granularity discrete-event simulation of the micro-benchmarks.

The analytic evaluator in :mod:`repro.sim.microbench` computes batch times
in closed form.  This module simulates the same runs **event by event** on
:class:`~repro.sim.events.EventLoop` — the driver as a serial resource
doing per-task scheduling work, worker slots as queued servers, per-task
launch messages, map-completion notifications, and shuffle fetches — and
is used to *cross-validate* the closed form
(``tests/test_sim_tasksim.py`` asserts they agree within tolerance).

Being event-driven, it also models what the closed form elides:

* queueing when tasks outnumber slots (multiple waves),
* reducers activating as their *individual* dependencies finish — which
  makes the §3.6 tree-structure narrowing (``tree_fan_in``) directly
  observable as earlier reducer start times.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.sim.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.sim.events import EventLoop
from repro.sim.microbench import MicroBenchConfig


@dataclass
class TaskTrace:
    batch: int
    stage: int
    index: int
    ready_at: float
    started_at: float
    finished_at: float


@dataclass
class TaskSimResult:
    config: MicroBenchConfig
    batch_completions: List[float]
    traces: List[TaskTrace] = field(default_factory=list)
    events_processed: int = 0

    @property
    def total_time_s(self) -> float:
        return max(self.batch_completions) if self.batch_completions else 0.0

    @property
    def time_per_batch_s(self) -> float:
        n = len(self.batch_completions)
        return self.total_time_s / n if n else 0.0

    def reducer_start_times(self, batch: int) -> List[float]:
        return sorted(
            t.started_at for t in self.traces if t.batch == batch and t.stage == 1
        )


class _SlotPool:
    """Queued multi-server resource living on the event loop."""

    def __init__(self, loop: EventLoop, n: int):
        self.loop = loop
        self.free = n
        self.queue: Deque[Tuple[float, callable]] = deque()

    def submit(self, duration: float, on_finish) -> None:
        """Run a task for ``duration`` once a slot frees up; calls
        ``on_finish(start_time, finish_time)`` at completion."""
        if self.free > 0:
            self.free -= 1
            self._start(duration, on_finish)
        else:
            self.queue.append((duration, on_finish))

    def _start(self, duration: float, on_finish) -> None:
        start = self.loop.now

        def finish() -> None:
            on_finish(start, self.loop.now)
            if self.queue:
                next_duration, next_cb = self.queue.popleft()
                self._start(next_duration, next_cb)
            else:
                self.free += 1

        self.loop.after(duration, finish)


class _Driver:
    """Serial control-plane resource: work items run back to back."""

    def __init__(self, loop: EventLoop):
        self.loop = loop
        self.free_at = 0.0

    def work(self, ready_at: float, duration: float, then) -> None:
        begin = max(ready_at, self.free_at)
        self.free_at = begin + duration
        self.loop.at(self.free_at, then)


def simulate_microbenchmark_events(
    config: MicroBenchConfig,
    cost: CostModel = DEFAULT_COST_MODEL,
    keep_traces: bool = False,
    tree_fan_in: Optional[int] = None,
) -> TaskSimResult:
    """Event-driven run of ``config.num_batches`` micro-batches.

    ``tree_fan_in`` switches the shuffle's dependency structure from
    all-to-all to §3.6 tree narrowing (only meaningful with reducers and
    pre-scheduled modes, where reducers trigger on notifications).
    """
    if config.mode == "pipelined":
        raise SimulationError(
            "pipelined mode is defined analytically (b*max(exec, sched)); "
            "use repro.sim.microbench for it"
        )
    if tree_fan_in is not None and config.num_reducers == 0:
        raise SimulationError("tree_fan_in requires a shuffle stage")

    loop = EventLoop()
    slots = _SlotPool(loop, config.machines * config.slots_per_machine)
    driver = _Driver(loop)
    n_maps = config.num_map_tasks
    n_reds = config.num_reducers
    result = TaskSimResult(config=config, batch_completions=[0.0] * config.num_batches)
    traces: List[TaskTrace] = []
    outstanding: List[int] = [0] * config.num_batches  # tasks left per batch

    def deps_of_reducer(r: int) -> int:
        """How many map notifications reducer ``r`` waits for."""
        if tree_fan_in is None:
            return n_maps
        lo = r * tree_fan_in
        return max(0, min(tree_fan_in, n_maps - lo))

    def record(batch: int, stage: int, index: int, ready: float,
               start: float, finish: float) -> None:
        if keep_traces:
            traces.append(TaskTrace(batch, stage, index, ready, start, finish))
        result.batch_completions[batch] = max(
            result.batch_completions[batch], finish + cost.net_latency_s
        )

    def start_batch_dataplane(batch: int) -> None:
        """Tasks for ``batch`` have arrived on the workers: launch maps;
        reducers trigger on map-completion notifications."""
        remaining = [deps_of_reducer(r) for r in range(n_reds)]

        def launch_reducer(r: int) -> None:
            ready = loop.now
            duration = (
                cost.shuffle_fetch_time(
                    deps_of_reducer(r), config.shuffle_bytes_per_reducer
                )
                + config.reduce_compute_s
            )
            slots.submit(
                duration,
                lambda start, finish, r=r, ready=ready: (
                    record(batch, 1, r, ready, start, finish),
                    task_done(batch),
                ),
            )

        def map_finished(m: int, ready: float, start: float, finish: float) -> None:
            record(batch, 0, m, ready, start, finish)
            # Notify dependent reducers (one net hop).
            def notify() -> None:
                if tree_fan_in is None:
                    targets = range(n_reds)
                else:
                    targets = [m // tree_fan_in] if m // tree_fan_in < n_reds else []
                for r in targets:
                    remaining[r] -= 1
                    if remaining[r] == 0:
                        launch_reducer(r)
            if n_reds > 0:
                loop.after(cost.net_latency_s, notify)
            task_done(batch)

        def launch_map(m: int) -> None:
            ready = loop.now
            slots.submit(
                config.task_compute_s,
                lambda start, finish, m=m, ready=ready: map_finished(
                    m, ready, start, finish
                ),
            )

        for m in range(n_maps):
            loop.after(cost.net_latency_s, lambda m=m: launch_map(m))

    group_task_hook = [lambda: None]

    def task_done(batch: int) -> None:
        outstanding[batch] -= 1
        group_task_hook[0]()

    # ------------------------------------------------------------------
    # Control plane per mode
    # ------------------------------------------------------------------
    n_tasks = n_maps + n_reds
    for b in range(config.num_batches):
        outstanding[b] = n_tasks

    if config.mode == "spark":
        # Sequential batches; within a batch, stage-by-stage with a driver
        # barrier.  (Spark's driver launches reducers only after all map
        # reports, so reducer "notifications" come from the driver.)
        def schedule_spark_batch(b: int) -> None:
            if b >= config.num_batches:
                return
            sched0 = cost.per_job_fixed_s + n_maps * (
                cost.sched_per_task_s + cost.serialize_per_task_s + cost.rpc_send_s
            )

            maps_left = [n_maps]

            def after_map_stage() -> None:
                if n_reds == 0:
                    schedule_spark_batch(b + 1)
                    return
                sched1 = n_reds * (
                    cost.sched_per_task_s
                    + cost.serialize_per_task_s
                    + cost.rpc_send_s
                ) + 2 * cost.net_latency_s

                reds_left = [n_reds]

                def launch_reducers() -> None:
                    for r in range(n_reds):
                        ready = loop.now + cost.net_latency_s

                        def go(r=r, ready=ready) -> None:
                            duration = (
                                cost.shuffle_fetch_time(
                                    n_maps, config.shuffle_bytes_per_reducer
                                )
                                + config.reduce_compute_s
                            )
                            slots.submit(
                                duration,
                                lambda start, finish, r=r, ready=ready: (
                                    record(b, 1, r, ready, start, finish),
                                    task_done(b),
                                    _red_done(),
                                ),
                            )

                        loop.after(cost.net_latency_s, go)

                def _red_done() -> None:
                    reds_left[0] -= 1
                    if reds_left[0] == 0:
                        schedule_spark_batch(b + 1)

                driver.work(loop.now, sched1, launch_reducers)

            def launch_maps() -> None:
                for m in range(n_maps):
                    def go(m=m) -> None:
                        ready = loop.now
                        slots.submit(
                            config.task_compute_s,
                            lambda start, finish, m=m, ready=ready: (
                                record(b, 0, m, ready, start, finish),
                                task_done(b),
                                _map_done(),
                            ),
                        )

                    loop.after(cost.net_latency_s, go)

            def _map_done() -> None:
                maps_left[0] -= 1
                if maps_left[0] == 0:
                    # Reports travel back to the driver.
                    loop.after(cost.net_latency_s, after_map_stage)

            driver.work(loop.now, sched0, launch_maps)

        loop.at(0.0, lambda: schedule_spark_batch(0))
    elif config.mode in ("only-pre", "drizzle"):
        group = 1 if config.mode == "only-pre" else config.group_size
        group_left = [0]

        def schedule_group(first: int) -> None:
            if first >= config.num_batches:
                return
            size = min(group, config.num_batches - first)
            if config.mode == "only-pre":
                coord = size * (
                    cost.per_job_fixed_s
                    + n_tasks * (cost.sched_per_task_s + cost.serialize_per_task_s)
                    + config.machines * cost.rpc_send_s
                )
            else:
                coord = (
                    n_tasks * cost.sched_per_task_s
                    + size * n_tasks * cost.group_serialize_per_task_s
                    + config.machines * cost.rpc_send_s
                    + size * cost.group_per_batch_s
                )

            def launch_group() -> None:
                group_left[0] = size * n_tasks
                group_done[0] = lambda: schedule_group(first + size)
                for i in range(size):
                    start_batch_dataplane(first + i)

            driver.work(loop.now, coord, launch_group)

        group_done = [lambda: None]

        def on_task_done() -> None:
            group_left[0] -= 1
            if group_left[0] == 0:
                # The whole group drained; the job generator submits the
                # next group (coordination once per group, §3.1).
                group_done[0]()

        group_task_hook[0] = on_task_done
        loop.at(0.0, lambda: schedule_group(0))
    else:  # pragma: no cover
        raise SimulationError(f"unsupported mode {config.mode}")

    result.events_processed = loop.run()
    if any(n != 0 for n in outstanding):
        raise SimulationError("simulation ended with outstanding tasks")
    result.traces = traces
    return result
