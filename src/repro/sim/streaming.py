"""Batch-granularity discrete-event simulation of streaming execution.

Reproduces the Yahoo-benchmark experiments (Figures 6–9) at 128-machine
scale.  Three system models share the :class:`~repro.sim.costmodel.CostModel`:

* ``spark``   — micro-batch with per-batch barrier scheduling,
* ``drizzle`` — micro-batch with group scheduling + pre-scheduling,
* ``flink``   — continuous operators (buffer flush + queueing latency,
  aligned checkpoints, stop-the-world rollback recovery).

The micro-batch simulation is a single-server queue over batches: batch
*b* is fully collected at ``(b+1)·T`` and its service time is composed
from the cost model (coordination + map wave + shuffle + reduce), with
multiplicative lognormal noise and optional skew.  Window *k*'s event
latency is the completion time of the batch that closes the window minus
the window end — exactly the benchmark's metric (§5.3).

Failures (Fig. 7): a machine is killed at ``failure_at_s``.  Micro-batch
systems pay detection + re-scheduling + re-execution of the lost tasks on
the affected batch and continue (parallel recovery); the continuous system
restarts the whole topology from the last aligned checkpoint and must
re-process everything since, catching up at its spare-capacity rate.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.sim.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.workloads.profiles import WorkloadProfile


@dataclass(frozen=True)
class SystemConfig:
    """One system under test."""

    kind: str  # "spark" | "drizzle" | "flink"
    machines: int = 128
    slots_per_machine: int = 4
    batch_interval_s: Optional[float] = None  # None -> auto-tuned
    group_size: int = 100
    optimized: bool = False  # §3.5 within-batch optimizations
    checkpoint_interval_s: float = 10.0
    # Fraction of shuffle fetch setup hidden by pre-scheduling (reducers
    # start pulling as soon as individual maps finish, §3.2).
    fetch_overlap: float = 0.6
    # Continuous-operator knobs.
    flink_flush_s: float = 0.15
    flink_quantum_s: float = 0.09
    flink_flush_overhead: float = 0.0015  # per-record overhead ~ 1/flush

    def __post_init__(self) -> None:
        if self.kind not in ("spark", "drizzle", "flink"):
            raise SimulationError(f"unknown system kind {self.kind!r}")
        if self.machines < 2:
            raise SimulationError("need at least 2 machines")

    @property
    def total_slots(self) -> int:
        return self.machines * self.slots_per_machine

    def with_(self, **kwargs) -> "SystemConfig":
        from dataclasses import replace

        return replace(self, **kwargs)


@dataclass
class WindowLatency:
    window_end_s: float
    latency_s: float


@dataclass
class StreamRunResult:
    """Outcome of one simulated streaming run."""

    config: SystemConfig
    rate_events_per_s: float
    batch_interval_s: Optional[float]
    window_latencies: List[WindowLatency]
    stable: bool
    normal_median_latency_s: float = 0.0
    service_components: Dict[str, float] = field(default_factory=dict)

    def latencies(self) -> List[float]:
        return [w.latency_s for w in self.window_latencies]


# ----------------------------------------------------------------------
# Micro-batch service-time composition
# ----------------------------------------------------------------------
def microbatch_service_time(
    profile: WorkloadProfile,
    config: SystemConfig,
    rate: float,
    batch_interval_s: float,
    cost: CostModel = DEFAULT_COST_MODEL,
    machines: Optional[int] = None,
) -> Tuple[float, Dict[str, float]]:
    """Deterministic (noise-free) service time of one micro-batch."""
    if config.kind not in ("spark", "drizzle"):
        raise SimulationError("service time applies to micro-batch systems")
    machines = machines if machines is not None else config.machines
    slots = machines * config.slots_per_machine
    records = rate * batch_interval_s
    num_maps = slots  # tasks sized to cores, as in the paper's setup
    num_reducers = min(slots, 16 * config.slots_per_machine)
    tasks_per_stage = {0: num_maps, 1: num_reducers}

    if config.kind == "spark":
        coord = cost.spark_batch_coordination(machines, tasks_per_stage)
        overlap = 0.0
    else:
        coord = cost.drizzle_per_batch_coordination(
            machines, tasks_per_stage, config.group_size
        )
        overlap = config.fetch_overlap

    map_compute = records * profile.map_cost(config.optimized) / slots
    shuffle_bytes = records * profile.shuffle_bytes_per_record(config.optimized)
    fetch_setup = num_maps * cost.fetch_setup_s * (1.0 - overlap)
    fetch_data = shuffle_bytes / (cost.net_bandwidth_Bps * machines)
    reduced_records = records * (
        profile.combine_volume_factor if config.optimized else 1.0
    )
    reduce_compute = reduced_records * profile.reduce_record_cost_s / slots

    components = {
        "coordination": coord,
        "batch_fixed": cost.batch_fixed_s,
        "map_compute": map_compute,
        "fetch_setup": fetch_setup,
        "fetch_data": fetch_data,
        "reduce_compute": reduce_compute,
    }
    return sum(components.values()), components


def tune_batch_interval(
    profile: WorkloadProfile,
    config: SystemConfig,
    rate: float,
    cost: CostModel = DEFAULT_COST_MODEL,
    utilization_cap: float = 0.92,
    candidates: Optional[List[float]] = None,
) -> Optional[float]:
    """Pick the batch interval minimizing latency subject to stability —
    "we tuned each system to minimize latency while meeting throughput
    requirements; in Spark this required tuning the micro-batch size"
    (§5.3).  Returns None when no interval is stable (the system falls
    behind at this rate)."""
    if candidates is None:
        candidates = [
            0.05, 0.075, 0.1, 0.15, 0.2, 0.25, 0.35, 0.5, 0.75,
            1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 7.5, 10.0,
        ]
    # Stability must hold for the *mean* service time including lognormal
    # noise (mean = exp(sigma^2/2)) and workload skew.
    mean_multiplier = math.exp(profile.noise_sigma**2 / 2.0) * (
        1.0 + profile.skew_fraction * (profile.skew_factor - 1.0)
    )
    best: Optional[Tuple[float, float]] = None
    for interval in candidates:
        service, _ = microbatch_service_time(profile, config, rate, interval, cost)
        if service * mean_multiplier > utilization_cap * interval:
            continue
        # Latency of a closing window ~ service of the closing batch.
        if best is None or service < best[1]:
            best = (interval, service)
    return best[0] if best else None


# ----------------------------------------------------------------------
# Micro-batch run simulation
# ----------------------------------------------------------------------
def simulate_microbatch(
    profile: WorkloadProfile,
    config: SystemConfig,
    rate: float,
    duration_s: float,
    seed: int = 0,
    cost: CostModel = DEFAULT_COST_MODEL,
    failure_at_s: Optional[float] = None,
) -> StreamRunResult:
    interval = config.batch_interval_s or tune_batch_interval(profile, config, rate, cost)
    if interval is None:
        return StreamRunResult(config, rate, None, [], stable=False)
    rng = random.Random(seed)
    num_batches = int(duration_s / interval)
    base_service, components = microbatch_service_time(
        profile, config, rate, interval, cost
    )
    machines = config.machines

    completions: List[float] = []
    prev_completion = 0.0
    failure_handled = False
    for b in range(num_batches):
        arrival = (b + 1) * interval
        noise = math.exp(rng.gauss(0.0, profile.noise_sigma))
        service = base_service * noise
        if profile.skew_fraction > 0 and rng.random() < profile.skew_fraction:
            service *= profile.skew_factor
        if (
            failure_at_s is not None
            and not failure_handled
            and arrival + base_service >= failure_at_s
            and arrival <= failure_at_s + interval
        ):
            # The machine dies while this batch is in flight: detection,
            # re-scheduling, and re-execution of the lost tasks (one map
            # wave + the affected shuffle fetches) on the surviving
            # machines.  Recovery tasks run in parallel (§3.3), so the
            # penalty is roughly one extra wave, not a full batch.
            slots = config.total_slots
            num_maps = slots
            resched = cost.recovery_sched_s + num_maps * cost.sched_per_task_s
            if config.kind == "spark":
                # Per-batch scheduling also re-serializes and re-launches.
                resched += num_maps * (cost.serialize_per_task_s + cost.rpc_send_s)
            rerun = components["map_compute"] + components["fetch_setup"] + components[
                "fetch_data"
            ]
            service += cost.detect_failure_s + resched + rerun
            failure_handled = True
            machines = config.machines - 1
        start = max(arrival, prev_completion)
        completion = start + service
        completions.append(completion)
        prev_completion = completion
        if completion - arrival > 50 * interval + 60.0:
            # Hopelessly backlogged: declare the run unstable.
            return StreamRunResult(config, rate, interval, [], stable=False)

    window_latencies = _window_latencies(
        profile.window_s, interval, completions
    )
    normal = [
        w.latency_s
        for w in window_latencies
        if failure_at_s is None
        or w.window_end_s < failure_at_s - profile.window_s
    ]
    normal_median = sorted(normal)[len(normal) // 2] if normal else 0.0
    return StreamRunResult(
        config,
        rate,
        interval,
        window_latencies,
        stable=True,
        normal_median_latency_s=normal_median,
        service_components=components,
    )


def _window_latencies(
    window_s: float, interval: float, completions: List[float]
) -> List[WindowLatency]:
    """Latency of each closed window: completion of the batch whose input
    ends at (or first covers) the window end, minus the window end."""
    out: List[WindowLatency] = []
    num_batches = len(completions)
    horizon = num_batches * interval
    k = 0
    while (k + 1) * window_s <= horizon:
        window_end = (k + 1) * window_s
        closing_batch = int(math.ceil(window_end / interval)) - 1
        closing_batch = min(max(closing_batch, 0), num_batches - 1)
        latency = completions[closing_batch] - window_end
        out.append(WindowLatency(window_end, max(latency, 0.0)))
        k += 1
    return out


# ----------------------------------------------------------------------
# Continuous-operator (Flink-style) run simulation
# ----------------------------------------------------------------------
def flink_utilization(
    profile: WorkloadProfile, config: SystemConfig, rate: float, machines: Optional[int] = None
) -> float:
    machines = machines if machines is not None else config.machines
    slots = machines * config.slots_per_machine
    per_record = profile.record_cost_s * (
        1.0 + config.flink_flush_overhead / max(config.flink_flush_s, 1e-3)
    )
    return rate * per_record / slots


def flink_normal_latency(
    profile: WorkloadProfile, config: SystemConfig, rate: float
) -> Optional[float]:
    """Steady-state window latency: buffer flush + queueing delay."""
    rho = flink_utilization(profile, config, rate)
    if rho >= 0.97:
        return None
    return config.flink_flush_s + config.flink_quantum_s / (1.0 - rho)


def simulate_flink(
    profile: WorkloadProfile,
    config: SystemConfig,
    rate: float,
    duration_s: float,
    seed: int = 0,
    cost: CostModel = DEFAULT_COST_MODEL,
    failure_at_s: Optional[float] = None,
) -> StreamRunResult:
    base = flink_normal_latency(profile, config, rate)
    if base is None:
        return StreamRunResult(config, rate, None, [], stable=False)
    rng = random.Random(seed)

    # Failure timeline: topology restarts from the last completed aligned
    # checkpoint; everything since is re-processed serially ("each
    # continuous operator is recovered serially ... all the nodes are
    # rolled back to the last consistent checkpoint and records are then
    # replayed", §2.2) while new input keeps arriving.
    restart_done_s = None
    checkpoint_pos = None
    catch_up_rate = None
    if failure_at_s is not None:
        rho_after = flink_utilization(profile, config, rate, machines=config.machines - 1)
        if rho_after >= 0.999:
            catch_up_rate = 1.0001
        else:
            catch_up_rate = 1.0 / rho_after
        n_ckpt = int(failure_at_s // config.checkpoint_interval_s)
        checkpoint_pos = n_ckpt * config.checkpoint_interval_s
        if checkpoint_pos >= failure_at_s:
            # The barrier exactly at the failure instant never completed.
            checkpoint_pos -= config.checkpoint_interval_s
        restart_done_s = (
            failure_at_s
            + cost.detect_failure_s
            + cost.continuous_restart_time(config.machines)
        )

    window_latencies: List[WindowLatency] = []
    k = 0
    while (k + 1) * profile.window_s <= duration_s:
        window_end = (k + 1) * profile.window_s
        noise = math.exp(rng.gauss(0.0, profile.noise_sigma))
        if failure_at_s is None or window_end + base * noise <= failure_at_s:
            latency = base * noise
        else:
            # When does the (restarted) processor's input position pass
            # this window's end?
            assert restart_done_s is not None and checkpoint_pos is not None
            if window_end <= checkpoint_pos:
                latency = base * noise
            else:
                # Processing position advances ``catch_up_rate`` seconds of
                # input per wall second once the topology has restarted.
                wall = restart_done_s + (window_end - checkpoint_pos) / catch_up_rate
                if wall <= window_end:
                    latency = base * noise  # caught up before the close
                else:
                    latency = (wall - window_end) + base * noise
        window_latencies.append(WindowLatency(window_end, latency))
        k += 1

    normal = [
        w.latency_s
        for w in window_latencies
        if failure_at_s is None or w.window_end_s < (checkpoint_pos or 0)
    ]
    normal_median = sorted(normal)[len(normal) // 2] if normal else base
    return StreamRunResult(
        config,
        rate,
        None,
        window_latencies,
        stable=True,
        normal_median_latency_s=normal_median,
        service_components={"flush": config.flink_flush_s},
    )


def simulate_stream(
    profile: WorkloadProfile,
    config: SystemConfig,
    rate: float,
    duration_s: float,
    seed: int = 0,
    cost: CostModel = DEFAULT_COST_MODEL,
    failure_at_s: Optional[float] = None,
) -> StreamRunResult:
    """Simulate one streaming run of ``duration_s`` seconds at ``rate``
    events/s, dispatching to the micro-batch or continuous model by
    ``config.kind``; optionally kill one machine at ``failure_at_s``."""
    if config.kind == "flink":
        return simulate_flink(profile, config, rate, duration_s, seed, cost, failure_at_s)
    return simulate_microbatch(profile, config, rate, duration_s, seed, cost, failure_at_s)


# ----------------------------------------------------------------------
# Throughput at a latency target (Figures 6b / 8b)
# ----------------------------------------------------------------------
def max_throughput(
    profile: WorkloadProfile,
    config: SystemConfig,
    latency_target_s: float,
    cost: CostModel = DEFAULT_COST_MODEL,
    rate_hi: float = 2.0e8,
) -> float:
    """Binary-search the highest event rate whose steady-state latency
    meets the target (0.0 when even an idle system cannot meet it)."""

    def feasible(rate: float) -> bool:
        if rate <= 0:
            return True
        if config.kind == "flink":
            # The buffer flush duration is the latency/throughput knob.
            for flush in (0.03, 0.05, 0.075, 0.1, 0.15, 0.25, 0.4):
                trial = config.with_(flink_flush_s=flush)
                lat = flink_normal_latency(profile, trial, rate)
                if lat is not None and lat <= latency_target_s:
                    return True
            return False
        interval = tune_batch_interval(profile, config, rate, cost)
        if interval is None:
            return False
        service, _ = microbatch_service_time(profile, config, rate, interval, cost)
        return service <= latency_target_s

    if not feasible(1e5):
        return 0.0
    lo, hi = 1e5, rate_hi
    for _ in range(60):
        mid = (lo + hi) / 2
        if feasible(mid):
            lo = mid
        else:
            hi = mid
    return lo
