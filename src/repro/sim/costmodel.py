"""Cluster cost model for the simulator.

We cannot run 128 r3.xlarge EC2 instances, so the scaling experiments run
against this cost model: a small set of per-operation constants (driver
scheduling cost per task, task serialization cost, RPC send cost, network
round-trip, shuffle fetch setup, per-record compute) from which batch and
group execution times are derived.

Calibration anchors (from the paper's reported numbers):

* Fig. 4(a): Spark-style per-batch scheduling costs ≈195 ms per
  micro-batch at 128 machines (512 single-`ms` tasks), and Drizzle with
  group size 100 runs the same micro-batch in <5 ms.
* Fig. 5(b): a two-stage micro-batch (512 maps, 16 reducers) takes ≈45 ms
  under Drizzle at 128 machines (shuffle fetch dominates), and
  pre-scheduling *alone* saves only ≈20 ms over Spark at 128 machines.
* §5.2: group scheduling + pre-scheduling reduce coordination overheads
  by up to 5.5×; per-batch speedups of 7–46× on the single-stage job.

The constants below reproduce those anchors to within a few percent (see
``tests/test_sim_calibration.py``); everything else — crossovers, scaling
trends, who wins where — *emerges* from the model rather than being
hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


@dataclass(frozen=True)
class CostModel:
    """Per-operation costs, in seconds unless noted."""

    # --- centralized driver (control plane) ---------------------------
    # Placement decision per task (locality lookup, constraint solving).
    sched_per_task_s: float = 240e-6
    # Serialize one task descriptor for the wire.
    serialize_per_task_s: float = 90e-6
    # Amortized serialization per task when tasks for a whole group are
    # batched and serialized on dedicated threads (§4 implementation
    # improvements made in Drizzle).
    group_serialize_per_task_s: float = 4e-6
    # Cost to issue one launch RPC from the driver.
    rpc_send_s: float = 50e-6
    # Fixed per-job bookkeeping at the driver (job creation, completion).
    per_job_fixed_s: float = 2e-3
    # Residual per-batch driver work under group scheduling (timestamped
    # RDD creation in the JobGenerator, completion tracking).
    group_per_batch_s: float = 0.5e-3

    # --- network -------------------------------------------------------
    # One-way network latency between any two machines / driver.
    net_latency_s: float = 250e-6
    # Per-connection setup when a reduce task fetches from one map output.
    fetch_setup_s: float = 80e-6
    # Effective network bandwidth per machine for shuffle data (bytes/s);
    # r3.xlarge-class instances with enhanced networking.
    net_bandwidth_Bps: float = 0.3e9
    # Worker-side fixed cost per micro-batch (task launch on executors,
    # state-store touch, sink commit) — independent of scheduling mode.
    # This is what ultimately floors micro-batch latency (Fig. 6b shows
    # Drizzle topping out near a 250 ms latency target at 20M events/s).
    batch_fixed_s: float = 0.05

    # --- workers (data plane) -------------------------------------------
    # Per-record processing cost for a lightweight op (parse + bucket).
    record_cost_s: float = 0.40e-6
    # Extra per-record cost for heavyweight records (e.g. video heartbeats).
    heavy_record_factor: float = 1.6
    # Reduce-side per-record merge cost.
    reduce_record_cost_s: float = 0.15e-6
    # Worker slot count is supplied per-experiment, not here.

    # --- fault tolerance -------------------------------------------------
    # Heartbeat-based failure detection delay.
    detect_failure_s: float = 0.25
    # Driver work to recompute placement for recovered tasks.
    recovery_sched_s: float = 0.05
    # Continuous-operator (Flink-style) full topology restart: coordination
    # to stop, redeploy and restore all operators.  Grows mildly with
    # cluster size; value for 128 machines ≈ 10 s (Fig. 7 shows most of
    # the 18 s spike is "coordination required to stop and restart all the
    # operators ... and restore execution from the latest checkpoint").
    continuous_restart_base_s: float = 9.0
    continuous_restart_per_machine_s: float = 0.035

    # --- misc -----------------------------------------------------------
    # Multiplicative lognormal noise sigma applied to batch service times.
    service_noise_sigma: float = 0.08

    def with_overrides(self, **kwargs) -> "CostModel":
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Derived control-plane costs
    # ------------------------------------------------------------------
    def spark_batch_coordination(self, num_workers: int, tasks_per_stage: Dict[int, int]) -> float:
        """Driver time to coordinate ONE micro-batch, Spark-style: every
        stage is scheduled separately, each task is serialized and launched
        with its own RPC, and each stage boundary costs a barrier
        round-trip through the driver."""
        total = self.per_job_fixed_s
        for _stage, n_tasks in tasks_per_stage.items():
            total += n_tasks * (
                self.sched_per_task_s + self.serialize_per_task_s + self.rpc_send_s
            )
            # Barrier: last task report in, next stage metadata out.
            total += 2 * self.net_latency_s
        return total

    def prescheduled_batch_coordination(
        self, num_workers: int, tasks_per_stage: Dict[int, int]
    ) -> float:
        """Driver time to coordinate one micro-batch with pre-scheduling
        but NO group scheduling (group size 1): all stages are placed and
        shipped up front (one RPC per worker), removing the intra-batch
        barrier, but placement and serialization still happen per batch."""
        n_tasks = sum(tasks_per_stage.values())
        return (
            self.per_job_fixed_s
            + n_tasks * (self.sched_per_task_s + self.serialize_per_task_s)
            + num_workers * self.rpc_send_s
        )

    def drizzle_group_coordination(
        self, num_workers: int, tasks_per_stage: Dict[int, int], group_size: int
    ) -> float:
        """Driver time to coordinate a GROUP of ``group_size`` micro-batches:
        placement once, batched serialization, one RPC per worker."""
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        n_tasks = sum(tasks_per_stage.values())
        return (
            n_tasks * self.sched_per_task_s  # placement computed once
            + group_size * n_tasks * self.group_serialize_per_task_s
            + num_workers * self.rpc_send_s
            + group_size * self.group_per_batch_s
        )

    def drizzle_per_batch_coordination(
        self, num_workers: int, tasks_per_stage: Dict[int, int], group_size: int
    ) -> float:
        return (
            self.drizzle_group_coordination(num_workers, tasks_per_stage, group_size)
            / group_size
        )

    # ------------------------------------------------------------------
    # Derived data-plane costs
    # ------------------------------------------------------------------
    def stage_wave_time(
        self, n_tasks: int, total_slots: int, task_compute_s: float
    ) -> float:
        """Execution time of one stage: waves of tasks across all slots."""
        if total_slots < 1:
            raise ValueError("total_slots must be >= 1")
        waves = -(-n_tasks // total_slots)  # ceil
        return waves * task_compute_s

    def shuffle_fetch_time(self, num_maps: int, bytes_per_reducer: float) -> float:
        """Time for one reduce task to pull its input: connection setup per
        upstream map output plus the data itself (§5.2: "time to fetch and
        process the shuffle data in the reduce task grows as the number of
        map tasks increase")."""
        return num_maps * self.fetch_setup_s + bytes_per_reducer / self.net_bandwidth_Bps

    def continuous_restart_time(self, num_machines: int) -> float:
        return (
            self.continuous_restart_base_s
            + num_machines * self.continuous_restart_per_machine_s
        )


DEFAULT_COST_MODEL = CostModel()
