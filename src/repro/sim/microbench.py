"""Micro-benchmark simulation (paper §5.2, Figures 4 and 5).

Weak-scaling runs of a 100-micro-batch job across 4–128 machines with
tasks sized to the core count, under four control planes:

* ``spark``          — per-batch, per-stage barrier scheduling;
* ``only-pre``       — pre-scheduling with group size 1 (Figure 5(b));
* ``drizzle``        — pre-scheduling + group scheduling;
* ``pipelined``      — the §3.6 design alternative where scheduling of
  batch *i+1* overlaps execution of batch *i*
  (total = b·max(t_exec, t_sched) instead of b·(t_exec + t_sched)).

Returns both per-micro-batch times (Fig. 4a / 5a / 5b) and the per-task
scheduler-delay / task-transfer / compute breakdown (Fig. 4b).  Trials add
multiplicative lognormal noise so the 5th/95th percentile error bars of
the paper's plots have an analogue.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import SimulationError
from repro.sim.costmodel import DEFAULT_COST_MODEL, CostModel


@dataclass(frozen=True)
class MicroBenchConfig:
    mode: str  # "spark" | "only-pre" | "drizzle" | "pipelined"
    machines: int
    slots_per_machine: int = 4
    group_size: int = 1
    num_batches: int = 100
    # Per-task compute; <1 ms in Fig. 4(a), 100x that in Fig. 5(a).
    task_compute_s: float = 0.9e-3
    # Optional shuffle stage (Fig. 5b): number of reduce tasks (16 there).
    num_reducers: int = 0
    reduce_compute_s: float = 0.5e-3
    shuffle_bytes_per_reducer: float = 1.0e5
    noise_sigma: float = 0.05
    # Override the maps-per-batch count (default: one per core).  Values
    # above the slot count create multiple execution waves (used by the
    # task-level simulator to study staggered map completions).
    num_map_tasks_override: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in ("spark", "only-pre", "drizzle", "pipelined"):
            raise SimulationError(f"unknown mode {self.mode!r}")
        if self.machines < 1:
            raise SimulationError("machines must be >= 1")
        if self.group_size < 1:
            raise SimulationError("group_size must be >= 1")

    @property
    def num_map_tasks(self) -> int:
        if self.num_map_tasks_override is not None:
            return self.num_map_tasks_override
        return self.machines * self.slots_per_machine

    @property
    def tasks_per_stage(self) -> Dict[int, int]:
        stages = {0: self.num_map_tasks}
        if self.num_reducers > 0:
            stages[1] = self.num_reducers
        return stages


@dataclass
class MicroBenchResult:
    config: MicroBenchConfig
    time_per_batch_s: float
    # Per-task averages for the Fig. 4(b) breakdown.
    scheduler_delay_per_task_s: float
    task_transfer_per_task_s: float
    compute_per_task_s: float
    # Trial statistics (median / p5 / p95 over noisy trials).
    trial_median_s: float = 0.0
    trial_p5_s: float = 0.0
    trial_p95_s: float = 0.0


def _exec_time_per_batch(config: MicroBenchConfig, cost: CostModel) -> float:
    """Worker-side execution time of one micro-batch (no driver time)."""
    slots = config.machines * config.slots_per_machine
    t = cost.stage_wave_time(config.num_map_tasks, slots, config.task_compute_s)
    t += cost.net_latency_s  # task launch delivery
    if config.num_reducers > 0:
        # Reduce tasks fetch from every map output and run the reduction.
        t += cost.net_latency_s  # trigger (driver barrier or notification)
        t += cost.shuffle_fetch_time(
            config.num_map_tasks, config.shuffle_bytes_per_reducer
        )
        t += cost.stage_wave_time(config.num_reducers, slots, config.reduce_compute_s)
    return t


def _coordination_per_batch(config: MicroBenchConfig, cost: CostModel) -> Dict[str, float]:
    """Driver-side time per micro-batch, split into scheduling vs transfer."""
    n_tasks = sum(config.tasks_per_stage.values())
    machines = config.machines
    if config.mode == "spark" or config.mode == "pipelined":
        num_stages = len(config.tasks_per_stage)
        sched = cost.per_job_fixed_s + n_tasks * cost.sched_per_task_s
        transfer = n_tasks * (cost.serialize_per_task_s + cost.rpc_send_s)
        transfer += 2 * cost.net_latency_s * num_stages
        return {"scheduling": sched, "transfer": transfer}
    if config.mode == "only-pre":
        sched = cost.per_job_fixed_s + n_tasks * cost.sched_per_task_s
        transfer = n_tasks * cost.serialize_per_task_s + machines * cost.rpc_send_s
        return {"scheduling": sched, "transfer": transfer}
    # drizzle: group scheduling amortizes placement and RPCs.
    g = config.group_size
    sched = n_tasks * cost.sched_per_task_s / g + cost.group_per_batch_s
    transfer = (
        n_tasks * cost.group_serialize_per_task_s
        + machines * cost.rpc_send_s / g
    )
    return {"scheduling": sched, "transfer": transfer}


def run_microbenchmark(
    config: MicroBenchConfig,
    cost: CostModel = DEFAULT_COST_MODEL,
    trials: int = 10,
    seed: int = 0,
) -> MicroBenchResult:
    """Simulate ``config.num_batches`` micro-batches; return the average
    time per micro-batch plus the per-task breakdown."""
    coord = _coordination_per_batch(config, cost)
    coord_total = coord["scheduling"] + coord["transfer"]
    exec_per_batch = _exec_time_per_batch(config, cost)

    if config.mode == "pipelined":
        # Scheduling of batch i+1 overlaps execution of batch i (§3.6):
        # b·max(t_exec, t_sched) + min(t_exec, t_sched).
        per_batch = max(exec_per_batch, coord_total)
    else:
        per_batch = exec_per_batch + coord_total

    rng = random.Random(seed)
    trial_means: List[float] = []
    for _ in range(trials):
        noisy = per_batch * math.exp(rng.gauss(0.0, config.noise_sigma))
        trial_means.append(noisy)
    trial_means.sort()
    n = len(trial_means)

    n_tasks = sum(config.tasks_per_stage.values())
    return MicroBenchResult(
        config=config,
        time_per_batch_s=per_batch,
        scheduler_delay_per_task_s=coord["scheduling"] / n_tasks,
        task_transfer_per_task_s=coord["transfer"] / n_tasks,
        compute_per_task_s=config.task_compute_s,
        trial_median_s=trial_means[n // 2],
        trial_p5_s=trial_means[max(0, int(0.05 * n))],
        trial_p95_s=trial_means[min(n - 1, int(0.95 * n))],
    )


def weak_scaling_sweep(
    mode: str,
    machine_counts: List[int],
    group_size: int = 1,
    task_compute_s: float = 0.9e-3,
    num_reducers: int = 0,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> Dict[int, MicroBenchResult]:
    """Fig. 4(a) / 5(a) / 5(b) sweep: one result per machine count."""
    out: Dict[int, MicroBenchResult] = {}
    for machines in machine_counts:
        out[machines] = run_microbenchmark(
            MicroBenchConfig(
                mode=mode,
                machines=machines,
                group_size=group_size,
                task_compute_s=task_compute_s,
                num_reducers=num_reducers,
            ),
            cost=cost,
        )
    return out
