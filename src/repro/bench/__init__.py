"""Benchmark harness: experiment definitions + plain-text reporting."""

from repro.bench.figures import (
    FaultToleranceResult,
    ablation_pipelined,
    ablation_treereduce,
    fig4a_group_scheduling,
    fig4b_breakdown,
    fig5a_heavy_compute,
    fig5b_prescheduling,
    fig7_fault_tolerance,
    fig9_workload_comparison,
    group_tuning_trace,
    table2_query_analysis,
    throughput_vs_latency,
    yahoo_latency_cdf,
)
from repro.bench.reporting import latency_summary_row, render_cdf, render_table

__all__ = [
    "FaultToleranceResult",
    "ablation_pipelined",
    "ablation_treereduce",
    "fig4a_group_scheduling",
    "fig4b_breakdown",
    "fig5a_heavy_compute",
    "fig5b_prescheduling",
    "fig7_fault_tolerance",
    "fig9_workload_comparison",
    "group_tuning_trace",
    "table2_query_analysis",
    "throughput_vs_latency",
    "yahoo_latency_cdf",
    "latency_summary_row",
    "render_cdf",
    "render_table",
]
