"""Run every reproduced experiment and print (or write) the results.

    python -m repro.bench                 # print all experiment tables
    python -m repro.bench --markdown out.md   # write EXPERIMENTS-style report
    python -m repro.bench --only fig4a fig7   # subset
    python -m repro.bench --json outdir       # BENCH_<name>.json per experiment

Each experiment mirrors one table/figure of the paper's §5; the paper's
reported numbers are quoted alongside so the shapes can be compared at a
glance.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, List, Tuple

from repro.bench.figures import (
    ablation_pipelined,
    ablation_treereduce,
    connection_scaling,
    elastic_adaptation,
    executor_backend_comparison,
    fig4a_group_scheduling,
    fig4b_breakdown,
    fig5a_heavy_compute,
    fig5b_prescheduling,
    fig7_fault_tolerance,
    fig9_workload_comparison,
    group_tuning_trace,
    table2_query_analysis,
    telemetry_overhead,
    throughput_vs_latency,
    transport_coordination,
    yahoo_latency_cdf,
)
from repro.bench.reporting import (
    diff_against_baseline,
    load_baseline_rows,
    render_cdf,
    render_table,
    write_bench_json,
)
from repro.common.metrics import MetricsRegistry
from repro.sim.elasticity import group_size_adaptation_sweep
from repro.workloads.queries import TABLE2_DISTRIBUTION


# Experiments that want structured rows in their BENCH_<name>.json (not
# just the rendered table) deposit them here keyed by experiment id.
_STRUCTURED_ROWS: dict = {}
# Cluster-telemetry rollup captured by the telemetry experiment, embedded
# into its BENCH json (see write_bench_json's telemetry parameter).
_TELEMETRY_SNAPSHOTS: dict = {}


def _fig4a() -> str:
    rows = fig4a_group_scheduling()
    return render_table(
        ["machines", "spark_ms", "g25_ms", "g50_ms", "g100_ms", "speedup_g100"],
        [[r["machines"], r["spark_ms"], r["drizzle_g25_ms"], r["drizzle_g50_ms"],
          r["drizzle_g100_ms"], r["speedup_g100"]] for r in rows],
        title="Fig 4a — single-stage weak scaling (paper: Spark ~195ms @128; "
              "Drizzle g=100 <5ms; speedups 7-46x)",
    )


def _fig4b() -> str:
    rows = fig4b_breakdown()
    return render_table(
        ["system", "sched_delay_ms/task", "transfer_ms/task", "compute_ms/task"],
        [[r["system"], r["scheduler_delay_ms"], r["task_transfer_ms"],
          r["compute_ms"]] for r in rows],
        title="Fig 4b — per-task breakdown @128 machines",
    )


def _fig5a() -> str:
    rows = fig5a_heavy_compute()
    return render_table(
        ["machines", "spark_ms", "g25_ms", "g100_ms", "g25_vs_g100_gap_ms"],
        [[r["machines"], r["spark_ms"], r["drizzle_g25_ms"],
          r["drizzle_g100_ms"], r["g25_vs_g100_gap_ms"]] for r in rows],
        title="Fig 5a — 100x data per task (paper: g=25 captures most benefit)",
    )


def _fig5b() -> str:
    rows = fig5b_prescheduling()
    return render_table(
        ["machines", "spark_ms", "only_pre_ms", "pre_g10_ms", "pre_g100_ms",
         "speedup"],
        [[r["machines"], r["spark_ms"], r["only_pre_ms"], r["pre_g10_ms"],
          r["pre_g100_ms"], r["speedup_g100"]] for r in rows],
        title="Fig 5b — two-stage with shuffle (paper: 2.7-5.5x; pre-sched "
              "alone ~20ms @128; Drizzle ~45ms @128)",
    )


def _fig6a() -> str:
    series = yahoo_latency_cdf(optimized=False)
    return render_cdf(
        series,
        title="Fig 6a — Yahoo latency CDF, 20M ev/s, unoptimized "
              "(paper: Drizzle ~350ms ~= Flink; 3.6x < Spark)",
    )


def _fig6b() -> str:
    rows = throughput_vs_latency(optimized=False, targets_s=(0.25, 0.5, 1.0, 2.0))
    return render_table(
        ["target_ms", "drizzle_Mev/s", "spark_Mev/s", "flink_Mev/s"],
        [[r["latency_target_ms"], r["drizzle_Mev_s"], r["spark_Mev_s"],
          r["flink_Mev_s"]] for r in rows],
        title="Fig 6b — max throughput at latency target, unoptimized "
              "(paper: Spark crashes @250ms; Drizzle/Flink ~20M)",
    )


def _fig7() -> str:
    results = fig7_fault_tolerance()
    return render_table(
        ["system", "normal_median_ms", "spike_s", "windows_disrupted",
         "recovery_time_s"],
        [[r.system, r.normal_median_s * 1e3, r.spike_s, r.windows_disrupted,
          r.recovery_time_s] for r in results],
        title="Fig 7 — machine killed at t=240s (paper: Drizzle ~1s/1 window; "
              "Spark ~3x/1 window; Flink ~18s/~4 windows)",
    )


def _fig8a() -> str:
    series = yahoo_latency_cdf(optimized=True)
    return render_cdf(
        series,
        title="Fig 8a — latency CDF with §3.5 optimizations, 10M ev/s "
              "(paper: Drizzle <100ms; 2x < Spark; 3x < Flink)",
    )


def _fig8b() -> str:
    rows = throughput_vs_latency(optimized=True, targets_s=(0.1, 0.25, 0.5))
    return render_table(
        ["target_ms", "drizzle_Mev/s", "spark_Mev/s", "flink_Mev/s"],
        [[r["latency_target_ms"], r["drizzle_Mev_s"], r["spark_Mev_s"],
          r["flink_Mev_s"]] for r in rows],
        title="Fig 8b — throughput with optimizations (paper: Spark & Flink "
              "miss 100ms; Drizzle +2-3x)",
    )


def _fig9() -> str:
    series = fig9_workload_comparison()
    return render_cdf(
        series,
        title="Fig 9 — Drizzle: Yahoo vs video analytics (paper: similar "
              "medians; video p95 ~780ms vs ~480ms)",
    )


def _table2() -> str:
    out = table2_query_analysis(num_queries=900_000)
    return render_table(
        ["aggregate", "measured_pct", "paper_pct"],
        [[c, out["percentages"][c], TABLE2_DISTRIBUTION[c]]
         for c in TABLE2_DISTRIBUTION],
        title=f"Table 2 — 900k-query aggregation breakdown (agg fraction "
              f"{out['aggregation_fraction']:.1%}, partial-merge "
              f"{out['partial_merge_fraction']:.1%}; paper: ~25% / >95%)",
    )


def _tuning() -> str:
    rows = group_tuning_trace()
    sampled = [rows[i] for i in (0, 20, 79, 90, 120, 159, 170, 200, 239)]
    return render_table(
        ["step", "machines", "group_size", "overhead", "action"],
        [[r["step"], r["machines"], r["group_size"], r["overhead"], r["action"]]
         for r in sampled],
        title="§3.4 — AIMD group-size tuning across cluster resizes "
              "(16 -> 128 -> 16 machines)",
    )


def _pipelined() -> str:
    rows = ablation_pipelined()
    return render_table(
        ["machines", "spark_ms", "pipelined_ms", "drizzle_g100_ms"],
        [[r["machines"], r["spark_ms"], r["pipelined_ms"], r["drizzle_g100_ms"]]
         for r in rows],
        title="§3.6 ablation — pipelined scheduling (paper: insufficient "
              "once t_sched > t_exec)",
    )


def _treereduce() -> str:
    rows = [ablation_treereduce(num_maps=n, fan_in=2) for n in (16, 64, 256)]
    return render_table(
        ["num_maps", "activation_all_to_all", "activation_tree", "speedup"],
        [[r["num_maps"], r["mean_activation_all_to_all"],
          r["mean_activation_tree"], r["speedup"]] for r in rows],
        title="§3.6 ablation — tree-reduce-aware pre-scheduling dependency sets",
    )


def _executors() -> str:
    rows = executor_backend_comparison()
    return render_table(
        ["backend", "cpu_count", "wall_s", "records_per_s", "speedup_vs_thread"],
        [[r["backend"], r["cpu_count"], r["wall_s"], r["records_per_s"],
          r["speedup_vs_thread"]] for r in rows],
        title="Executor backends — CPU-bound map on the real engine "
              "(process escapes the GIL on multi-core hosts)",
    )


def _transport() -> str:
    rows = transport_coordination()
    _STRUCTURED_ROWS["transport"] = rows
    sweep = [r for r in rows if r["workload"] == "sweep"]
    steady = [r for r in rows if r["workload"] == "steady"]
    raw = [r for r in rows if r["workload"] == "raw"]
    report = render_table(
        ["transport", "group_size", "ms_per_batch", "rpc_messages",
         "bytes_sent", "bytes_received", "fetch_batches", "buckets/fetch",
         "saved_bytes", "rpc_p50_ms", "rpc_p95_ms"],
        [[r["transport"], r["group_size"], r["ms_per_batch"], r["rpc_messages"],
          r["bytes_sent"], r["bytes_received"], r["fetch_batches"],
          r["buckets_per_fetch"], r["bytes_saved_compression"],
          r["rpc_p50_ms"], r["rpc_p95_ms"]]
         for r in sweep],
        title="Transport backends — real sockets vs in-process calls on the "
              "engine (group scheduling amortizes the wire cost, §3.1; "
              "fetches batched per peer, stage blobs shipped once)",
    )
    if steady:
        report += "\n\n" + render_table(
            ["templates", "group_size", "groups", "ms_per_group",
             "launch_bytes_per_group", "template_hits", "template_misses",
             "template_bytes_saved", "rpc_messages"],
            [[r["templates"], r["group_size"], r["groups"], r["ms_per_group"],
              r["launch_bytes_per_group"], r["template_hits"],
              r["template_misses"], r["template_bytes_saved"],
              r["rpc_messages"]]
             for r in steady],
            title="Execution templates on tcp — steady-state streaming "
                  "workload; with templates on, driver launch bytes per "
                  "group stay flat as the group size grows (one "
                  "instantiate_template per worker replaces the per-task "
                  "payload)",
        )
    if raw:
        sweep_by_g = {
            r["group_size"]: r for r in sweep if r["transport"] == "tcp"
        }
        raw_rows = []
        for r in raw:
            base = sweep_by_g.get(r["group_size"])
            speedup = (
                base["ms_per_batch"] / r["ms_per_batch"]
                if base and r["ms_per_batch"] > 0
                else 0.0
            )
            raw_rows.append(
                [r["transport"], r["group_size"], r["ms_per_batch"], speedup,
                 r["rpc_messages"], r["shm_hits"], r["shm_fallbacks"],
                 r["block_encode_ms"], r["open_connections"]]
            )
        report += "\n\n" + render_table(
            ["transport", "group_size", "ms_per_batch", "speedup_vs_sweep",
             "rpc_messages", "shm_hits", "shm_fallbacks", "block_encode_ms",
             "open_connections"],
            raw_rows,
            title="Raw-speed tier on tcp — record blocks + shm shuffle + "
                  "async transport all on (docs/networking.md): co-located "
                  "reducers read shuffle output from shared memory "
                  "(shm_hits) and peer control messages skip the wire, so "
                  "rpc_messages collapses to the launch path",
        )
    return report


def _connscale() -> str:
    rows = connection_scaling()
    _STRUCTURED_ROWS["connscale"] = rows
    return render_table(
        ["server", "connections", "threads_for_idle_conns", "rpc_p50_us",
         "rpc_p95_us", "open_connections_gauge"],
        [[r["server"], r["connections"], r["threads_for_idle_conns"],
          r["rpc_p50_us"], r["rpc_p95_us"], r["open_connections_gauge"]]
         for r in rows],
        title="Connection scaling — threads needed to hold N idle "
              "connections: the threaded server parks a thread per "
              "connection, the event-loop server parks them on one loop "
              "(gauge tracked by the async server only)",
    )


def _telemetry() -> str:
    rows, snapshot = telemetry_overhead()
    _STRUCTURED_ROWS["telemetry"] = rows
    if snapshot:
        _TELEMETRY_SNAPSHOTS["telemetry"] = snapshot
    return render_table(
        ["transport", "telemetry", "group_size", "ms_per_batch",
         "overhead_ratio", "rpc_messages", "deltas_ingested"],
        [[r["transport"], r["telemetry"], r["group_size"], r["ms_per_batch"],
          r["overhead_ratio"], r["rpc_messages"], r["deltas_ingested"]]
         for r in rows],
        title="Live telemetry plane — ms_per_batch with TelemetryConf "
              "enabled vs disabled on the transport bench (shipping on "
              "the dedicated __metrics__ path; rpc_messages unchanged "
              "by design)",
    )


def _elastic() -> str:
    rows = elastic_adaptation()
    _STRUCTURED_ROWS["elastic"] = rows
    return render_table(
        ["group_size", "first_resized_batch", "adaptation_delay_s",
         "sim_delay_s", "delay_matches_sim", "shards_moved", "keys_moved",
         "identical_to_fixed"],
        [[r["group_size"], r["first_resized_batch"], r["adaptation_delay_s"],
          r["sim_delay_s"], r["delay_matches_sim"], r["shards_moved"],
          r["keys_moved"], r["identical_to_fixed"]] for r in rows],
        title="§3.3 — live autoscaling on the real engine under a load "
              "spike: adaptation delay grows with group size exactly as "
              "sim/elasticity.py predicts; resized results byte-identical "
              "to the fixed-size run",
    )


def _adaptability() -> str:
    rows = group_size_adaptation_sweep()
    return render_table(
        ["group_size", "adaptation_delay_s", "post_resize_spike_s",
         "steady_median_s"],
        [[r["group_size"], r["adaptation_delay_s"], r["post_resize_spike_s"],
          r["normal_median_s"]] for r in rows],
        title="§3.3 ablation — group size vs adaptability under a resize",
    )


EXPERIMENTS: List[Tuple[str, Callable[[], str]]] = [
    ("table2", _table2),
    ("fig4a", _fig4a),
    ("fig4b", _fig4b),
    ("fig5a", _fig5a),
    ("fig5b", _fig5b),
    ("fig6a", _fig6a),
    ("fig6b", _fig6b),
    ("fig7", _fig7),
    ("fig8a", _fig8a),
    ("fig8b", _fig8b),
    ("fig9", _fig9),
    ("tuning", _tuning),
    ("ablation-pipelined", _pipelined),
    ("ablation-treereduce", _treereduce),
    ("ablation-adaptability", _adaptability),
    ("elastic", _elastic),
    ("executors", _executors),
    ("transport", _transport),
    ("connscale", _connscale),
    ("telemetry", _telemetry),
]


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate every reproduced table/figure of the paper.",
    )
    parser.add_argument("experiments", nargs="*", default=[],
                        help="experiment ids to run (default: all)")
    parser.add_argument("--only", nargs="*", default=None,
                        help="experiment ids to run (default: all)")
    parser.add_argument("--markdown", metavar="PATH", default=None,
                        help="also write the report as markdown to PATH")
    parser.add_argument("--json", metavar="DIR", nargs="?", const=".",
                        default=None, dest="json_dir",
                        help="also write BENCH_<name>.json (report + metric "
                             "snapshot) per experiment into DIR (default: .)")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="diff ms_per_batch of structured-row experiments "
                             "against checked-in BENCH_<name>.json files (PATH "
                             "is a file or a directory) and print regressions")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    args = parser.parse_args(argv)
    # Positional ids and --only are the same filter, merged.
    args.only = (args.only or []) + args.experiments or None

    known = {name for name, _fn in EXPERIMENTS}
    if args.list:
        print("\n".join(sorted(known)))
        return 0
    if args.only:
        unknown = set(args.only) - known
        if unknown:
            parser.error(f"unknown experiments: {sorted(unknown)}")

    if args.json_dir:
        os.makedirs(args.json_dir, exist_ok=True)
    registry = MetricsRegistry()
    sections: List[str] = []
    for name, fn in EXPERIMENTS:
        if args.only and name not in args.only:
            continue
        print(f"[{name}] running...", file=sys.stderr)
        # timed() feeds both the counter and a same-named histogram, so
        # the JSON snapshot carries per-experiment wall-time percentiles.
        with registry.timed(f"bench.{name}"):
            section = fn()
        if args.baseline and name in _STRUCTURED_ROWS:
            baseline_rows = load_baseline_rows(name, args.baseline)
            if baseline_rows is None:
                section += f"\nno baseline rows for {name} at {args.baseline}"
            else:
                diff, regressions = diff_against_baseline(
                    _STRUCTURED_ROWS[name], baseline_rows
                )
                section += "\n" + diff
                if regressions:
                    print(
                        f"[{name}] {regressions} regression(s) vs baseline",
                        file=sys.stderr,
                    )
        sections.append(section)
        if args.json_dir:
            payload = {"report": section}
            if name in _STRUCTURED_ROWS:
                payload["rows"] = _STRUCTURED_ROWS[name]
            path = write_bench_json(
                name,
                payload,
                metrics=registry,
                out_dir=args.json_dir,
                telemetry=_TELEMETRY_SNAPSHOTS.get(name),
            )
            print(f"[{name}] wrote {path}", file=sys.stderr)
    report = "\n\n".join(sections)
    print(report)
    if args.markdown:
        with open(args.markdown, "w") as f:
            f.write("# Reproduced experiments\n\n```\n" + report + "\n```\n")
        print(f"\nwrote {args.markdown}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
