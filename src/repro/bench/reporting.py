"""Plain-text table/CDF rendering and JSON reports for benchmark output.

Benchmarks print the same rows/series the paper's tables and figures
report, so a run's stdout can be compared against the paper directly.
:func:`write_bench_json` additionally persists a machine-readable
``BENCH_<name>.json`` with the experiment payload and a full
:meth:`~repro.common.metrics.MetricsRegistry.snapshot` embedded, so runs
can be diffed/regressed without re-parsing tables.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import subprocess
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.metrics import MetricsRegistry
from repro.common.stats import percentile


def render_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Fixed-width aligned table."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def latency_summary_row(name: str, latencies_s: Sequence[float]) -> List:
    ms = [x * 1e3 for x in latencies_s]
    return [
        name,
        percentile(ms, 50),
        percentile(ms, 5),
        percentile(ms, 95),
        percentile(ms, 99),
        max(ms),
    ]


def render_cdf(
    series: Dict[str, Sequence[float]],
    unit_scale: float = 1e3,
    unit: str = "ms",
    points: Sequence[float] = (0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99),
    title: str = "",
) -> str:
    """Render CDFs as a percentile table (one column per series)."""
    headers = ["pct"] + list(series)
    rows: List[List] = []
    for p in points:
        row: List = [f"p{int(p * 100)}"]
        for name in series:
            values = [v * unit_scale for v in series[name]]
            row.append(percentile(values, p * 100))
        rows.append(row)
    label = f"{title} (latency in {unit})" if title else f"(latency in {unit})"
    return render_table(headers, rows, title=label)


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def bench_environment() -> Dict[str, Any]:
    """Machine/config fingerprint embedded in every ``BENCH_*.json``.

    Checked-in benchmark numbers are only comparable on the same machine
    with the same transport knobs; recording ``cpu_count``, the
    (env-resolved) :class:`~repro.common.config.TransportConf` defaults,
    and the git SHA makes a stale or cross-machine baseline visible
    instead of a mystery regression.
    """
    from repro.common.config import TransportConf

    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "git_sha": _git_sha(),
        "transport": dataclasses.asdict(TransportConf()),
    }


def write_bench_json(
    name: str,
    payload: Any,
    metrics: Optional[MetricsRegistry] = None,
    out_dir: str = ".",
    telemetry: Optional[Dict[str, Any]] = None,
) -> str:
    """Write ``BENCH_<name>.json`` and return its path.

    ``payload`` is the experiment's result (rows, rendered report, ...);
    when a registry is supplied its full snapshot — counters, gauges,
    histogram/series percentile summaries — is embedded alongside, and
    every document records the environment it was produced on (see
    :func:`bench_environment`).  ``telemetry`` optionally embeds a
    cluster-telemetry rollup + signals document (repro.obs.live) from
    the benchmarked cluster.
    """
    doc: Dict[str, Any] = {
        "experiment": name,
        "environment": bench_environment(),
        "payload": payload,
    }
    if metrics is not None:
        doc["metrics"] = metrics.snapshot()
    if telemetry is not None:
        doc["telemetry"] = telemetry
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, default=str)
        f.write("\n")
    return path


# Row fields used to match current rows against baseline rows, in
# priority order; whichever are present in both rows form the key.
_BASELINE_KEY_FIELDS = (
    "transport",
    "backend",
    "system",
    "mode",
    "machines",
    "workload",
    "templates",
    "group_size",
)


def load_baseline_rows(name: str, baseline_path: str) -> Optional[List[Dict]]:
    """Read the structured rows out of a checked-in ``BENCH_<name>.json``.

    ``baseline_path`` may be the JSON file itself or a directory holding
    it.  Returns None when the file or its ``payload.rows`` is absent.
    """
    path = baseline_path
    if os.path.isdir(path):
        path = os.path.join(path, f"BENCH_{name}.json")
    if not os.path.isfile(path):
        return None
    with open(path) as f:
        doc = json.load(f)
    rows = doc.get("payload", {}).get("rows")
    if not isinstance(rows, list):
        return None
    return rows


def diff_against_baseline(
    rows: Sequence[Dict],
    baseline_rows: Sequence[Dict],
    metric: str = "ms_per_batch",
    regression_threshold: float = 1.20,
) -> Tuple[str, int]:
    """Compare a metric row-by-row against a baseline run.

    Rows are matched on the :data:`_BASELINE_KEY_FIELDS` they share.
    Returns ``(report, regressions)`` where a regression is a matched row
    whose metric grew beyond ``regression_threshold`` times the baseline.
    Benchmarks are noisy; the report flags, it does not fail the run.
    """

    def key(row: Dict) -> Tuple:
        return tuple(
            (k, row[k]) for k in _BASELINE_KEY_FIELDS if k in row
        )

    base_by_key = {key(r): r for r in baseline_rows if metric in r}
    lines: List[str] = []
    regressions = 0
    for row in rows:
        if metric not in row:
            continue
        base = base_by_key.get(key(row))
        label = " ".join(str(v) for _k, v in key(row)) or "<row>"
        if base is None:
            lines.append(f"  {label}: no baseline row")
            continue
        current, previous = float(row[metric]), float(base[metric])
        if previous > 0:
            ratio = current / previous
            verdict = "ok"
            if ratio > regression_threshold:
                verdict = "REGRESSION"
                regressions += 1
            elif ratio < 1.0:
                verdict = "improved"
            lines.append(
                f"  {label}: {metric} {previous:.4g} -> {current:.4g} "
                f"({ratio - 1.0:+.1%} vs baseline, {verdict})"
            )
        else:
            lines.append(f"  {label}: baseline {metric} is 0, skipped")
    header = f"baseline diff ({metric}, regression > {regression_threshold:.2f}x):"
    return "\n".join([header] + (lines or ["  no comparable rows"])), regressions
