"""Plain-text table/CDF rendering and JSON reports for benchmark output.

Benchmarks print the same rows/series the paper's tables and figures
report, so a run's stdout can be compared against the paper directly.
:func:`write_bench_json` additionally persists a machine-readable
``BENCH_<name>.json`` with the experiment payload and a full
:meth:`~repro.common.metrics.MetricsRegistry.snapshot` embedded, so runs
can be diffed/regressed without re-parsing tables.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence

from repro.common.metrics import MetricsRegistry
from repro.common.stats import percentile


def render_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Fixed-width aligned table."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def latency_summary_row(name: str, latencies_s: Sequence[float]) -> List:
    ms = [x * 1e3 for x in latencies_s]
    return [
        name,
        percentile(ms, 50),
        percentile(ms, 5),
        percentile(ms, 95),
        percentile(ms, 99),
        max(ms),
    ]


def render_cdf(
    series: Dict[str, Sequence[float]],
    unit_scale: float = 1e3,
    unit: str = "ms",
    points: Sequence[float] = (0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99),
    title: str = "",
) -> str:
    """Render CDFs as a percentile table (one column per series)."""
    headers = ["pct"] + list(series)
    rows: List[List] = []
    for p in points:
        row: List = [f"p{int(p * 100)}"]
        for name in series:
            values = [v * unit_scale for v in series[name]]
            row.append(percentile(values, p * 100))
        rows.append(row)
    label = f"{title} (latency in {unit})" if title else f"(latency in {unit})"
    return render_table(headers, rows, title=label)


def write_bench_json(
    name: str,
    payload: Any,
    metrics: Optional[MetricsRegistry] = None,
    out_dir: str = ".",
) -> str:
    """Write ``BENCH_<name>.json`` and return its path.

    ``payload`` is the experiment's result (rows, rendered report, ...);
    when a registry is supplied its full snapshot — counters, gauges,
    histogram/series percentile summaries — is embedded alongside.
    """
    doc: Dict[str, Any] = {"experiment": name, "payload": payload}
    if metrics is not None:
        doc["metrics"] = metrics.snapshot()
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, default=str)
        f.write("\n")
    return path
