"""Experiment definitions — one function per paper table/figure.

Each function runs the simulation (or corpus analysis) behind one figure
or table of §5 and returns structured rows; ``benchmarks/`` calls these
and prints them via :mod:`repro.bench.reporting`.  EXPERIMENTS.md records
the paper-reported values next to the outputs of these functions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import TunerConf
from repro.core.tuner import GroupSizeTuner
from repro.sim.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.sim.microbench import MicroBenchConfig, run_microbenchmark
from repro.sim.streaming import (
    SystemConfig,
    max_throughput,
    simulate_stream,
)
from repro.workloads.profiles import VIDEO, YAHOO
from repro.workloads.queries import QueryCorpusGenerator, WorkloadAnalyzer

MACHINE_SWEEP = (4, 8, 16, 32, 64, 128)
YAHOO_RATE = 20e6
YAHOO_RATE_OPTIMIZED = 10e6
VIDEO_RATE = 7.5e6


# ----------------------------------------------------------------------
# Figure 4(a): single-stage weak scaling, group scheduling
# ----------------------------------------------------------------------
def fig4a_group_scheduling(
    machine_counts: Sequence[int] = MACHINE_SWEEP,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> List[Dict]:
    rows = []
    for machines in machine_counts:
        row: Dict = {"machines": machines}
        spark = run_microbenchmark(
            MicroBenchConfig(mode="spark", machines=machines), cost=cost
        )
        row["spark_ms"] = spark.time_per_batch_s * 1e3
        for g in (25, 50, 100):
            drizzle = run_microbenchmark(
                MicroBenchConfig(mode="drizzle", machines=machines, group_size=g),
                cost=cost,
            )
            row[f"drizzle_g{g}_ms"] = drizzle.time_per_batch_s * 1e3
        row["speedup_g100"] = row["spark_ms"] / row["drizzle_g100_ms"]
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 4(b): per-task time breakdown at 128 machines
# ----------------------------------------------------------------------
def fig4b_breakdown(
    machines: int = 128, cost: CostModel = DEFAULT_COST_MODEL
) -> List[Dict]:
    rows = []
    configs = [
        ("Spark", MicroBenchConfig(mode="spark", machines=machines)),
        (
            "Drizzle, Group=100",
            MicroBenchConfig(mode="drizzle", machines=machines, group_size=100),
        ),
    ]
    for name, config in configs:
        r = run_microbenchmark(config, cost=cost)
        rows.append(
            {
                "system": name,
                "scheduler_delay_ms": r.scheduler_delay_per_task_s * 1e3,
                "task_transfer_ms": r.task_transfer_per_task_s * 1e3,
                "compute_ms": r.compute_per_task_s * 1e3,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 5(a): weak scaling with 100x the data per task
# ----------------------------------------------------------------------
def fig5a_heavy_compute(
    machine_counts: Sequence[int] = MACHINE_SWEEP,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> List[Dict]:
    rows = []
    heavy = 90e-3  # 100x the Fig. 4(a) per-task compute
    for machines in machine_counts:
        row: Dict = {"machines": machines}
        spark = run_microbenchmark(
            MicroBenchConfig(mode="spark", machines=machines, task_compute_s=heavy),
            cost=cost,
        )
        row["spark_ms"] = spark.time_per_batch_s * 1e3
        for g in (25, 50, 100):
            r = run_microbenchmark(
                MicroBenchConfig(
                    mode="drizzle",
                    machines=machines,
                    group_size=g,
                    task_compute_s=heavy,
                ),
                cost=cost,
            )
            row[f"drizzle_g{g}_ms"] = r.time_per_batch_s * 1e3
        row["g25_vs_g100_gap_ms"] = row["drizzle_g25_ms"] - row["drizzle_g100_ms"]
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 5(b): pre-scheduling with a shuffle stage (16 reducers)
# ----------------------------------------------------------------------
def fig5b_prescheduling(
    machine_counts: Sequence[int] = MACHINE_SWEEP,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> List[Dict]:
    rows = []
    for machines in machine_counts:
        row: Dict = {"machines": machines}
        variants = [
            ("spark_ms", MicroBenchConfig(mode="spark", machines=machines, num_reducers=16)),
            (
                "only_pre_ms",
                MicroBenchConfig(mode="only-pre", machines=machines, num_reducers=16),
            ),
            (
                "pre_g10_ms",
                MicroBenchConfig(
                    mode="drizzle", machines=machines, group_size=10, num_reducers=16
                ),
            ),
            (
                "pre_g100_ms",
                MicroBenchConfig(
                    mode="drizzle", machines=machines, group_size=100, num_reducers=16
                ),
            ),
        ]
        for key, config in variants:
            row[key] = run_microbenchmark(config, cost=cost).time_per_batch_s * 1e3
        row["speedup_g100"] = row["spark_ms"] / row["pre_g100_ms"]
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figures 6(a)/8(a)/9: Yahoo/video latency CDFs
# ----------------------------------------------------------------------
def yahoo_latency_cdf(
    optimized: bool,
    rate: Optional[float] = None,
    duration_s: float = 300.0,
    seed: int = 1,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> Dict[str, List[float]]:
    """Per-system window-latency samples (seconds).  ``optimized=False``
    is Fig. 6(a) at 20M events/s; ``optimized=True`` is Fig. 8(a) at 10M
    (Flink cannot apply the combine optimization, §5.4)."""
    rate = rate or (YAHOO_RATE_OPTIMIZED if optimized else YAHOO_RATE)
    out: Dict[str, List[float]] = {}
    for kind in ("drizzle", "spark", "flink"):
        config = SystemConfig(kind=kind, optimized=optimized and kind != "flink")
        result = simulate_stream(YAHOO, config, rate, duration_s, seed=seed, cost=cost)
        out[kind] = result.latencies() if result.stable else []
    return out


def fig9_workload_comparison(
    duration_s: float = 300.0, seed: int = 3, cost: CostModel = DEFAULT_COST_MODEL
) -> Dict[str, List[float]]:
    out: Dict[str, List[float]] = {}
    yahoo = simulate_stream(
        YAHOO, SystemConfig(kind="drizzle"), YAHOO_RATE, duration_s, seed=seed, cost=cost
    )
    video = simulate_stream(
        VIDEO, SystemConfig(kind="drizzle"), VIDEO_RATE, duration_s, seed=seed, cost=cost
    )
    out["drizzle_yahoo"] = yahoo.latencies()
    out["drizzle_video"] = video.latencies()
    return out


# ----------------------------------------------------------------------
# Figures 6(b)/8(b): max throughput at a latency target
# ----------------------------------------------------------------------
def throughput_vs_latency(
    optimized: bool,
    targets_s: Sequence[float] = (0.1, 0.25, 0.5, 1.0, 2.0),
    cost: CostModel = DEFAULT_COST_MODEL,
) -> List[Dict]:
    rows = []
    for target in targets_s:
        row: Dict = {"latency_target_ms": target * 1e3}
        for kind in ("drizzle", "spark", "flink"):
            config = SystemConfig(kind=kind, optimized=optimized and kind != "flink")
            row[f"{kind}_Mev_s"] = max_throughput(YAHOO, config, target, cost=cost) / 1e6
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 7: fault tolerance timeline (machine killed at t=240 s)
# ----------------------------------------------------------------------
@dataclass
class FaultToleranceResult:
    system: str
    normal_median_s: float
    spike_s: float
    windows_disrupted: int
    recovery_time_s: float
    timeline: List[Tuple[float, float]]  # (window_end, latency)


def fig7_fault_tolerance(
    failure_at_s: float = 240.0,
    duration_s: float = 400.0,
    seed: int = 2,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> List[FaultToleranceResult]:
    out = []
    for kind in ("drizzle", "spark", "flink"):
        result = simulate_stream(
            YAHOO,
            SystemConfig(kind=kind),
            YAHOO_RATE,
            duration_s,
            seed=seed,
            cost=cost,
            failure_at_s=failure_at_s,
        )
        normal = result.normal_median_latency_s
        post = [w for w in result.window_latencies if w.window_end_s >= failure_at_s]
        disrupted = [w for w in post if w.latency_s > 2.0 * normal]
        spike = max((w.latency_s for w in post), default=0.0)
        recovery_time = 0.0
        if disrupted:
            recovery_time = max(w.window_end_s for w in disrupted) - failure_at_s
        out.append(
            FaultToleranceResult(
                system=kind,
                normal_median_s=normal,
                spike_s=spike,
                windows_disrupted=len(disrupted),
                recovery_time_s=recovery_time,
                timeline=[(w.window_end_s, w.latency_s) for w in result.window_latencies],
            )
        )
    return out


# ----------------------------------------------------------------------
# Table 2: aggregation breakdown over the synthetic 900k-query corpus
# ----------------------------------------------------------------------
def table2_query_analysis(num_queries: int = 900_000, seed: int = 0) -> Dict:
    generator = QueryCorpusGenerator(seed=seed)
    analyzer = WorkloadAnalyzer()
    result = analyzer.analyze(generator.generate(num_queries))
    return {
        "total_queries": result.total_queries,
        "aggregation_fraction": result.aggregation_fraction,
        "partial_merge_fraction": result.partial_merge_fraction,
        "percentages": result.category_percentages(),
    }


# ----------------------------------------------------------------------
# §3.4: group-size auto-tuning efficacy
# ----------------------------------------------------------------------
def group_tuning_trace(
    machines_schedule: Sequence[Tuple[int, int]] = ((80, 16), (80, 128), (80, 16)),
    exec_per_batch_s: float = 0.025,
    conf: Optional[TunerConf] = None,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> List[Dict]:
    """Drive the AIMD tuner against simulated coordination measurements.

    ``machines_schedule`` is a list of (num_groups, machines) phases: the
    cluster (and hence the coordination cost) changes between phases, and
    the tuner must re-converge so the overhead stays within bounds.
    """
    conf = conf or TunerConf(
        enabled=True, overhead_lower_bound=0.05, overhead_upper_bound=0.20
    )
    tuner = GroupSizeTuner(conf, initial_group_size=1)
    rng = random.Random(0)
    rows: List[Dict] = []
    step = 0
    for num_groups, machines in machines_schedule:
        tasks = {0: machines * 4}
        for _ in range(num_groups):
            g = tuner.group_size
            coord = cost.drizzle_group_coordination(machines, tasks, g)
            coord *= 1.0 + rng.uniform(-0.05, 0.05)
            total = coord + g * exec_per_batch_s
            decision = tuner.observe(coord, total)
            rows.append(
                {
                    "step": step,
                    "machines": machines,
                    "group_size": decision.new_group_size,
                    "overhead": decision.smoothed_overhead,
                    "action": decision.action,
                }
            )
            step += 1
    return rows


# ----------------------------------------------------------------------
# §3.6 ablation: pipelined scheduling vs group scheduling
# ----------------------------------------------------------------------
def ablation_pipelined(
    machine_counts: Sequence[int] = MACHINE_SWEEP,
    task_compute_s: float = 0.9e-3,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> List[Dict]:
    rows = []
    for machines in machine_counts:
        spark = run_microbenchmark(
            MicroBenchConfig(
                mode="spark", machines=machines, task_compute_s=task_compute_s
            ),
            cost=cost,
        )
        pipelined = run_microbenchmark(
            MicroBenchConfig(
                mode="pipelined", machines=machines, task_compute_s=task_compute_s
            ),
            cost=cost,
        )
        drizzle = run_microbenchmark(
            MicroBenchConfig(
                mode="drizzle",
                machines=machines,
                group_size=100,
                task_compute_s=task_compute_s,
            ),
            cost=cost,
        )
        rows.append(
            {
                "machines": machines,
                "spark_ms": spark.time_per_batch_s * 1e3,
                "pipelined_ms": pipelined.time_per_batch_s * 1e3,
                "drizzle_g100_ms": drizzle.time_per_batch_s * 1e3,
                # §3.6: pipelining is bounded by max(t_exec, t_sched), so it
                # stops helping once t_sched > t_exec at larger clusters.
                "sched_dominates": pipelined.time_per_batch_s
                > 1.5 * drizzle.time_per_batch_s,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Ablation: continuous-engine checkpoint interval vs recovery cost
# ----------------------------------------------------------------------
def ablation_checkpoint_interval(
    intervals_s: Sequence[float] = (5.0, 10.0, 30.0, 60.0),
    failure_at_s: float = 240.0,
    duration_s: float = 420.0,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> List[Dict]:
    """§2.2's rollback-recovery trade-off, quantified: less frequent
    aligned checkpoints mean more data to replay after a failure, so the
    latency spike and catch-up time grow with the interval — while
    micro-batch parallel recovery (Drizzle) is insensitive to it."""
    rows = []
    for interval in intervals_s:
        flink = simulate_stream(
            YAHOO,
            SystemConfig(kind="flink", checkpoint_interval_s=interval),
            YAHOO_RATE,
            duration_s,
            seed=2,
            cost=cost,
            failure_at_s=failure_at_s,
        )
        post = [w for w in flink.window_latencies if w.window_end_s >= failure_at_s]
        disrupted = [
            w for w in post if w.latency_s > 2 * flink.normal_median_latency_s
        ]
        rows.append(
            {
                "checkpoint_interval_s": interval,
                "flink_spike_s": max(w.latency_s for w in post),
                "flink_windows_disrupted": len(disrupted),
            }
        )
    drizzle = simulate_stream(
        YAHOO,
        SystemConfig(kind="drizzle"),
        YAHOO_RATE,
        duration_s,
        seed=2,
        cost=cost,
        failure_at_s=failure_at_s,
    )
    post = [w for w in drizzle.window_latencies if w.window_end_s >= failure_at_s]
    for row in rows:
        row["drizzle_spike_s"] = max(w.latency_s for w in post)
    return rows


# ----------------------------------------------------------------------
# §3.6 ablation: tree-reduce-aware pre-scheduling dependency sets
# ----------------------------------------------------------------------
def ablation_treereduce(
    num_maps: int = 128,
    fan_in: int = 2,
    trials: int = 200,
    seed: int = 0,
) -> Dict:
    """How much earlier can a reduce task activate when it waits only on
    its ``fan_in`` tree parents instead of all maps?  Map finish times are
    uniform over a wave; we report mean activation times."""
    rng = random.Random(seed)
    all_to_all_first = 0.0
    tree_first = 0.0
    for _ in range(trials):
        finishes = sorted(rng.random() for _ in range(num_maps))
        all_to_all_first += finishes[-1]  # wait for every map
        # Tree reducer 0 waits on maps [0, fan_in); finish times are
        # exchangeable, so sample fan_in of them.
        sample = [rng.random() for _ in range(fan_in)]
        tree_first += max(sample)
    return {
        "num_maps": num_maps,
        "fan_in": fan_in,
        "mean_activation_all_to_all": all_to_all_first / trials,
        "mean_activation_tree": tree_first / trials,
        "speedup": (all_to_all_first / trials) / (tree_first / trials),
    }


# ----------------------------------------------------------------------
# Executor backends: real-engine throughput, thread vs process
# ----------------------------------------------------------------------
def executor_backend_comparison(
    backends: Sequence[str] = ("thread", "process"),
    workers: int = 4,
    slots: int = 2,
    records: int = 2000,
    iterations: int = 400,
) -> List[Dict]:
    """CPU-bound map on the *actual* engine under each executor backend.

    Unlike the rest of this module this is not a simulation: it drives a
    ``LocalCluster`` with ``workers * slots`` partitions of pure-Python
    arithmetic (:func:`repro.workloads.cpu_burn`).  Thread slots serialize
    on the GIL, so on a machine with >= 4 cores the process backend should
    deliver >= 2x the records/s; on fewer cores the two converge and the
    process backend additionally pays its IPC overhead.  ``cpu_count`` is
    recorded in every row so checked-in results stay interpretable.
    """
    import os
    import time

    from repro.common.config import EngineConf, ExecutorConf, SchedulingMode
    from repro.dag.dataset import parallelize
    from repro.engine.cluster import LocalCluster
    from repro.workloads.synthetic import cpu_burn

    partitions = workers * slots
    rows: List[Dict] = []
    for backend in backends:
        conf = EngineConf(
            num_workers=workers,
            slots_per_worker=slots,
            scheduling_mode=SchedulingMode.PER_BATCH,
            executor=ExecutorConf(backend=backend),
        )
        with LocalCluster(conf) as cluster:
            # Warm-up batch: spawns process pools and ships stage blobs so
            # the timed run measures steady-state compute, not startup.
            cluster.collect(
                parallelize(range(partitions), partitions).map(
                    lambda x: cpu_burn(x, 1)
                )
            )
            ds = parallelize(range(records), partitions).map(
                lambda x: cpu_burn(x, iterations)
            )
            start = time.perf_counter()
            out = cluster.collect(ds)
            wall_s = time.perf_counter() - start
        if len(out) != records:
            raise RuntimeError(
                f"backend {backend!r} returned {len(out)}/{records} records"
            )
        rows.append(
            {
                "backend": backend,
                "cpu_count": os.cpu_count() or 1,
                "workers": workers,
                "slots_per_worker": slots,
                "records": records,
                "iterations_per_record": iterations,
                "wall_s": wall_s,
                "records_per_s": records / wall_s,
            }
        )
    base = next((r for r in rows if r["backend"] == "thread"), rows[0])
    for row in rows:
        row["speedup_vs_thread"] = row["records_per_s"] / base["records_per_s"]
    return rows


# ----------------------------------------------------------------------
# Transport backends: real sockets vs in-process calls (repro.net)
# ----------------------------------------------------------------------
def transport_coordination(
    transports: Sequence[str] = ("inproc", "tcp"),
    group_sizes: Sequence[int] = (1, 5, 20),
    batches: int = 100,
    workers: int = 2,
    slots: int = 2,
    template_group_sizes: Sequence[int] = (10, 20),
    raw_group_sizes: Sequence[int] = (5, 20),
) -> List[Dict]:
    """Fig 5-style sweep on the *actual* engine: coordination cost of the
    tcp transport vs the in-process one, with the group size on the
    x-axis.

    Every driver<->worker message on the tcp backend is framed,
    serialized, and pushed through a real loopback socket, so each batch
    pays a wire round trip per control message — the cost §3.1's group
    scheduling exists to amortize.  The in-process rows isolate the
    engine-side overhead (same message *count*, zero wire cost); the gap
    between the two, and how it shrinks as group size grows, is the
    paper's argument made measurable.  Bytes on the wire and per-call
    round-trip percentiles come from the ``net.*`` counters and the
    ``net.call_latency.*`` histograms.

    The ``workload="steady"`` rows add the execution-template tier
    (repro.core.templates) on tcp: a streaming-shaped workload whose plan
    content repeats every batch, measured with ``TemplateConf`` off vs on
    at each size in ``template_group_sizes``.  One warm-up group at the
    measured size installs the templates, so the timed region is steady
    state — ``launch_bytes_per_group`` with templates on should be flat
    in the group size (the instantiate message carries only batch ids),
    while the templates-off stage-blob path stays O(group size).

    The ``workload="raw"`` rows re-run the per-batch sweep on tcp with
    the whole raw-speed tier on (``DataPlaneConf.record_blocks``,
    ``shm_shuffle``, ``async_io`` — see "Raw speed" in
    docs/networking.md): buckets travel as columnar record blocks,
    co-located reducers read map outputs straight out of shared-memory
    segments (``shm_hits``) instead of issuing ``fetch_buckets`` RPCs,
    and shuffle/report control messages between co-located peers are
    delivered by direct call.  Compare a raw row against the sweep row
    at the same transport/group size for the end-to-end speedup.
    """
    import time

    from repro.common.config import (
        DataPlaneConf,
        EngineConf,
        SchedulingMode,
        TemplateConf,
        TransportConf,
    )
    from repro.common.metrics import (
        COUNT_BLOCKS_ENCODE_MS,
        COUNT_LAUNCH_RPCS,
        COUNT_NET_BYTES_RECEIVED,
        COUNT_NET_BYTES_SAVED_COMPRESSION,
        COUNT_NET_BYTES_SENT,
        COUNT_NET_CONNECTIONS,
        COUNT_NET_FETCH_BATCHES,
        COUNT_NET_LAUNCH_BYTES_SENT,
        COUNT_NET_TEMPLATE_BYTES_SAVED,
        COUNT_RPC_MESSAGES,
        COUNT_SHM_FALLBACKS,
        COUNT_SHM_HITS,
        COUNT_STAGE_CACHE_HIT,
        COUNT_STAGE_CACHE_MISS,
        COUNT_TEMPLATE_HIT,
        COUNT_TEMPLATE_MISS,
        GAUGE_NET_OPEN_CONNECTIONS,
        HIST_NET_BUCKETS_PER_FETCH,
        HIST_NET_CALL_LATENCY,
    )
    from repro.common.stats import percentile
    from repro.dag.dataset import parallelize
    from repro.dag.plan import compile_plan, dict_action
    from repro.engine.cluster import LocalCluster

    partitions = workers * slots

    def build(b: int):
        ds = (
            parallelize(range(40), partitions)
            .map(lambda x, b=b: (x % 4, x + b))
            .reduce_by_key(lambda a, b: a + b, 2)
        )
        return compile_plan(ds, dict_action())

    def build_steady(_b: int):
        # Identical plan *content* every batch (nothing varying captured):
        # the streaming steady state, where execution templates can hit.
        ds = (
            parallelize(range(40), partitions)
            .map(lambda x: (x % 4, x))
            .reduce_by_key(lambda a, b: a + b, 2)
        )
        return compile_plan(ds, dict_action())

    def run_one(
        transport: str,
        group_size: int,
        templates_on: bool,
        steady: bool,
        raw: bool = False,
    ) -> Dict:
        transport_conf = TransportConf(backend=transport)
        if raw:
            transport_conf = TransportConf(
                backend=transport,
                data_plane=DataPlaneConf(
                    record_blocks=True, shm_shuffle=True, async_io=True
                ),
            )
        conf = EngineConf(
            num_workers=workers,
            slots_per_worker=slots,
            scheduling_mode=SchedulingMode.DRIZZLE,
            group_size=group_size,
            transport=transport_conf,
            templates=TemplateConf(enabled=templates_on),
        )
        build_fn = build_steady if steady else build
        with LocalCluster(conf) as cluster:
            if steady:
                # Warm-up: one full group at the measured size dials the
                # pools, ships the closures, and installs the templates —
                # the timed region below is pure steady state.
                cluster.run_group([build_fn(b) for b in range(group_size)])
            else:
                # Warm-up batch: dials the connection pools and ships the
                # first closures, so the timed run measures steady state.
                cluster.run_plan(build(10_000))
            # Gauge values survive across reset() as a baseline: the
            # connection gauge was built up during warm-up, and reset()
            # zeroes it, so the steady-state count is pre-reset value
            # plus whatever delta the timed region adds.
            open_conns_warm = cluster.metrics.gauges_snapshot().get(
                GAUGE_NET_OPEN_CONNECTIONS, 0.0
            )
            cluster.metrics.reset()
            start = time.perf_counter()
            done = 0
            groups = 0
            while done < batches:
                chunk = min(group_size, batches - done)
                cluster.run_group(
                    [build_fn(b) for b in range(done, done + chunk)]
                )
                done += chunk
                groups += 1
            wall_s = time.perf_counter() - start
            counters = cluster.metrics.counters_snapshot()
            open_conns = open_conns_warm + cluster.metrics.gauges_snapshot().get(
                GAUGE_NET_OPEN_CONNECTIONS, 0.0
            )
            latencies: List[float] = []
            for name in cluster.metrics.snapshot()["histograms"]:
                if name.startswith(HIST_NET_CALL_LATENCY + "."):
                    latencies.extend(cluster.metrics.histogram(name).snapshot())
            batch_sizes = cluster.metrics.histogram(
                HIST_NET_BUCKETS_PER_FETCH
            ).snapshot()
        fetch_batches = counters.get(COUNT_NET_FETCH_BATCHES, 0.0)
        launch_bytes = counters.get(COUNT_NET_LAUNCH_BYTES_SENT, 0.0)
        return {
            "transport": transport,
            "workload": "raw" if raw else ("steady" if steady else "sweep"),
            "templates": "on" if templates_on else "off",
            "group_size": group_size,
            "batches": batches,
            "groups": groups,
            "wall_s": wall_s,
            "ms_per_batch": wall_s / batches * 1e3,
            "ms_per_group": wall_s / groups * 1e3,
            "rpc_messages": counters.get(COUNT_RPC_MESSAGES, 0.0),
            "launch_rpcs": counters.get(COUNT_LAUNCH_RPCS, 0.0),
            "bytes_sent": counters.get(COUNT_NET_BYTES_SENT, 0.0),
            "bytes_received": counters.get(COUNT_NET_BYTES_RECEIVED, 0.0),
            "connections": counters.get(COUNT_NET_CONNECTIONS, 0.0),
            "rpc_p50_ms": percentile(latencies, 50) * 1e3 if latencies else 0.0,
            "rpc_p95_ms": percentile(latencies, 95) * 1e3 if latencies else 0.0,
            # Data-plane fast path: batched pulls, stage-blob
            # cache traffic, compression savings.
            "fetch_batches": fetch_batches,
            "buckets_per_fetch": (
                sum(batch_sizes) / len(batch_sizes) if batch_sizes else 0.0
            ),
            "bytes_saved_compression": counters.get(
                COUNT_NET_BYTES_SAVED_COMPRESSION, 0.0
            ),
            "stage_cache_hits": counters.get(COUNT_STAGE_CACHE_HIT, 0.0),
            "stage_cache_misses": counters.get(COUNT_STAGE_CACHE_MISS, 0.0),
            "compression": conf.transport.data_plane.compression,
            # Raw-speed tier (zero on rows that run with it off).
            "shm_hits": counters.get(COUNT_SHM_HITS, 0.0),
            "shm_fallbacks": counters.get(COUNT_SHM_FALLBACKS, 0.0),
            "block_encode_ms": counters.get(COUNT_BLOCKS_ENCODE_MS, 0.0),
            "open_connections": open_conns,
            # Execution-template tier (driver-side launch bytes only).
            "launch_bytes_sent": launch_bytes,
            "launch_bytes_per_group": launch_bytes / groups if groups else 0.0,
            "template_hits": counters.get(COUNT_TEMPLATE_HIT, 0.0),
            "template_misses": counters.get(COUNT_TEMPLATE_MISS, 0.0),
            "template_bytes_saved": counters.get(
                COUNT_NET_TEMPLATE_BYTES_SAVED, 0.0
            ),
        }

    rows: List[Dict] = []
    for transport in transports:
        for group_size in group_sizes:
            rows.append(run_one(transport, group_size, False, steady=False))
    # Template rows are tcp-only: the instantiate fast path is a wire
    # optimization, meaningless where launches are method calls.
    if "tcp" in transports:
        for group_size in template_group_sizes:
            for templates_on in (False, True):
                rows.append(run_one("tcp", group_size, templates_on, steady=True))
        # Raw-speed rows, also tcp-only: record blocks + shm shuffle +
        # async transport all target the wire/process-boundary cost the
        # inproc transport does not pay in the first place.
        for group_size in raw_group_sizes:
            rows.append(
                run_one("tcp", group_size, False, steady=False, raw=True)
            )
    return rows


def connection_scaling(
    counts: Sequence[int] = (64, 256, 1024),
    probes: int = 200,
) -> List[Dict]:
    """Idle-connection cost of the threaded vs the event-loop server.

    The threaded :class:`~repro.net.server.MessageServer` dedicates one
    daemon thread to every accepted connection for its whole lifetime;
    the :class:`~repro.net.aio.AsyncMessageServer` parks idle
    connections on one event loop and only borrows a pool thread while
    bytes are in flight.  This experiment opens N connections, exchanges
    one echo on each (so every connection is established and, on the
    async server, has been activated and parked once), lets them sit
    idle, and reports how many Python threads exist to hold them — plus
    request latency percentiles on one connection while the other N-1
    idle, to show the parked crowd does not tax the hot path.  The
    threaded server's thread count is O(N); the async server's stays
    flat at the loop + pool, which is what lets it hold thousands of
    open connections (acceptance floor: 1000+).
    """
    import socket
    import threading
    import time

    from repro.common.metrics import MetricsRegistry
    from repro.common.stats import percentile
    from repro.net.aio import AsyncMessageServer
    from repro.net.framing import (
        KIND_REQUEST,
        encode_frame,
        read_frame,
    )
    from repro.net.server import MessageServer

    def echo(payload: bytes) -> bytes:
        return payload

    def exchange(sock: socket.socket, payload: bytes) -> None:
        sock.sendall(encode_frame(KIND_REQUEST, payload))
        kind, body = read_frame(sock)
        if kind != 2 or body != payload:  # KIND_RESPONSE
            raise RuntimeError("echo mismatch")

    rows: List[Dict] = []
    for server_kind, server_cls in (
        ("threaded", MessageServer),
        ("async", AsyncMessageServer),
    ):
        for n in counts:
            metrics = MetricsRegistry()
            threads_before = threading.active_count()
            server = server_cls(echo, metrics, name="connscale")
            conns: List[socket.socket] = []
            try:
                for _ in range(n):
                    sock = socket.create_connection(server.address, timeout=10)
                    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                    exchange(sock, b"hello")
                    conns.append(sock)
                # Let the async server park every activated connection
                # (its linger is 20 ms) so the count below is the idle
                # steady state, not a transient of pool threads.
                time.sleep(0.1)
                idle_threads = threading.active_count() - threads_before
                latencies: List[float] = []
                hot = conns[0]
                for _ in range(probes):
                    t0 = time.perf_counter()
                    exchange(hot, b"probe")
                    latencies.append((time.perf_counter() - t0) * 1e6)
                rows.append(
                    {
                        "server": server_kind,
                        "connections": n,
                        "threads_for_idle_conns": idle_threads,
                        "rpc_p50_us": percentile(latencies, 50),
                        "rpc_p95_us": percentile(latencies, 95),
                        "open_connections_gauge": metrics.gauges_snapshot().get(
                            "net.open_connections", 0.0
                        ),
                    }
                )
            finally:
                for sock in conns:
                    try:
                        sock.close()
                    except OSError:
                        pass
                server.close()
                # Wait for this server's connection/pool threads to die
                # before the next iteration samples threads_before —
                # stragglers exiting mid-measurement would otherwise
                # skew (even negative) the next delta.
                deadline = time.monotonic() + 5.0
                while (
                    threading.active_count() > threads_before
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
    return rows


def telemetry_overhead(
    group_size: int = 5,
    batches: int = 20,
    workers: int = 2,
    slots: int = 2,
    transport: str = "tcp",
    repeats: int = 3,
) -> Tuple[List[Dict], Dict]:
    """Cost of the live telemetry plane on the transport bench: the same
    tcp workload as :func:`transport_coordination`, with
    ``TelemetryConf`` disabled vs enabled (heartbeats off, so telemetry
    rides the dedicated ``__metrics__`` path — its worst case: every
    delta is an extra wire exchange rather than a heartbeat payload).

    Returns ``(rows, snapshot)`` where ``snapshot`` is the enabled run's
    cluster-telemetry rollup + signals, embedded into ``bench --json``
    output as proof the plane saw the run it measured.
    """
    import time

    from repro.common.config import (
        EngineConf,
        SchedulingMode,
        TelemetryConf,
        TransportConf,
    )
    from repro.dag.dataset import parallelize
    from repro.dag.plan import compile_plan, dict_action
    from repro.engine.cluster import LocalCluster

    partitions = workers * slots

    def build(b: int):
        ds = (
            parallelize(range(40), partitions)
            .map(lambda x, b=b: (x % 4, x + b))
            .reduce_by_key(lambda a, b: a + b, 2)
        )
        return compile_plan(ds, dict_action())

    rows: List[Dict] = []
    snapshot: Dict = {}
    for enabled in (False, True):
        # Best-of-N: each timed region is tens of ms, so one descheduling
        # blip would otherwise dominate the enabled/disabled ratio.
        best_wall: Optional[float] = None
        counters: Dict[str, float] = {}
        for _ in range(max(repeats, 1)):
            conf = EngineConf(
                num_workers=workers,
                slots_per_worker=slots,
                scheduling_mode=SchedulingMode.DRIZZLE,
                group_size=group_size,
                transport=TransportConf(backend=transport),
                telemetry=TelemetryConf(enabled=enabled, interval_s=0.05),
            )
            with LocalCluster(conf) as cluster:
                cluster.run_plan(build(10_000))  # warm-up: pools + closures
                cluster.metrics.reset()
                start = time.perf_counter()
                done = 0
                while done < batches:
                    chunk = min(group_size, batches - done)
                    cluster.run_group(
                        [build(b) for b in range(done, done + chunk)]
                    )
                    done += chunk
                wall_s = time.perf_counter() - start
                if best_wall is None or wall_s < best_wall:
                    best_wall = wall_s
                    counters = cluster.metrics.counters_snapshot()
                if enabled and cluster.telemetry is not None:
                    # Give the 0.05s ship loop one more beat, then roll up.
                    time.sleep(0.12)
                    snapshot = {
                        "rollup": cluster.telemetry.rollup(include_stale=True),
                        "signals": cluster.telemetry.signals(),
                    }
        rows.append(
            {
                "transport": transport,
                "telemetry": "enabled" if enabled else "disabled",
                "group_size": group_size,
                "batches": batches,
                "wall_s": best_wall or 0.0,
                "ms_per_batch": (best_wall or 0.0) / batches * 1e3,
                "rpc_messages": counters.get("count.rpc_messages", 0.0),
                "deltas_ingested": counters.get("telemetry.deltas_ingested", 0.0),
            }
        )
    base = rows[0]["ms_per_batch"]
    for row in rows:
        row["overhead_ratio"] = row["ms_per_batch"] / base if base > 0 else 0.0
    return rows, snapshot


def elastic_adaptation(
    group_sizes: Sequence[int] = (1, 2, 4),
    spike_batch: int = 5,
    calm_batch: int = 10,
    num_batches: int = 16,
    batch_interval_s: float = 0.05,
    delta: int = 2,
) -> List[Dict]:
    """§3.3 on the real engine: adaptation delay vs group size under a
    load spike, fixed cluster vs autoscaled.

    A streaming wordcount's traffic triples at ``spike_batch``; a
    spike-reactive policy requests ``+delta`` machines the moment the
    spike is observable (and ``-delta`` once it passes), but the resize
    can only land at the next *group boundary* — so the measured delay
    grows with the group size, which is exactly the trade-off
    :func:`repro.sim.elasticity.simulate_resize` predicts.  Each row
    carries the measured delay, the simulator's prediction for the same
    geometry, and the proof obligations: shards were really migrated and
    the autoscaled counts are byte-identical to the fixed-size run's.
    """
    from repro.common.config import ElasticConf, EngineConf, SchedulingMode
    from repro.elastic.controller import ElasticController
    from repro.elastic.policies import ScalingDecision, ScalingPolicy
    from repro.engine.cluster import LocalCluster
    from repro.sim.elasticity import simulate_resize
    from repro.sim.streaming import SystemConfig
    from repro.streaming.context import StreamingContext
    from repro.streaming.sources import FixedBatchSource

    words = "the quick brown fox jumps over the lazy dog".split()
    batches = [
        [words[(i + j) % len(words)] for j in range(6)] for i in range(num_batches)
    ]
    for i in range(spike_batch, calm_batch):
        batches[i] = batches[i] * 3

    class SpikeReactivePolicy(ScalingPolicy):
        """Requests the resize as soon as the spike is observable; the
        controller can only apply it at the next group boundary, which is
        the delay being measured."""

        def __init__(self) -> None:
            self.observed_at: Optional[int] = None
            self._calmed = False

        def decide(self, recent, current_workers) -> ScalingDecision:
            seen = recent[-1].batch_index if recent else -1
            if self.observed_at is None and seen >= spike_batch:
                self.observed_at = seen
                return ScalingDecision(+delta, f"spike observed at batch {seen}")
            if self.observed_at is not None and not self._calmed and seen >= calm_batch:
                self._calmed = True
                return ScalingDecision(-delta, f"spike passed at batch {seen}")
            return ScalingDecision(0, "steady")

    def run(group_size: int, elastic: bool):
        conf = EngineConf(
            num_workers=2,
            scheduling_mode=SchedulingMode.DRIZZLE,
            group_size=group_size,
            elastic=ElasticConf(enabled=False, shards_per_worker=2),
        )
        with LocalCluster(conf) as cluster:
            ctx = StreamingContext(
                cluster, FixedBatchSource(batches, 4), batch_interval_s
            )
            policy = None
            partitioner = None
            if elastic:
                policy = SpikeReactivePolicy()
                ctx.set_elasticity(
                    ElasticController(
                        cluster,
                        policy=policy,
                        conf=ElasticConf(
                            enabled=True, cooldown_groups=0, shards_per_worker=2
                        ),
                    )
                )
                partitioner = ctx.shard_partitioner("counts")
            store = ctx.state_store("counts")
            (
                ctx.stream()
                .map(lambda w: (w, 1))
                .reduce_by_key(lambda a, b: a + b, 4, partitioner=partitioner)
                .update_state(store, merge=lambda a, b: a + b)
            )
            ctx.run_batches(num_batches)
            counters = cluster.metrics.counters_snapshot()
        return sorted(store.items()), counters, policy

    rows: List[Dict] = []
    for group_size in group_sizes:
        fixed_counts, _, _ = run(group_size, elastic=False)
        counts, counters, policy = run(group_size, elastic=True)
        # The resize request lands mid-batch — deliberately unaligned
        # with group boundaries (cf. the sim sweep's resize_at_s=121.3);
        # both the engine and the simulator can apply it only at the
        # next group boundary.
        request_s = (spike_batch + 0.5) * batch_interval_s
        observed = policy.observed_at if policy.observed_at is not None else -1
        first_resized_batch = observed + 1
        measured_delay_s = first_resized_batch * batch_interval_s - request_s
        sim = simulate_resize(
            YAHOO,
            SystemConfig(kind="drizzle", machines=2, group_size=group_size),
            rate_before=1e6,
            rate_after=3e6,
            duration_s=num_batches * batch_interval_s,
            resize_at_s=request_s,
            machines_after=2 + delta,
            batch_interval_s=batch_interval_s,
        )
        rows.append(
            {
                "group_size": group_size,
                "first_resized_batch": first_resized_batch,
                "adaptation_delay_s": round(measured_delay_s, 6),
                "sim_delay_s": round(sim.adaptation_delay_s, 6),
                "delay_matches_sim": abs(measured_delay_s - sim.adaptation_delay_s)
                < batch_interval_s / 2,
                "shards_moved": counters.get("migration.shards_moved", 0.0),
                "keys_moved": counters.get("migration.keys_moved", 0.0),
                "resizes": counters.get("elastic.resizes", 0.0),
                "identical_to_fixed": counts == fixed_counts,
            }
        )
    return rows
