"""Workload profiles consumed by the cluster simulator.

A profile captures the *data-plane* characteristics of a streaming
workload: per-record CPU cost (JSON parse + bucketing dominates for the
Yahoo benchmark), record size on the wire, how much map-side combining
shrinks shuffle volume, window length, and tail behaviour.

Calibration: the paper runs the Yahoo Streaming Benchmark at 20M events/s
on 128 machines (512 cores).  The unoptimized pipeline is CPU-bound at
roughly 65 % utilization there, giving ``record_cost_s`` ≈ 16.6 µs — a
realistic figure for JVM JSON parsing plus windowed bucketing.  §3.5's
within-batch optimizations (vectorized execution + partial aggregation)
cut per-record cost ~2.5× and shuffle volume ~20× (counts instead of
event lists).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class WorkloadProfile:
    """Data-plane description of one streaming workload."""

    name: str
    # CPU cost to parse/bucket one record on the map side.
    record_cost_s: float
    # Map cost with §3.5 optimizations (vectorization) enabled.
    optimized_record_cost_s: float
    # Serialized record size entering the shuffle.
    bytes_per_record: float
    # Shuffle volume multiplier when map-side combining is on
    # (counts-per-(campaign, window) instead of raw events).
    combine_volume_factor: float
    # Reduce-side per-record merge cost.
    reduce_record_cost_s: float
    # Tumbling window length (the benchmark uses 10 s windows).
    window_s: float
    # Lognormal sigma of batch service-time noise.
    noise_sigma: float
    # Heavy-tail mixture: fraction of batches hit by skew and the
    # multiplicative slowdown they suffer (workload skew, Fig. 9).
    skew_fraction: float = 0.0
    skew_factor: float = 1.0

    def map_cost(self, optimized: bool) -> float:
        return self.optimized_record_cost_s if optimized else self.record_cost_s

    def shuffle_bytes_per_record(self, optimized: bool) -> float:
        factor = self.combine_volume_factor if optimized else 1.0
        return self.bytes_per_record * factor

    def with_overrides(self, **kwargs) -> "WorkloadProfile":
        return replace(self, **kwargs)


# The Yahoo Streaming Benchmark: ad-impression JSON events, join against a
# static campaign map, count per (campaign, 10 s window).
YAHOO = WorkloadProfile(
    name="yahoo",
    record_cost_s=15.0e-6,
    optimized_record_cost_s=6.0e-6,
    bytes_per_record=180.0,
    combine_volume_factor=0.05,
    reduce_record_cost_s=2.0e-6,
    window_s=10.0,
    noise_sigma=0.10,
)

# Video-analytics heartbeats (§2.1 / Fig. 9): larger JSON records, more
# shuffled state per session, and inherent session skew that inflates the
# tail ("some sessions have more events when compared to others").
VIDEO = WorkloadProfile(
    name="video",
    record_cost_s=24.0e-6,
    optimized_record_cost_s=10.0e-6,
    bytes_per_record=720.0,
    combine_volume_factor=0.25,
    reduce_record_cost_s=4.0e-6,
    window_s=10.0,
    noise_sigma=0.16,
    skew_fraction=0.12,
    skew_factor=1.9,
)
