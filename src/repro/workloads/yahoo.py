"""The Yahoo Streaming Benchmark (§5.3) — real executable version.

Mimics analytics on a stream of ad impressions: a producer inserts JSON
records; the query parses each JSON, filters to ``view`` events, joins the
ad against a (static) ad->campaign map, buckets events into 10-second
event-time windows per campaign, and counts events per (campaign, window).
The benchmark metric is *window event latency*: for a window that ended at
time ``a`` whose last event finished processing at ``b``, latency is
``b - a``.

This module generates the data and wires the query for BOTH engines:

* :func:`attach_microbatch_query` — micro-batch pipeline (Spark/Drizzle
  style) on a :class:`~repro.streaming.context.StreamingContext`, with a
  ``groupby`` (unoptimized) or ``reduceby`` (map-side combined, §5.4)
  data plane;
* :func:`build_continuous_job` — continuous-operator pipeline (Flink
  style) with an event-time window operator.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.continuous.engine import ContinuousJob, SourceSpec
from repro.continuous.operators import FlatMapOperator, OperatorSpec, WindowAggOperator
from repro.streaming.context import StreamingContext
from repro.streaming.sinks import Sink
from repro.streaming.sources import RecordLog
from repro.streaming.state import StateStore
from repro.streaming.windows import WindowEmitter, window_for

EVENT_TYPES = ("view", "click", "purchase")


@dataclass
class YahooWorkload:
    """Benchmark dataset: campaigns, ads, and a JSON event generator."""

    num_campaigns: int = 20
    ads_per_campaign: int = 5
    view_fraction: float = 0.6
    seed: int = 42

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self.campaigns = [f"campaign-{i}" for i in range(self.num_campaigns)]
        self.ad_to_campaign: Dict[str, str] = {}
        for c_index, campaign in enumerate(self.campaigns):
            for a in range(self.ads_per_campaign):
                self.ad_to_campaign[f"ad-{c_index}-{a}"] = campaign
        self.ads = list(self.ad_to_campaign)

    def make_event(self, event_time: float) -> str:
        """One JSON ad event."""
        ad = self._rng.choice(self.ads)
        if self._rng.random() < self.view_fraction:
            event_type = "view"
        else:
            event_type = self._rng.choice(("click", "purchase"))
        return json.dumps(
            {
                "event_time": event_time,
                "ad_id": ad,
                "event_type": event_type,
                "ip": f"10.0.{self._rng.randrange(256)}.{self._rng.randrange(256)}",
            }
        )

    def generate(
        self, num_events: int, time_span_s: float, start_time: float = 0.0
    ) -> List[str]:
        """Events with event times spread uniformly over the span, in
        arrival order."""
        if num_events <= 0:
            return []
        step = time_span_s / num_events
        return [
            self.make_event(start_time + i * step) for i in range(num_events)
        ]

    def fill_log(
        self, log: RecordLog, num_events: int, time_span_s: float, start_time: float = 0.0
    ) -> None:
        log.append_round_robin(self.generate(num_events, time_span_s, start_time))

    # ------------------------------------------------------------------
    # Reference answer (for correctness tests)
    # ------------------------------------------------------------------
    def expected_counts(
        self, events: List[str], window_s: float
    ) -> Dict[Tuple[str, int], int]:
        counts: Dict[Tuple[str, int], int] = {}
        for raw in events:
            e = json.loads(raw)
            if e["event_type"] != "view":
                continue
            campaign = self.ad_to_campaign[e["ad_id"]]
            w = window_for(e["event_time"], window_s)
            counts[(campaign, w)] = counts.get((campaign, w), 0) + 1
        return counts


def parse_and_key(
    ad_to_campaign: Dict[str, str], window_s: float
) -> Callable[[str], List[Tuple[Tuple[str, int], int]]]:
    """The map-side record function: JSON parse, filter, join, window."""

    def fn(raw: str) -> List[Tuple[Tuple[str, int], int]]:
        e = json.loads(raw)
        if e["event_type"] != "view":
            return []
        campaign = ad_to_campaign.get(e["ad_id"])
        if campaign is None:
            return []
        w = window_for(e["event_time"], window_s)
        return [((campaign, w), 1)]

    return fn


def attach_microbatch_query(
    ctx: StreamingContext,
    workload: YahooWorkload,
    store: StateStore,
    sink: Sink,
    window_s: float = 10.0,
    num_reducers: int = 4,
    optimized: bool = True,
    watermark_for: Optional[Callable[[int], float]] = None,
) -> None:
    """Wire the benchmark query onto a streaming context.

    ``optimized=True`` uses ``reduce_by_key`` (map-side partial counts,
    §5.4); ``optimized=False`` uses ``group_by_key`` and counts on the
    reduce side (the Figure 6 configuration).
    """
    keyed = ctx.stream().flat_map(parse_and_key(workload.ad_to_campaign, window_s))
    if optimized:
        per_batch = keyed.reduce_by_key(lambda a, b: a + b, num_reducers)
    else:
        per_batch = keyed.group_by_key(num_reducers).map(
            lambda kv: (kv[0], len(kv[1]))
        )
    emit = None
    if watermark_for is not None:
        emit = WindowEmitter(window_size=window_s, watermark_for=watermark_for)
    per_batch.update_state(store, merge=lambda a, b: a + b, emit=emit, sink=sink)


def build_continuous_job(
    log: RecordLog,
    workload: YahooWorkload,
    sink: Sink,
    window_s: float = 10.0,
    parallelism: int = 2,
    watermark_every: int = 50,
) -> ContinuousJob:
    """The Flink-style implementation: parse/filter/join operator followed
    by an event-time window count operator partitioned by campaign."""
    key_fn = parse_and_key(workload.ad_to_campaign, window_s)

    def to_window_records(raw: str):
        # -> (campaign, (event_time, 1)) for view events
        e = json.loads(raw)
        if e["event_type"] != "view":
            return []
        campaign = workload.ad_to_campaign.get(e["ad_id"])
        if campaign is None:
            return []
        return [(campaign, (e["event_time"], 1))]

    _ = key_fn  # parse logic shared conceptually; window op re-windows
    return ContinuousJob(
        source=SourceSpec(
            log,
            event_time_fn=lambda raw: json.loads(raw)["event_time"],
            watermark_every=watermark_every,
        ),
        operators=[
            OperatorSpec("parse", lambda: FlatMapOperator(to_window_records), parallelism),
            OperatorSpec(
                "window",
                lambda: WindowAggOperator(lambda a, b: a + b, window_s),
                parallelism,
                partitioning="hash",
            ),
        ],
        sink=sink,
    )
