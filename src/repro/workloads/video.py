"""Video-analytics workload (§2.1 case study, Figure 9).

A prediction service consumes heartbeats from video-streaming clients,
groups them by session identifier, and maintains a per-session summary
(event counts, buffering ratio, average bitrate) that downstream systems
use for dashboards and CDN predictions.

Compared with the Yahoo benchmark the heartbeats are *bigger* (richer
JSON) and session activity is *skewed* — a small number of sessions
produce a disproportionate share of heartbeats ("the workload also has
some inherent skew"), which inflates tail latency (Fig. 9).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.streaming.context import StreamingContext
from repro.streaming.sinks import Sink
from repro.streaming.sources import RecordLog
from repro.streaming.state import StateStore

PLAYER_STATES = ("playing", "buffering", "paused")


@dataclass
class SessionSummary:
    """Aggregate maintained per session."""

    events: int = 0
    buffering_events: int = 0
    bitrate_sum: float = 0.0
    last_event_time: float = 0.0

    def merge(self, other: "SessionSummary") -> "SessionSummary":
        return SessionSummary(
            events=self.events + other.events,
            buffering_events=self.buffering_events + other.buffering_events,
            bitrate_sum=self.bitrate_sum + other.bitrate_sum,
            last_event_time=max(self.last_event_time, other.last_event_time),
        )

    @property
    def buffering_ratio(self) -> float:
        return self.buffering_events / self.events if self.events else 0.0

    @property
    def avg_bitrate(self) -> float:
        return self.bitrate_sum / self.events if self.events else 0.0


@dataclass
class VideoWorkload:
    """Heartbeat generator with Zipf-skewed session popularity."""

    num_sessions: int = 200
    zipf_s: float = 1.2
    seed: int = 7

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        # Zipf weights: session i has weight 1 / (i+1)^s.
        weights = [1.0 / (i + 1) ** self.zipf_s for i in range(self.num_sessions)]
        total = sum(weights)
        self._cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)

    def _pick_session(self) -> int:
        r = self._rng.random()
        lo, hi = 0, len(self._cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < r:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def make_heartbeat(self, event_time: float) -> str:
        session = self._pick_session()
        state = self._rng.choices(PLAYER_STATES, weights=(8, 1, 1))[0]
        return json.dumps(
            {
                "session_id": f"session-{session}",
                "event_time": event_time,
                "player_state": state,
                "bitrate_kbps": self._rng.choice((800, 1500, 3000, 6000)),
                "cdn": self._rng.choice(("cdn-a", "cdn-b", "cdn-c")),
                "device": self._rng.choice(("ios", "android", "web", "tv")),
                "buffer_s": round(self._rng.uniform(0.0, 30.0), 2),
            }
        )

    def generate(
        self, num_events: int, time_span_s: float, start_time: float = 0.0
    ) -> List[str]:
        if num_events <= 0:
            return []
        step = time_span_s / num_events
        return [self.make_heartbeat(start_time + i * step) for i in range(num_events)]

    def fill_log(
        self, log: RecordLog, num_events: int, time_span_s: float, start_time: float = 0.0
    ) -> None:
        log.append_round_robin(self.generate(num_events, time_span_s, start_time))

    def expected_summaries(self, events: List[str]) -> Dict[str, SessionSummary]:
        out: Dict[str, SessionSummary] = {}
        for raw in events:
            session_id, summary = parse_heartbeat(raw)
            if session_id in out:
                out[session_id] = out[session_id].merge(summary)
            else:
                out[session_id] = summary
        return out


def parse_heartbeat(raw: str) -> Tuple[str, SessionSummary]:
    e = json.loads(raw)
    return (
        e["session_id"],
        SessionSummary(
            events=1,
            buffering_events=1 if e["player_state"] == "buffering" else 0,
            bitrate_sum=float(e["bitrate_kbps"]),
            last_event_time=float(e["event_time"]),
        ),
    )


def attach_session_query(
    ctx: StreamingContext,
    store: StateStore,
    sink: Sink,
    num_reducers: int = 4,
) -> None:
    """Per-batch session aggregation merged into a session-summary store;
    each batch commits the updated (session, summary) pairs it touched."""
    per_batch = (
        ctx.stream()
        .map(parse_heartbeat)
        .reduce_by_key(lambda a, b: a.merge(b), num_reducers)
    )

    def callback(batch_index: int, records: List[Tuple[str, SessionSummary]]) -> None:
        store.update_many(dict(records), lambda a, b: a.merge(b))
        sink.commit(batch_index, sorted(k for k, _v in records))

    ctx.register_output(per_batch, callback)
