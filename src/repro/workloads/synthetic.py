"""Synthetic micro-benchmark workloads (§5.2).

The paper's micro-benchmarks use "a simple workload where each task
computes the sum of random numbers", with the number of tasks equal to the
number of cores, optionally followed by a shuffle stage with 16 reduce
tasks.  These builders produce the equivalent datasets for the *real*
threaded engine; the weak-scaling variants for 4–128 simulated machines
live in :mod:`repro.sim.microbench`.
"""

from __future__ import annotations

import random
from typing import List

from repro.dag.dataset import Dataset, SourceDataset


def sum_random_dataset(
    num_tasks: int, elements_per_task: int = 1000, seed: int = 0
) -> Dataset:
    """One map stage: each task sums ``elements_per_task`` seeded random
    numbers (deterministic per partition, so replays agree)."""

    def partition_fn(index: int) -> List[float]:
        rng = random.Random(seed * 1_000_003 + index)
        return [rng.random() for _ in range(elements_per_task)]

    return SourceDataset(partition_fn, num_tasks).map_partitions(
        lambda _p, it: [sum(it)]
    )


def sum_random_with_shuffle(
    num_tasks: int,
    num_reducers: int = 16,
    elements_per_task: int = 1000,
    seed: int = 0,
) -> Dataset:
    """Map stage + shuffle: partial sums are keyed round-robin across
    ``num_reducers`` reduce tasks and summed (the Fig. 5(b) two-stage
    shape)."""

    def partition_fn(index: int) -> List[float]:
        rng = random.Random(seed * 1_000_003 + index)
        return [rng.random() for _ in range(elements_per_task)]

    return (
        SourceDataset(partition_fn, num_tasks)
        .map_partitions(lambda p, it: [(p % num_reducers, sum(it))])
        .reduce_by_key(lambda a, b: a + b, num_reducers)
    )


def expected_sum(num_tasks: int, elements_per_task: int = 1000, seed: int = 0) -> float:
    total = 0.0
    for index in range(num_tasks):
        rng = random.Random(seed * 1_000_003 + index)
        total += sum(rng.random() for _ in range(elements_per_task))
    return total


def cpu_burn(value: float, iterations: int = 400) -> float:
    """A deliberately CPU-bound per-record transform for executor-backend
    benchmarks: pure-Python arithmetic that holds the GIL, so thread-pool
    executors serialize while process pools scale with cores."""
    acc = float(value)
    for i in range(iterations):
        acc = (acc * 31.0 + i) % 1000003.0
    return acc
