"""Synthetic SQL/streaming query corpus + aggregation analyzer (Table 2).

§3.5 analyzes over 900,000 SQL and streaming queries from a cloud
analytics platform: about 25 % of queries use one or more aggregation
functions, and >95 % of aggregation queries use only *partial-merge*
aggregates (count, sum, min, max, first, last) whose merge can be
distributed — the motivation for map-side combining.

We cannot ship the proprietary corpus, so :class:`QueryCorpusGenerator`
synthesizes one with the published aggregate mix, and
:class:`WorkloadAnalyzer` re-derives Table 2 from the generated SQL text —
the *analysis pipeline* is real even though the corpus is synthetic.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List

# Published Table 2 distribution (percent of aggregation queries).
TABLE2_DISTRIBUTION: Dict[str, float] = {
    "Count": 60.55,
    "First/Last": 25.90,
    "Sum/Min/Max": 8.64,
    "User Defined Function": 0.002,
    "Other": 4.908,
}

# Which categories support partial merge (distributable combiners).
PARTIAL_MERGE_CATEGORIES = ("Count", "First/Last", "Sum/Min/Max")

_AGG_FUNCTIONS: Dict[str, List[str]] = {
    "Count": ["COUNT"],
    "First/Last": ["FIRST", "LAST"],
    "Sum/Min/Max": ["SUM", "MIN", "MAX"],
    "User Defined Function": ["MY_UDF_AGG"],
    "Other": ["MEDIAN", "PERCENTILE", "COLLECT_LIST", "STDDEV_POP"],
}

_FUNCTION_TO_CATEGORY: Dict[str, str] = {
    fn: cat for cat, fns in _AGG_FUNCTIONS.items() for fn in fns
}

_TABLES = ["events", "clicks", "sessions", "heartbeats", "orders", "metrics"]
_COLUMNS = ["value", "price", "latency_ms", "bytes", "duration", "score"]

_AGG_CALL_RE = re.compile(r"\b([A-Z_]+)\s*\(", re.IGNORECASE)


@dataclass
class QueryCorpusGenerator:
    """Synthesizes SQL text with the published aggregate-usage mix."""

    aggregation_fraction: float = 0.25
    streaming_fraction: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._categories = list(TABLE2_DISTRIBUTION)
        self._weights = [TABLE2_DISTRIBUTION[c] for c in self._categories]

    def generate(self, n: int) -> Iterator[str]:
        for _ in range(n):
            yield self.one_query()

    def one_query(self) -> str:
        rng = self._rng
        table = rng.choice(_TABLES)
        column = rng.choice(_COLUMNS)
        prefix = ""
        if rng.random() < self.streaming_fraction:
            prefix = "-- streaming\n"
        if rng.random() >= self.aggregation_fraction:
            return (
                f"{prefix}SELECT {column}, user_id FROM {table} "
                f"WHERE {column} > {rng.randrange(100)} LIMIT {rng.randrange(1, 1000)}"
            )
        category = rng.choices(self._categories, weights=self._weights)[0]
        fn = rng.choice(_AGG_FUNCTIONS[category])
        group = rng.choice(["user_id", "region", "device", "campaign"])
        return (
            f"{prefix}SELECT {group}, {fn}({column}) FROM {table} "
            f"GROUP BY {group}"
        )


@dataclass
class AnalysisResult:
    total_queries: int
    aggregation_queries: int
    category_counts: Dict[str, int]

    @property
    def aggregation_fraction(self) -> float:
        if self.total_queries == 0:
            return 0.0
        return self.aggregation_queries / self.total_queries

    def category_percentages(self) -> Dict[str, float]:
        if self.aggregation_queries == 0:
            return {c: 0.0 for c in TABLE2_DISTRIBUTION}
        return {
            c: 100.0 * self.category_counts.get(c, 0) / self.aggregation_queries
            for c in TABLE2_DISTRIBUTION
        }

    @property
    def partial_merge_fraction(self) -> float:
        """Share of aggregation queries using only partial-merge aggregates
        (the paper reports >95 %)."""
        if self.aggregation_queries == 0:
            return 0.0
        partial = sum(
            self.category_counts.get(c, 0) for c in PARTIAL_MERGE_CATEGORIES
        )
        return partial / self.aggregation_queries


class WorkloadAnalyzer:
    """Parses SQL text and classifies aggregate usage (regenerates Table 2)."""

    def analyze(self, queries: Iterable[str]) -> AnalysisResult:
        total = 0
        agg_queries = 0
        category_counts: Dict[str, int] = {}
        for query in queries:
            total += 1
            categories = self.categories_of(query)
            if not categories:
                continue
            agg_queries += 1
            # A query with several aggregates is attributed to its
            # "least mergeable" category so partial-merge share is honest.
            worst = self._least_mergeable(categories)
            category_counts[worst] = category_counts.get(worst, 0) + 1
        return AnalysisResult(total, agg_queries, category_counts)

    @staticmethod
    def categories_of(query: str) -> List[str]:
        out: List[str] = []
        for match in _AGG_CALL_RE.finditer(query):
            category = _FUNCTION_TO_CATEGORY.get(match.group(1).upper())
            if category is not None:
                out.append(category)
        return out

    @staticmethod
    def _least_mergeable(categories: List[str]) -> str:
        ranking = [
            "User Defined Function",
            "Other",
            "Sum/Min/Max",
            "First/Last",
            "Count",
        ]
        for category in ranking:
            if category in categories:
                return category
        return categories[0]
