"""Workloads: Yahoo streaming benchmark, video analytics, micro-benchmark
datasets, the Table-2 query corpus, and simulator profiles."""

from repro.workloads.profiles import VIDEO, YAHOO, WorkloadProfile
from repro.workloads.queries import (
    PARTIAL_MERGE_CATEGORIES,
    TABLE2_DISTRIBUTION,
    AnalysisResult,
    QueryCorpusGenerator,
    WorkloadAnalyzer,
)
from repro.workloads.synthetic import (
    cpu_burn,
    expected_sum,
    sum_random_dataset,
    sum_random_with_shuffle,
)
from repro.workloads.video import (
    SessionSummary,
    VideoWorkload,
    attach_session_query,
    parse_heartbeat,
)
from repro.workloads.yahoo import (
    YahooWorkload,
    attach_microbatch_query,
    build_continuous_job,
    parse_and_key,
)

__all__ = [
    "VIDEO",
    "YAHOO",
    "WorkloadProfile",
    "PARTIAL_MERGE_CATEGORIES",
    "TABLE2_DISTRIBUTION",
    "AnalysisResult",
    "QueryCorpusGenerator",
    "WorkloadAnalyzer",
    "cpu_burn",
    "expected_sum",
    "sum_random_dataset",
    "sum_random_with_shuffle",
    "SessionSummary",
    "VideoWorkload",
    "attach_session_query",
    "parse_heartbeat",
    "YahooWorkload",
    "attach_microbatch_query",
    "build_continuous_job",
    "parse_and_key",
]
