"""Pre-scheduling of shuffles (paper §3.2) — dependency bookkeeping.

Pre-scheduling launches downstream (reduce) tasks *before* their upstream
(map) tasks have produced output.  Each worker runs a *local scheduler*
whose core data structure is the :class:`PendingTaskTable` below: tasks
are registered inactive with a set of expected upstream notifications, and
become runnable exactly when the last notification arrives.

The module also computes *dependency sets*: which upstream task indices a
given downstream task must wait for.  For a general shuffle this is
all-to-all (every reducer reads from every mapper).  §3.6 observes that
for operators with a known communication structure — the paper implements
``treereduce`` — the set can be narrowed so that a reduce task waits only
on its actual parents, letting it start earlier.

Everything here is pure logic with no threads or I/O, shared verbatim by
the threaded engine (:mod:`repro.engine.worker`) and the simulator
(:mod:`repro.sim.bsp`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

# A notification key: (shuffle_id, map_partition_index).
DepKey = Tuple[int, int]


def all_to_all_deps(shuffle_id: int, num_map_tasks: int) -> FrozenSet[DepKey]:
    """Dependency set for a hash/range shuffle: wait for every map task."""
    if num_map_tasks < 0:
        raise ValueError("num_map_tasks must be >= 0")
    return frozenset((shuffle_id, i) for i in range(num_map_tasks))


def tree_reduce_deps(
    shuffle_id: int, num_map_tasks: int, reducer_index: int, fan_in: int = 2
) -> FrozenSet[DepKey]:
    """Dependency set for a tree-reduce stage (§3.6).

    Maps are grouped into contiguous chunks of ``fan_in``; reducer *r*
    aggregates chunk *r* and therefore only waits on those map tasks.
    """
    if fan_in < 1:
        raise ValueError("fan_in must be >= 1")
    lo = reducer_index * fan_in
    hi = min(lo + fan_in, num_map_tasks)
    if lo >= num_map_tasks:
        raise ValueError(
            f"reducer {reducer_index} has no parents "
            f"({num_map_tasks} maps, fan_in {fan_in})"
        )
    return frozenset((shuffle_id, i) for i in range(lo, hi))


def tree_reduce_num_reducers(num_map_tasks: int, fan_in: int = 2) -> int:
    """Number of reducers one tree-reduce level needs."""
    if num_map_tasks < 1:
        raise ValueError("num_map_tasks must be >= 1")
    return (num_map_tasks + fan_in - 1) // fan_in


@dataclass
class PendingEntry:
    """A pre-scheduled task waiting for its inputs."""

    task_key: str
    outstanding: Set[DepKey]
    satisfied: Set[DepKey] = field(default_factory=set)

    @property
    def ready(self) -> bool:
        return not self.outstanding


class PendingTaskTable:
    """Tracks inactive pre-scheduled tasks on one worker.

    Protocol (mirrors §3.2):

    * ``register(task_key, deps)`` — the driver pre-schedules a task; it is
      inactive and holds no execution slot.
    * ``notify(dep)`` — an upstream task finished and pushed its metadata;
      returns every task key that became runnable *because of this exact
      notification* (each key is returned at most once, ever).
    * Notifications may arrive *before* the task is registered (an upstream
      worker can be fast, or the driver pre-populates completed
      dependencies when re-scheduling onto a new machine after a failure,
      §3.3).  Early notifications are buffered in ``_seen``.

    ``epoch`` tags the table with the cluster-membership epoch it was
    created under (execution templates, repro.core.templates): a table's
    dependency wiring bakes in worker placement, so a worker can tell a
    table built before a membership change from one built after it.
    """

    def __init__(self, epoch: int = 0) -> None:
        self.epoch = epoch
        self._pending: Dict[str, PendingEntry] = {}
        self._seen: Set[DepKey] = set()
        self._activated: Set[str] = set()

    def __len__(self) -> int:
        return len(self._pending)

    def pending_keys(self) -> List[str]:
        return list(self._pending)

    def entry(self, task_key: str) -> Optional[PendingEntry]:
        return self._pending.get(task_key)

    def register(self, task_key: str, deps: FrozenSet[DepKey]) -> bool:
        """Register an inactive task.  Returns True if it is immediately
        runnable (all deps already satisfied, or no deps at all)."""
        if task_key in self._pending or task_key in self._activated:
            raise ValueError(f"task {task_key!r} already registered")
        outstanding = set(deps) - self._seen
        entry = PendingEntry(
            task_key=task_key,
            outstanding=outstanding,
            satisfied=set(deps) & self._seen,
        )
        if entry.ready:
            self._activated.add(task_key)
            return True
        self._pending[task_key] = entry
        return False

    def notify(self, dep: DepKey) -> List[str]:
        """Record that upstream output ``dep`` is available; return newly
        runnable task keys.  Idempotent per (task, dep) pair."""
        self._seen.add(dep)
        ready: List[str] = []
        for key in list(self._pending):
            entry = self._pending[key]
            if dep in entry.outstanding:
                entry.outstanding.discard(dep)
                entry.satisfied.add(dep)
                if entry.ready:
                    del self._pending[key]
                    self._activated.add(key)
                    ready.append(key)
        return ready

    def pre_populate(self, deps: FrozenSet[DepKey]) -> List[str]:
        """Driver-supplied list of already-completed dependencies (§3.3,
        used when pre-scheduling onto a machine that joined after some
        upstream tasks already finished).  Returns newly runnable keys."""
        ready: List[str] = []
        for dep in deps:
            ready.extend(self.notify(dep))
        return ready

    def cancel(self, task_key: str) -> bool:
        """Remove a pending task (e.g. its group was aborted)."""
        return self._pending.pop(task_key, None) is not None

    def was_activated(self, task_key: str) -> bool:
        return task_key in self._activated
