"""Group scheduling (paper §3.1) — placement reuse and group planning.

Group scheduling amortizes centralized scheduling cost by computing task
placement *once per group* of micro-batches and shipping every batch's
tasks to the workers in a single RPC per worker.

The key enabling observation (§3.1): the computation DAG of a streaming
job is largely static across micro-batches, so locality preferences and
the worker-to-task mapping computed for one micro-batch are valid for the
whole group.  :class:`PlacementPolicy` computes an assignment once;
:func:`plan_group` replicates it across the group's batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class TaskSlot:
    """A placement target: a worker and a slot index on it."""

    worker_id: str
    slot: int


@dataclass
class StageTemplate:
    """Shape of one stage of the (static) per-micro-batch DAG.

    ``locality``: optional preferred worker per partition (e.g. the worker
    holding the source partition); honoured when that worker is alive.
    """

    stage_index: int
    num_tasks: int
    is_shuffle_map: bool
    shuffle_id: Optional[int] = None
    locality: Optional[Sequence[Optional[str]]] = None


@dataclass
class Assignment:
    """Placement for every stage of the template DAG.

    ``by_stage[stage_index][partition] -> TaskSlot``.
    """

    workers: Tuple[str, ...]
    by_stage: Dict[int, List[TaskSlot]] = field(default_factory=dict)

    def tasks_for_worker(self, worker_id: str) -> List[Tuple[int, int]]:
        """(stage_index, partition) pairs placed on ``worker_id``."""
        out: List[Tuple[int, int]] = []
        for stage_index, slots in sorted(self.by_stage.items()):
            for partition, slot in enumerate(slots):
                if slot.worker_id == worker_id:
                    out.append((stage_index, partition))
        return out


class PlacementPolicy:
    """Deterministic locality-then-round-robin placement.

    This mirrors what a Spark-style scheduler computes per stage: respect
    locality preferences when possible, otherwise spread tasks round-robin
    across slots.  Determinism matters — the reuse argument of §3.1 and
    our replay-based fault tolerance both rely on the same inputs mapping
    to the same placement.
    """

    def __init__(self, workers: Sequence[str], slots_per_worker: int):
        if not workers:
            raise ValueError("no workers to place tasks on")
        if slots_per_worker < 1:
            raise ValueError("slots_per_worker must be >= 1")
        self.workers = tuple(sorted(workers))
        self.slots_per_worker = slots_per_worker

    def assign(self, stages: Sequence[StageTemplate]) -> Assignment:
        assignment = Assignment(workers=self.workers)
        worker_index = {w: i for i, w in enumerate(self.workers)}
        cursor = 0
        num_workers = len(self.workers)
        for stage in stages:
            slots: List[TaskSlot] = []
            for partition in range(stage.num_tasks):
                preferred = None
                if stage.locality is not None and partition < len(stage.locality):
                    preferred = stage.locality[partition]
                if preferred is not None and preferred in worker_index:
                    w = preferred
                else:
                    w = self.workers[cursor % num_workers]
                    cursor += 1
                slots.append(TaskSlot(worker_id=w, slot=partition % self.slots_per_worker))
            assignment.by_stage[stage.stage_index] = slots
        return assignment


@dataclass(frozen=True)
class GroupPlan:
    """A planned group: which micro-batch indices run under one assignment."""

    group_id: int
    batch_indices: Tuple[int, ...]
    assignment: Assignment

    @property
    def size(self) -> int:
        return len(self.batch_indices)


def plan_group(
    group_id: int,
    first_batch: int,
    group_size: int,
    policy: PlacementPolicy,
    stages: Sequence[StageTemplate],
) -> GroupPlan:
    """Compute placement once and stamp it across ``group_size`` batches."""
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    assignment = policy.assign(stages)
    return GroupPlan(
        group_id=group_id,
        batch_indices=tuple(range(first_batch, first_batch + group_size)),
        assignment=assignment,
    )


@dataclass
class CoordinationLedger:
    """Per-group accounting of where time went (feeds the §3.4 tuner and
    the Figure 4(b) breakdown).

    The driver charges scheduling/serialization/RPC time here; workers
    report compute time.  ``overhead_fraction`` is coordination time over
    end-to-end time for the group.
    """

    scheduling_s: float = 0.0
    task_transfer_s: float = 0.0
    compute_s: float = 0.0
    wall_s: float = 0.0

    @property
    def coordination_s(self) -> float:
        return self.scheduling_s + self.task_transfer_s

    @property
    def overhead_fraction(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return min(self.coordination_s / self.wall_s, 1.0)

    def merge(self, other: "CoordinationLedger") -> None:
        self.scheduling_s += other.scheduling_s
        self.task_transfer_s += other.task_transfer_s
        self.compute_s += other.compute_s
        self.wall_s += other.wall_s
