"""Automatic group-size tuning (paper §3.4).

The tuner is an AIMD controller inspired by TCP congestion control: it
observes the fraction of end-to-end group execution time spent in
centralized coordination (scheduling, task serialization, RPC) and keeps
that fraction inside user-specified bounds.

* overhead > upper bound  -> multiplicatively *increase* the group size so
  coordination is amortized over more micro-batches and the overhead
  "decreases rapidly";
* overhead < lower bound  -> additively *decrease* the group size to
  improve adaptability (smaller groups mean faster reaction to failures
  and cluster changes).

Observations are smoothed with an exponentially weighted moving average so
transient spikes (the paper calls out GC pauses) do not thrash the group
size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.common.config import TunerConf
from repro.common.stats import ExponentialAverage


@dataclass
class TunerDecision:
    """One tuning step: what was observed and what was decided."""

    observed_overhead: float
    smoothed_overhead: float
    previous_group_size: int
    new_group_size: int
    action: str  # "increase" | "decrease" | "hold"

    def as_annotation(self) -> Dict[str, Any]:
        """Flat payload for span annotations / trace instants."""
        return {
            "overhead": round(self.observed_overhead, 6),
            "smoothed_overhead": round(self.smoothed_overhead, 6),
            "group_size_old": self.previous_group_size,
            "group_size_new": self.new_group_size,
            "action": self.action,
        }


class GroupSizeTuner:
    """AIMD controller over the scheduling-overhead fraction.

    Thread-compatibility: the engine calls ``observe`` from the driver's
    event loop only, so no internal locking is needed.
    """

    def __init__(self, conf: TunerConf, initial_group_size: int = 1):
        conf.validate()
        self.conf = conf
        if not conf.min_group_size <= initial_group_size <= conf.max_group_size:
            initial_group_size = min(
                max(initial_group_size, conf.min_group_size), conf.max_group_size
            )
        self._group_size = initial_group_size
        self._ewma = ExponentialAverage(alpha=conf.ewma_alpha)
        self.history: List[TunerDecision] = []

    @property
    def group_size(self) -> int:
        return self._group_size

    @property
    def smoothed_overhead(self) -> Optional[float]:
        return self._ewma.value if self._ewma.initialized else None

    def observe(self, coordination_time: float, total_time: float) -> TunerDecision:
        """Feed one group's timing measurements; returns the decision.

        ``coordination_time`` is time spent in scheduling + coordination,
        ``total_time`` is the end-to-end time for the group.  The ratio is
        the scheduling overhead of §3.4.
        """
        if total_time <= 0:
            raise ValueError(f"total_time must be positive, got {total_time}")
        if coordination_time < 0:
            raise ValueError("coordination_time must be non-negative")
        observed = min(coordination_time / total_time, 1.0)
        smoothed = self._ewma.update(observed)

        previous = self._group_size
        if smoothed > self.conf.overhead_upper_bound:
            action = "increase"
            proposed = int(round(previous * self.conf.increase_factor))
            proposed = max(proposed, previous + 1)
        elif smoothed < self.conf.overhead_lower_bound:
            action = "decrease"
            proposed = previous - self.conf.decrease_step
        else:
            action = "hold"
            proposed = previous

        new_size = min(max(proposed, self.conf.min_group_size), self.conf.max_group_size)
        if new_size == previous and action != "hold":
            # Clamped at a bound; report the action that was attempted but
            # record that the size did not move.
            pass
        self._group_size = new_size

        decision = TunerDecision(
            observed_overhead=observed,
            smoothed_overhead=smoothed,
            previous_group_size=previous,
            new_group_size=new_size,
            action=action,
        )
        self.history.append(decision)
        return decision

    def observe_signals(self, signals) -> TunerDecision:
        """Feed one :meth:`ClusterTelemetry.signals` document instead of
        raw timings — the cluster-rollup path to the same AIMD step: the
        ``coordination`` block carries windowed scheduling + transfer
        time and the matching wall time, so
        ``observe_signals(telemetry.signals())`` is equivalent to
        ``observe(coordination_s, wall_s)`` over that window.  A window
        with no wall time yet (cluster just started, or an empty signals
        document) holds at the current size rather than erroring."""
        coord = signals.get("coordination") or {}
        wall = float(coord.get("wall_s", 0.0))
        if wall <= 0:
            decision = TunerDecision(
                observed_overhead=0.0,
                smoothed_overhead=self._ewma.value if self._ewma.initialized else 0.0,
                previous_group_size=self._group_size,
                new_group_size=self._group_size,
                action="hold",
            )
            self.history.append(decision)
            return decision
        return self.observe(float(coord.get("coordination_s", 0.0)), wall)
