"""Execution templates for O(1) steady-state group launches.

Drizzle's group scheduling (§3.1) already amortizes scheduling *decisions*
across a group, but the driver still ships per-task descriptors on every
group launch — an O(tasks) = O(group size × stages × partitions) wire
payload.  *Execution Templates* (Mashayekhi et al., 2017) goes one step
further: the workers cache the entire instantiated schedule and the
controller re-launches it with one small parameterized RPC.

This module is the pure-policy core of that idea, shared by the driver
(:mod:`repro.engine.driver`) and the tcp wire layer
(:mod:`repro.net.transport`):

* :func:`compute_template_id` — content digest of one worker's slice of a
  group launch: slot-relative task identities, plan *content* digests,
  dependency sets, and downstream placement.  Two groups whose plans
  serialize to identical bytes under identical placement produce the same
  id, no matter which batch indices they carry — the batch ids are the
  *parameters*, everything else is the template.
* :class:`TemplateSender` — driver-transport bookkeeping: which peer has
  acknowledged which ``(template_id, epoch)``, and how many wire bytes the
  full launch cost (the savings baseline for ``net.template_bytes_saved``).
* :class:`TemplateStore` — worker-side cache of installed templates; an
  ``instantiate(template_id, batch_ids, epoch)`` substitutes the new batch
  (job) ids into the cached descriptors and returns fresh copies, or
  ``None`` when the template is absent or from a stale membership epoch
  (the ``template_miss`` signal).

Invalidation rule: the *epoch* counts cluster-membership changes (worker
join / leave / re-announce).  Templates bake worker placement into their
``downstream`` pointers, so any membership change makes every cached
template unsafe; the driver bumps its epoch and clears the sender's
shipped sets, and a worker refuses to instantiate a template recorded
under an older epoch — wrong-epoch results are structurally impossible,
the launch just degrades to a full (template-installing) send.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

# Default cap on cached templates per worker (and tracked per peer on the
# driver's transport); TemplateConf.max_per_worker overrides it.
DEFAULT_MAX_TEMPLATES = 32


class PlanDigestCache:
    """Content digest per plan object, memoized by identity.

    Serializing a plan is the expensive part of digesting it; under
    steady-state streaming the same plan object is digested once per
    group, so an identity memo (holding the plan reference to keep its
    ``id`` stable) makes repeat digests free — the same trick as
    :class:`repro.net.stageblobs.StageBlobSender`.
    """

    def __init__(self, cache_entries: int = 64):
        self._cache_entries = cache_entries
        self._lock = threading.Lock()
        self._digests: Dict[int, Tuple[Any, str]] = {}

    def digest(self, plan: Any) -> str:
        with self._lock:
            entry = self._digests.get(id(plan))
            if entry is not None and entry[0] is plan:
                return entry[1]
        # Import here keeps repro.core importable without the serde layer
        # loaded until a digest is actually needed.
        from repro.dag.serde import dumps_closure

        blob = dumps_closure(plan, context="template plan digest")
        digest = hashlib.sha256(blob).hexdigest()[:16]
        with self._lock:
            if len(self._digests) >= self._cache_entries:
                self._digests.clear()
            self._digests[id(plan)] = (plan, digest)
        return digest


def compute_template_id(
    descriptors: Sequence[Any],
    batch_ids: Sequence[int],
    plan_digests: PlanDigestCache,
) -> str:
    """Digest one worker's group-launch slice into a template id.

    ``descriptors`` is the ordered list of task descriptors the driver
    would send this worker; ``batch_ids`` the ordered job ids of the
    group.  Job ids enter the digest only as *slot indices* (their
    position in ``batch_ids``), which is exactly what makes the id stable
    across groups: batch 17 and batch 42 of the same streaming query
    digest identically as "slot 0".
    """
    slot_of = {job_id: i for i, job_id in enumerate(batch_ids)}
    h = hashlib.sha256()
    h.update(repr(len(batch_ids)).encode())
    for desc in descriptors:
        h.update(
            repr(
                (
                    slot_of[desc.task_id.job_id],
                    desc.task_id.stage_index,
                    desc.task_id.partition,
                    desc.task_id.attempt,
                    plan_digests.digest(desc.plan),
                    sorted(desc.deps),
                    sorted(desc.downstream.items()),
                    sorted(desc.map_locations.items()),
                    desc.pre_scheduled,
                )
            ).encode()
        )
    return h.hexdigest()[:16]


class TemplateSender:
    """Driver-transport side: which peer holds which template, at which
    epoch, and what the full launch cost on the wire."""

    def __init__(self, max_per_peer: int = DEFAULT_MAX_TEMPLATES):
        self._max_per_peer = max_per_peer
        self._lock = threading.Lock()
        # peer -> template_id -> (epoch, full_launch_wire_bytes)
        self._shipped: Dict[str, Dict[str, Tuple[int, int]]] = {}

    def holds(self, dst_id: str, template_id: str, epoch: int) -> bool:
        with self._lock:
            entry = self._shipped.get(dst_id, {}).get(template_id)
            return entry is not None and entry[0] == epoch

    def full_size(self, dst_id: str, template_id: str) -> int:
        """Wire bytes the full (template-installing) launch cost; the
        baseline a template hit is measured against."""
        with self._lock:
            entry = self._shipped.get(dst_id, {}).get(template_id)
            return entry[1] if entry is not None else 0

    def mark_shipped(
        self, dst_id: str, template_id: str, epoch: int, wire_bytes: int
    ) -> None:
        """The peer acknowledged a full launch carrying this template."""
        with self._lock:
            per_peer = self._shipped.setdefault(dst_id, {})
            if template_id not in per_peer and len(per_peer) >= self._max_per_peer:
                # Oldest-installed first: steady state reuses one or two
                # templates, so FIFO eviction never touches the hot entry.
                per_peer.pop(next(iter(per_peer)))
            per_peer[template_id] = (epoch, wire_bytes)

    def forget(self, dst_id: str, template_id: str) -> None:
        """The peer answered ``template_miss``: its copy is gone."""
        with self._lock:
            self._shipped.get(dst_id, {}).pop(template_id, None)

    def forget_peer(self, dst_id: str) -> int:
        """The peer re-registered (restart at a new address): its cache
        died with it.  Returns how many templates were dropped."""
        with self._lock:
            return len(self._shipped.pop(dst_id, {}))

    def invalidate_all(self) -> int:
        """Membership changed: every template's placement is suspect.
        Returns how many templates were dropped (for the metric)."""
        with self._lock:
            dropped = sum(len(per_peer) for per_peer in self._shipped.values())
            self._shipped.clear()
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return sum(len(per_peer) for per_peer in self._shipped.values())


class TemplateStore:
    """Worker side: installed templates, instantiable by batch ids.

    A template is one worker's descriptor slice of a group launch, plus
    the *slot* each descriptor's job occupied in the group — the
    parameterization that lets a later group substitute its own job ids.
    """

    def __init__(self, max_templates: int = DEFAULT_MAX_TEMPLATES):
        self._max_templates = max_templates
        self._lock = threading.Lock()
        # template_id -> (epoch, [(descriptor, slot), ...], num_slots)
        self._templates: Dict[str, Tuple[int, List[Tuple[Any, int]], int]] = {}

    def install(
        self,
        template_id: str,
        epoch: int,
        descriptors: Sequence[Any],
        batch_ids: Sequence[int],
    ) -> bool:
        """Cache a group launch for later instantiation.  Returns False
        (and caches nothing) if a descriptor's job id is not in
        ``batch_ids`` — a driver bug, never worth a wrong template."""
        slot_of = {job_id: i for i, job_id in enumerate(batch_ids)}
        entries: List[Tuple[Any, int]] = []
        for desc in descriptors:
            slot = slot_of.get(desc.task_id.job_id)
            if slot is None:
                return False
            entries.append((desc, slot))
        with self._lock:
            # A newer membership epoch obsoletes everything older: those
            # templates can never instantiate again (epoch check below),
            # so holding them only wastes the cap.
            stale = [
                tid for tid, (ep, _, _) in self._templates.items() if ep < epoch
            ]
            for tid in stale:
                del self._templates[tid]
            if (
                template_id not in self._templates
                and len(self._templates) >= self._max_templates
            ):
                self._templates.pop(next(iter(self._templates)))
            self._templates[template_id] = (epoch, entries, len(batch_ids))
        return True

    def instantiate(
        self, template_id: str, batch_ids: Sequence[int], epoch: int
    ) -> Optional[List[Any]]:
        """Substitute ``batch_ids`` into the cached descriptors.

        Returns fresh descriptor copies (cached ones are never mutated —
        they may be instantiated again), or ``None`` when the template is
        absent, recorded under a different membership epoch, or shaped
        for a different group size — all of which the transport surfaces
        as ``template_miss`` so the driver falls back to a full launch.
        """
        with self._lock:
            entry = self._templates.get(template_id)
            if entry is None:
                return None
            stored_epoch, entries, num_slots = entry
            if stored_epoch != epoch or num_slots != len(batch_ids):
                return None
        return [
            replace(desc, task_id=replace(desc.task_id, job_id=batch_ids[slot]))
            for desc, slot in entries
        ]

    def invalidate_all(self) -> int:
        with self._lock:
            dropped = len(self._templates)
            self._templates.clear()
            return dropped

    def __contains__(self, template_id: str) -> bool:
        with self._lock:
            return template_id in self._templates

    def __len__(self) -> int:
        with self._lock:
            return len(self._templates)


__all__ = [
    "DEFAULT_MAX_TEMPLATES",
    "PlanDigestCache",
    "TemplateSender",
    "TemplateStore",
    "compute_template_id",
]
