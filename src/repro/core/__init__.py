"""Drizzle's contribution: group scheduling, pre-scheduling, group-size tuning.

These modules are pure control-plane policy — no threads, no I/O — and are
shared by the real threaded engine (:mod:`repro.engine`) and the
discrete-event cluster simulator (:mod:`repro.sim`).
"""

from repro.core.groups import (
    Assignment,
    CoordinationLedger,
    GroupPlan,
    PlacementPolicy,
    StageTemplate,
    TaskSlot,
    plan_group,
)
from repro.core.prescheduling import (
    DepKey,
    PendingTaskTable,
    all_to_all_deps,
    tree_reduce_deps,
    tree_reduce_num_reducers,
)
from repro.core.tuner import GroupSizeTuner, TunerDecision

__all__ = [
    "Assignment",
    "CoordinationLedger",
    "GroupPlan",
    "PlacementPolicy",
    "StageTemplate",
    "TaskSlot",
    "plan_group",
    "DepKey",
    "PendingTaskTable",
    "all_to_all_deps",
    "tree_reduce_deps",
    "tree_reduce_num_reducers",
    "GroupSizeTuner",
    "TunerDecision",
]
