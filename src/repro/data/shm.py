"""Shared-memory shuffle segments (see "Raw speed" in docs/networking.md).

When ``DataPlaneConf.shm_shuffle`` is on, a map task's
:class:`~repro.engine.blocks.BlockStore` publishes each map output into
``multiprocessing.shared_memory`` — all reduce buckets, encoded as
:class:`~repro.data.blocks.RecordBlock` wire blobs behind a small index
— and registers it in the process-global :class:`SegmentRegistry`.  A
reduce task that needs that map output checks the registry before
dialling the owner: a hit is served the publisher's decoded blocks by
reference (a dict probe, no ``fetch_buckets`` round trip and no segment
decode — the segment bytes stay the wire truth a cross-process reader
would map); a miss — different process, different host, dropped block, stale epoch —
falls back to the ordinary wire fetch.  The registry therefore *is* the
co-location map: a peer you can find in it shares your address space by
construction.

Allocation is slabbed: ``shm_open`` + ``ftruncate`` + ``mmap`` + the
resource-tracker round trip cost two orders of magnitude more than the
memcpy that fills a segment, so ordinary map outputs are bump-pointer
packed into a shared *slab* segment and a publication is just that
memcpy.  A slab whose publications have all been retired is reset and
reused (a small spare list bounds how many are kept); outputs too large
to share a slab get a dedicated segment.

Lifecycle: a publication lives exactly as long as its block.
Overwrite, ``drop_job``, ``clear``, chaos block-deletes, and worker
kills all retire it eagerly; :func:`live_segments` exposes the segments
still backing at least one publication so the test-suite leak fixture
can fail any test that leaves one behind.  Spare slabs are invisible to
readers and are unlinked when the last attached
:class:`~repro.engine.blocks.BlockStore` releases, on
:meth:`SegmentRegistry.clear`, and at interpreter exit.
"""

from __future__ import annotations

import atexit
import struct
import threading
from typing import Dict, List, Optional, Tuple

from repro.data.blocks import RecordBlock, to_record_block

try:  # pragma: no cover - import guard for minimal builds
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None  # type: ignore[assignment]

# Segment layout: header, index, then concatenated RecordBlock blobs.
# Offsets in index entries are relative to the end of the index.
_HEADER = struct.Struct(">4sBqI")  # magic, version, epoch, n_entries
_ENTRY = struct.Struct(">III")  # reduce_index, offset, length
_MAGIC = b"RSHM"
_VERSION = 1

# (owner_worker_id, job_id, shuffle_id, map_index)
SegmentKey = Tuple[str, int, int, int]

# Slab sizing: one slab packs many ordinary map outputs; anything
# bigger than a quarter slab gets its own dedicated segment so a single
# huge output cannot evict slab locality.  A handful of reset slabs are
# kept as spares for reuse.
_SLAB_SIZE = 256 * 1024
_DEDICATED_THRESHOLD = _SLAB_SIZE // 4
_MAX_SPARE_SLABS = 8


def encode_map_output(buckets: Dict[int, List], epoch: int) -> bytes:
    """Flatten one map output (all reduce buckets) into segment bytes."""
    blobs: List[Tuple[int, bytes]] = [
        (reduce_index, to_record_block(bucket).encode())
        for reduce_index, bucket in sorted(buckets.items())
    ]
    header = _HEADER.pack(_MAGIC, _VERSION, epoch, len(blobs))
    index = bytearray()
    offset = 0
    for reduce_index, blob in blobs:
        index += _ENTRY.pack(reduce_index, offset, len(blob))
        offset += len(blob)
    return b"".join([header, bytes(index)] + [blob for _, blob in blobs])


def decode_bucket(buf, reduce_index: int) -> Optional[RecordBlock]:
    """Read one reduce bucket out of segment bytes.

    Returns an empty block when the map output holds nothing for
    ``reduce_index`` (absence of a *bucket* is data; absence of the whole
    *segment* is the caller's fallback signal).
    """
    view = memoryview(buf)
    magic, version, _epoch, count = _HEADER.unpack_from(view, 0)
    if magic != _MAGIC or version != _VERSION:
        raise ValueError("bad shuffle segment header")
    base = _HEADER.size
    payload = base + count * _ENTRY.size
    for i in range(count):
        rid, offset, length = _ENTRY.unpack_from(view, base + i * _ENTRY.size)
        if rid == reduce_index:
            start = payload + offset
            return RecordBlock.decode(view[start : start + length])
    return RecordBlock.from_pairs([])


class _Slab:
    """One shared-memory segment packing many publications."""

    __slots__ = ("seg", "capacity", "offset", "live", "sealed")

    def __init__(self, seg, capacity: int):
        self.seg = seg
        self.capacity = capacity
        self.offset = 0  # bump pointer
        self.live = 0  # publications currently pointing into this slab
        self.sealed = False  # True once it stops accepting new blobs


# One publication: the slab it lives in, its byte range, its epoch, and
# the decoded per-reduce blocks.  The segment bytes are the publication's
# wire truth (what a cross-process reader would map); the block dict is
# the zero-copy view same-process readers get — sharing the publisher's
# objects directly, exactly as the inproc transport shares every payload.
_Entry = Tuple[_Slab, int, int, int, Dict[int, RecordBlock]]


class SegmentRegistry:
    """Process-global directory of published shuffle segments."""

    def __init__(self):
        self._lock = threading.Lock()
        self._segments: Dict[SegmentKey, _Entry] = {}
        self._current: Optional[_Slab] = None
        self._spares: List[_Slab] = []
        self._attached = 0
        self._peers: Dict[str, object] = {}

    @property
    def available(self) -> bool:
        return shared_memory is not None

    # -- attach/detach ---------------------------------------------------
    # Each BlockStore with the shm shuffle on attaches once; when the
    # last one detaches nothing can publish any more, so the spare slabs
    # are drained and their kernel objects unlinked.

    def attach(self) -> None:
        with self._lock:
            self._attached += 1

    def detach(self) -> None:
        with self._lock:
            self._attached = max(0, self._attached - 1)
            drain = self._attached == 0
        if drain:
            self.drain_pool()

    # -- co-located peer directory ---------------------------------------
    # The registry already *is* the co-location map for data (a publisher
    # you can find here shares your address space), so it also carries the
    # control-plane corollary: workers running the shm shuffle register
    # themselves, and shuffle *metadata* (notify_output) to a registered
    # peer is delivered by direct call instead of a wire RPC.  A peer
    # deregisters on kill/shutdown, so messages to a dead or remote worker
    # take the ordinary transport path and keep its failure semantics.

    def register_peer(self, worker_id: str, obj: object) -> None:
        with self._lock:
            self._peers[worker_id] = obj

    def unregister_peer(self, worker_id: str) -> None:
        with self._lock:
            self._peers.pop(worker_id, None)

    def peer(self, worker_id: str) -> Optional[object]:
        with self._lock:
            return self._peers.get(worker_id)

    # -- slab allocation (lock held) ------------------------------------

    def _alloc_locked(self, need: int) -> Optional[_Slab]:
        """A slab with ``need`` contiguous free bytes at its bump
        pointer, or None when shared memory cannot be allocated."""
        if need > _DEDICATED_THRESHOLD:
            seg = self._create(need)
            if seg is None:
                return None
            slab = _Slab(seg, need)
            slab.sealed = True  # dedicated: one publication, never current
            return slab
        slab = self._current
        if slab is None or slab.capacity - slab.offset < need:
            if slab is not None:
                if slab.live == 0:
                    # Fully retired: rewind the bump pointer and keep
                    # packing into the same kernel object.
                    slab.offset = 0
                    return slab
                slab.sealed = True
            slab = self._spares.pop() if self._spares else None
            if slab is None:
                seg = self._create(_SLAB_SIZE)
                if seg is None:
                    return None
                slab = _Slab(seg, _SLAB_SIZE)
            self._current = slab
        return slab

    @staticmethod
    def _create(size: int):
        try:
            return shared_memory.SharedMemory(create=True, size=max(size, 1))
        except OSError:  # pragma: no cover - e.g. /dev/shm exhausted
            return None

    def _reset_locked(self, slab: _Slab) -> None:
        """Make a fully-retired slab reusable (or unlink it when enough
        spares exist).  Dedicated slabs always die."""
        if slab.capacity != _SLAB_SIZE or len(self._spares) >= _MAX_SPARE_SLABS:
            _destroy(slab.seg)
            return
        slab.offset = 0
        slab.sealed = False
        if slab is not self._current:
            self._spares.append(slab)

    def _release_entry_locked(self, entry: _Entry) -> None:
        slab = entry[0]
        slab.live -= 1
        if slab.live == 0 and slab.sealed:
            self._reset_locked(slab)

    def drain_pool(self) -> int:
        """Unlink every idle slab (spares plus an empty current slab);
        returns how many died."""
        with self._lock:
            doomed = [slab.seg for slab in self._spares]
            self._spares.clear()
            if self._current is not None and self._current.live == 0:
                doomed.append(self._current.seg)
                self._current = None
        for seg in doomed:
            _destroy(seg)
        return len(doomed)

    # -- publications ----------------------------------------------------

    def publish(
        self,
        owner: str,
        job_id: int,
        shuffle_id: int,
        map_index: int,
        buckets: Dict[int, List],
        epoch: int = 0,
    ) -> bool:
        """Encode ``buckets`` into shared memory, replacing any prior
        publication of the same block.  Returns False (and publishes
        nothing) when shared memory is unavailable on this platform."""
        if shared_memory is None:  # pragma: no cover
            return False
        payload = encode_map_output(buckets, epoch)
        blocks = {
            reduce_index: to_record_block(bucket)
            for reduce_index, bucket in buckets.items()
        }
        need = len(payload)
        key = (owner, job_id, shuffle_id, map_index)
        with self._lock:
            slab = self._alloc_locked(need)
            if slab is None:
                return False
            offset = slab.offset
            slab.seg.buf[offset : offset + need] = payload
            slab.offset = offset + need
            slab.live += 1
            prior = self._segments.pop(key, None)
            self._segments[key] = (slab, offset, need, epoch, blocks)
            if prior is not None:
                self._release_entry_locked(prior)
        return True

    def read_bucket(
        self,
        owner: str,
        job_id: int,
        shuffle_id: int,
        map_index: int,
        reduce_index: int,
        min_epoch: int = 0,
    ) -> Optional[RecordBlock]:
        """The co-located fast path: the bucket, or None on any miss
        (unpublished, stale epoch) — the caller then fetches over the
        wire.  Served from the entry's decoded block dict by reference
        (blocks are append-frozen after publish), so a hit costs a dict
        probe instead of a segment decode."""
        key = (owner, job_id, shuffle_id, map_index)
        with self._lock:
            entry = self._segments.get(key)
            if entry is None:
                return None
            epoch, blocks = entry[3], entry[4]
            if epoch < min_epoch:
                return None
            block = blocks.get(reduce_index)
            return block if block is not None else RecordBlock.from_pairs([])

    def unpublish(
        self, owner: str, job_id: int, shuffle_id: int, map_index: int
    ) -> bool:
        with self._lock:
            entry = self._segments.pop((owner, job_id, shuffle_id, map_index), None)
            if entry is None:
                return False
            self._release_entry_locked(entry)
        return True

    def drop_job(self, owner: str, job_id: int) -> int:
        """Retire every publication ``owner`` made for ``job_id``."""
        with self._lock:
            doomed = [
                k for k in self._segments if k[0] == owner and k[1] == job_id
            ]
            for k in doomed:
                self._release_entry_locked(self._segments.pop(k))
        return len(doomed)

    def drop_owner(self, owner: str) -> int:
        """Retire everything ``owner`` published (worker kill/shutdown):
        a dead machine's blocks must be unreachable so §3.3 recovery
        triggers instead of reading ghost data."""
        with self._lock:
            doomed = [k for k in self._segments if k[0] == owner]
            for k in doomed:
                self._release_entry_locked(self._segments.pop(k))
        return len(doomed)

    def live_segments(self) -> List[str]:
        """Names of every segment currently backing a publication in
        this process (the conftest leak fixture fails tests that leave
        any)."""
        with self._lock:
            return sorted(
                {slab.seg.name for slab, *_ in self._segments.values()}  # type: ignore[attr-defined]
            )

    def clear(self) -> int:
        with self._lock:
            count = len(self._segments)
            slabs = {id(slab): slab for slab, *_ in self._segments.values()}
            for slab in self._spares:
                slabs[id(slab)] = slab
            if self._current is not None:
                slabs[id(self._current)] = self._current
            self._segments.clear()
            self._spares.clear()
            self._current = None
        for slab in slabs.values():
            _destroy(slab.seg)
        return count


def _destroy(seg) -> None:
    try:
        seg.close()
        seg.unlink()
    except OSError:  # pragma: no cover - already unlinked
        pass


# One registry per process: publication and lookup meet here, which makes
# "found in the registry" the definition of co-located.
_REGISTRY = SegmentRegistry()

# Unlink idle slabs before the resource tracker would report them as
# leaked at interpreter shutdown.
atexit.register(_REGISTRY.drain_pool)


def segment_registry() -> SegmentRegistry:
    return _REGISTRY


def live_segments() -> List[str]:
    return _REGISTRY.live_segments()
