"""Columnar record containers and shared-memory block movement.

``repro.data.blocks`` holds :class:`RecordBlock`, the columnar (key,
value) container shuffle buckets travel in when
``DataPlaneConf.record_blocks`` is on; ``repro.data.shm`` publishes
encoded blocks as ``multiprocessing.shared_memory`` segments so
co-located peers can skip the fetch RPC entirely (see "Raw speed" in
``docs/networking.md``).
"""

from repro.data.blocks import RecordBlock, to_record_block

__all__ = ["RecordBlock", "to_record_block"]
