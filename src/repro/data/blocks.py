"""Columnar record blocks for the shuffle hot path.

A shuffle bucket in this engine is a list of ``(key, value)`` pairs.  On
the wire and in the block store that layout costs one Python object per
record plus one pickle op per element.  :class:`RecordBlock` stores the
same pairs as two *columns*; when both columns are uniform machine
shapes (64-bit ints or floats) they live in ``array.array`` typed
storage and cross process/socket boundaries as a fixed header plus the
raw column buffers — zero pickle on the fast shape.  Anything else
falls back to plain object columns (pickled as usual), so a block can
always hold whatever a list could.

A ``RecordBlock`` iterates as ``(key, value)`` tuples in insertion
order, which keeps every existing consumer (combiners, window merges,
``list(bucket)`` copies) working unchanged — results are byte-identical
with blocks on or off.
"""

from __future__ import annotations

import struct
from array import array
from typing import Any, Dict, Iterable, Iterator, List, Tuple

# Column codes.  'q' / 'd' are array.array typecodes (int64 / float64);
# 'O' marks a plain-list object column, pickled on encode.  '-' as a
# *value* code marks a pairless block: the bucket held bare records (not
# pairs), all of which live in the key column and iterate unzipped.
_INT = "q"
_FLOAT = "d"
_OBJ = "O"
_NONE = "-"

# Encoded-block wire layout: magic, version, key code, value code,
# record count, key-buffer length, value-buffer length, then the two
# raw buffers.  Object columns ship pickled; typed columns ship their
# machine representation verbatim.
_MAGIC = b"RBLK"
_HEADER = struct.Struct(">4sBBBQII")
_VERSION = 1


def _build_column(column) -> Tuple[str, Any]:
    """Pick the densest storage a whole column fits in and build it.

    ``set(map(type, ...))`` keeps the whole scan in C; exact types mean
    ``bool`` (and every other int/float subclass) stays off the typed
    path — it would round-trip as ``int`` and break byte-identical
    results across the toggle.  Out-of-range ints are caught by the
    ``array`` constructor itself rather than a per-element bounds check.
    """
    kinds = set(map(type, column))
    if kinds == {int}:
        try:
            return _INT, array(_INT, column)
        except OverflowError:
            return _OBJ, column
    if kinds == {float}:
        return _FLOAT, array(_FLOAT, column)
    return _OBJ, column


def _pack_column(code: str, column: List[Any]) -> bytes:
    if code == _OBJ:
        import pickle

        return pickle.dumps(column, protocol=pickle.HIGHEST_PROTOCOL)
    return array(code, column).tobytes()


def _unpack_column(code: str, buf: memoryview) -> Any:
    if code == _OBJ:
        import pickle

        return pickle.loads(buf)
    col = array(code)
    col.frombytes(buf)
    return col


class RecordBlock:
    """A columnar list of ``(key, value)`` pairs."""

    __slots__ = ("kcode", "vcode", "keys", "values")

    def __init__(self, kcode: str, vcode: str, keys: Any, values: Any):
        self.kcode = kcode
        self.vcode = vcode
        self.keys = keys
        self.values = values

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[Any, Any]]) -> "RecordBlock":
        pairs = list(pairs) if not isinstance(pairs, list) else pairs
        if not pairs:
            return cls(_OBJ, _OBJ, [], [])
        keys, values = zip(*pairs)
        kcode, keys = _build_column(keys)
        vcode, values = _build_column(values)
        return cls(kcode, vcode, keys, values)

    @classmethod
    def from_records(cls, records: Iterable[Any]) -> "RecordBlock":
        """Build a block from any bucket shape.

        Buckets are usually ``(key, value)`` pairs, but unkeyed shuffles
        (e.g. tree-reduce) move bare records.  Records that are not all
        2-tuples go into a single *pairless* column and come back out
        exactly as stored — a list of 2-element lists must not silently
        turn into tuples, so only real tuples take the pair layout.
        """
        records = list(records) if not isinstance(records, list) else records
        if not records:
            return cls(_OBJ, _OBJ, [], [])
        if set(map(type, records)) == {tuple}:
            try:
                # strict zip unpacked into exactly two columns == every
                # record is a 2-tuple, without a per-record Python loop.
                keys, values = zip(*records, strict=True)
            except ValueError:
                pass
            else:
                kcode, keys = _build_column(keys)
                vcode, values = _build_column(values)
                return cls(kcode, vcode, keys, values)
        kcode, keys = _build_column(records)
        return cls(kcode, _NONE, keys, None)

    # ------------------------------------------------------------------
    # List-like behaviour (everything the engine does to a bucket)
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Tuple[Any, Any]]:
        if self.vcode == _NONE:
            return iter(self.keys)
        return zip(self.keys, self.values)

    def __len__(self) -> int:
        return len(self.keys)

    def __getitem__(self, index):
        if self.vcode == _NONE:
            if isinstance(index, slice):
                return list(self.keys[index])
            return self.keys[index]
        if isinstance(index, slice):
            return list(zip(self.keys[index], self.values[index]))
        return (self.keys[index], self.values[index])

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, (RecordBlock, list)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"RecordBlock(n={len(self)}, kcode={self.kcode!r}, "
            f"vcode={self.vcode!r})"
        )

    @property
    def is_typed(self) -> bool:
        """True when at least one column is in machine representation."""
        return self.kcode != _OBJ or self.vcode not in (_OBJ, _NONE)

    # ------------------------------------------------------------------
    # Aggregation fast path
    # ------------------------------------------------------------------
    def reduce_into(self, out: Dict[Any, Any], fn, create=None) -> None:
        """Fold this block into ``out`` with ``fn`` — the columnar twin
        of the per-pair loops in ``merge_combiners_iter`` and
        ``reduce_values_iter``.  ``create`` (when given) initialises the
        combiner on a key's first value, as ``create_combiner`` does."""
        get = out.get
        missing = _MISSING
        if create is None:
            for k, v in zip(self.keys, self.values):
                cur = get(k, missing)
                out[k] = v if cur is missing else fn(cur, v)
        else:
            for k, v in zip(self.keys, self.values):
                cur = get(k, missing)
                out[k] = create(v) if cur is missing else fn(cur, v)

    def group_into(self, out: Dict[Any, List[Any]]) -> None:
        """Append each value onto ``out[key]`` — the columnar twin of
        the loop in ``group_values_iter``."""
        setdefault = out.setdefault
        for k, v in zip(self.keys, self.values):
            setdefault(k, []).append(v)

    # ------------------------------------------------------------------
    # Wire form: header + raw column buffers
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        kbuf = _pack_column(self.kcode, self.keys)
        vbuf = b"" if self.vcode == _NONE else _pack_column(self.vcode, self.values)
        header = _HEADER.pack(
            _MAGIC,
            _VERSION,
            ord(self.kcode),
            ord(self.vcode),
            len(self.keys),
            len(kbuf),
            len(vbuf),
        )
        return b"".join((header, kbuf, vbuf))

    @classmethod
    def decode(cls, buf) -> "RecordBlock":
        """Rebuild a block from :meth:`encode` output.

        ``buf`` may be ``bytes`` or any buffer (e.g. a memoryview into a
        shared-memory segment); typed columns are copied out in one
        ``frombytes`` memcpy, never element-by-element.
        """
        view = memoryview(buf)
        magic, version, kc, vc, count, klen, vlen = _HEADER.unpack_from(view, 0)
        if magic != _MAGIC:
            raise ValueError(f"bad RecordBlock magic: {bytes(magic)!r}")
        if version != _VERSION:
            raise ValueError(f"unsupported RecordBlock version: {version}")
        off = _HEADER.size
        kcode, vcode = chr(kc), chr(vc)
        keys = _unpack_column(kcode, view[off : off + klen])
        if vcode == _NONE:
            values = None
        else:
            values = _unpack_column(vcode, view[off + klen : off + klen + vlen])
        if len(keys) != count or (values is not None and len(values) != count):
            raise ValueError(
                f"RecordBlock column length mismatch: header says {count}, "
                f"got {len(keys)} keys"
            )
        return cls(kcode, vcode, keys, values)

    def encoded_size(self) -> int:
        """Exact byte length :meth:`encode` would produce (header included)."""
        return len(self.encode())

    # Pickling a RecordBlock routes through the columnar wire form, so a
    # block inside any pickled payload (fetch_buckets responses, process
    # executor boundaries) crosses as raw buffers, not per-pair objects.
    def __reduce__(self):
        return (RecordBlock.decode, (self.encode(),))


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


def to_record_block(bucket: Iterable[Any]) -> RecordBlock:
    """Convert a bucket (any record shape) to a block; idempotent."""
    if isinstance(bucket, RecordBlock):
        return bucket
    return RecordBlock.from_records(bucket)
