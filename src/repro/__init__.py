"""repro — a from-scratch reproduction of *Drizzle: Fast and Adaptable
Stream Processing at Scale* (SOSP 2017).

Stable public API
-----------------

Everything a user needs to stand up a cluster and run batch or streaming
jobs is importable from the top level.  The deep modules remain the
*implementation* homes and keep working, but the names below are the
supported surface:

=============================================  ==========================
Old deep import (still works)                  Stable top-level name
=============================================  ==========================
``repro.engine.cluster.LocalCluster``          ``repro.LocalCluster``
``repro.common.config.EngineConf``             ``repro.EngineConf``
``repro.common.config.SchedulingMode``         ``repro.SchedulingMode``
``repro.common.config.ExecutorConf``           ``repro.ExecutorConf``
``repro.common.config.TransportConf``          ``repro.TransportConf``
``repro.common.config.DataPlaneConf``          ``repro.DataPlaneConf``
``repro.common.config.TelemetryConf``          ``repro.TelemetryConf``
``repro.common.config.ChaosConf``              ``repro.ChaosConf``
``repro.common.config.TemplateConf``           ``repro.TemplateConf``
``repro.common.config.ElasticConf``            ``repro.ElasticConf``
``repro.common.config.TunerConf``              ``repro.TunerConf``
``repro.common.config.TracingConf``            ``repro.TracingConf``
``repro.common.config.MonitorConf``            ``repro.MonitorConf``
``repro.common.config.SpeculationConf``        ``repro.SpeculationConf``
``repro.streaming.context.StreamingContext``   ``repro.StreamingContext``
=============================================  ==========================

Legacy shorthand aliases from before the redesign (``Cluster``,
``Config``, ``StreamContext``) still resolve but raise a
:class:`DeprecationWarning`; they are defined *only* here, never
re-exported by any other module (enforced by
``tests/test_public_api_lint.py``).

Layers (bottom-up):

* :mod:`repro.dag` — dataset DAG, stage planner, shuffle specs, combiners.
* :mod:`repro.engine` — real threaded BSP engine (the "Spark" substrate)
  with Drizzle's group scheduling and pre-scheduling built in.
* :mod:`repro.core` — the paper's contribution as pure policy: group
  planning, pre-scheduling dependency tables, execution templates, the
  AIMD group-size tuner.
* :mod:`repro.streaming` — micro-batch streaming (DStreams, state,
  checkpoints, exactly-once sinks) on top of the engine.
* :mod:`repro.continuous` — a continuous-operator engine (the "Flink"
  baseline) with aligned snapshots and restart-based recovery.
* :mod:`repro.sim` — a discrete-event cluster simulator used to reproduce
  the paper's 128-machine experiments.
* :mod:`repro.workloads` — Yahoo streaming benchmark, video analytics,
  micro-benchmarks, and the Table-2 query corpus.
* :mod:`repro.bench` — one experiment definition per paper table/figure.
"""

from __future__ import annotations

import warnings
from typing import Any

__version__ = "1.0.0"

from repro.common.config import (
    ChaosConf,
    DataPlaneConf,
    ElasticConf,
    EngineConf,
    ExecutorConf,
    MonitorConf,
    SchedulingMode,
    SpeculationConf,
    TelemetryConf,
    TemplateConf,
    TracingConf,
    TransportConf,
    TunerConf,
)

# Heavyweight entry points resolve lazily (module __getattr__, PEP 562):
# `import repro` stays cheap, and repro.common does not drag the engine
# or streaming layers in through the package __init__.
_LAZY_EXPORTS = {
    "LocalCluster": ("repro.engine.cluster", "LocalCluster"),
    "StreamingContext": ("repro.streaming.context", "StreamingContext"),
}

# Pre-redesign shorthand names, kept importable one release with a
# warning.  These aliases exist ONLY at the top level — no other module
# may re-export them (tests/test_public_api_lint.py).
DEPRECATED_ALIASES = {
    "Cluster": "LocalCluster",
    "Config": "EngineConf",
    "StreamContext": "StreamingContext",
}

__all__ = [
    "ChaosConf",
    "DataPlaneConf",
    "ElasticConf",
    "EngineConf",
    "ExecutorConf",
    "LocalCluster",
    "MonitorConf",
    "SchedulingMode",
    "SpeculationConf",
    "StreamingContext",
    "TelemetryConf",
    "TemplateConf",
    "TracingConf",
    "TransportConf",
    "TunerConf",
    "__version__",
]


def __getattr__(name: str) -> Any:
    if name in DEPRECATED_ALIASES:
        target = DEPRECATED_ALIASES[name]
        warnings.warn(
            f"repro.{name} is deprecated; use repro.{target}",
            DeprecationWarning,
            stacklevel=2,
        )
        name = target
    entry = _LAZY_EXPORTS.get(name)
    if entry is None:
        if name in __all__:
            # A deprecated alias resolved to an eagerly-imported name.
            return globals()[name]
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(entry[0]), entry[1])
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list:
    return sorted(set(globals()) | set(__all__) | set(DEPRECATED_ALIASES))
