"""repro — a from-scratch reproduction of *Drizzle: Fast and Adaptable
Stream Processing at Scale* (SOSP 2017).

Layers (bottom-up):

* :mod:`repro.dag` — dataset DAG, stage planner, shuffle specs, combiners.
* :mod:`repro.engine` — real threaded BSP engine (the "Spark" substrate)
  with Drizzle's group scheduling and pre-scheduling built in.
* :mod:`repro.core` — the paper's contribution as pure policy: group
  planning, pre-scheduling dependency tables, the AIMD group-size tuner.
* :mod:`repro.streaming` — micro-batch streaming (DStreams, state,
  checkpoints, exactly-once sinks) on top of the engine.
* :mod:`repro.continuous` — a continuous-operator engine (the "Flink"
  baseline) with aligned snapshots and restart-based recovery.
* :mod:`repro.sim` — a discrete-event cluster simulator used to reproduce
  the paper's 128-machine experiments.
* :mod:`repro.workloads` — Yahoo streaming benchmark, video analytics,
  micro-benchmarks, and the Table-2 query corpus.
* :mod:`repro.bench` — one experiment definition per paper table/figure.
"""

__version__ = "1.0.0"

from repro.common.config import EngineConf, SchedulingMode, TracingConf, TunerConf

__all__ = ["EngineConf", "SchedulingMode", "TracingConf", "TunerConf", "__version__"]
