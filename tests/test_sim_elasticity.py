"""Tests for the elasticity simulation (§3.3 group-size/adaptability
trade-off)."""

import pytest

from repro.sim.elasticity import group_size_adaptation_sweep, simulate_resize
from repro.sim.streaming import SystemConfig
from repro.workloads.profiles import YAHOO


class TestSimulateResize:
    def test_resize_effective_at_group_boundary(self):
        config = SystemConfig(kind="drizzle", machines=64, group_size=40)
        result = simulate_resize(
            YAHOO, config,
            rate_before=8e6, rate_after=8e6,
            duration_s=120.0, resize_at_s=51.0,
            machines_after=128, batch_interval_s=0.5,
        )
        # Next multiple of 40 batches (20 s) after batch ceil(51/0.5)=102
        # is batch 120 -> t=60 s.
        assert result.resize_effective_s == pytest.approx(60.0)
        assert result.adaptation_delay_s == pytest.approx(9.0)

    def test_group_of_one_reacts_immediately(self):
        config = SystemConfig(kind="drizzle", machines=64, group_size=1)
        result = simulate_resize(
            YAHOO, config,
            rate_before=6e6, rate_after=6e6,
            duration_s=60.0, resize_at_s=30.2,
            machines_after=128, batch_interval_s=0.5,
        )
        assert result.adaptation_delay_s <= 0.5

    def test_spark_reacts_per_batch(self):
        config = SystemConfig(kind="spark", machines=64, group_size=100)
        result = simulate_resize(
            YAHOO, config,
            rate_before=5e6, rate_after=5e6,
            duration_s=60.0, resize_at_s=30.2,
            machines_after=128, batch_interval_s=2.0,
        )
        # Spark has no groups: adaptation within one batch interval.
        assert result.adaptation_delay_s <= 2.0

    def test_more_machines_lower_service(self):
        config = SystemConfig(kind="drizzle", machines=64, group_size=10)
        result = simulate_resize(
            YAHOO, config,
            rate_before=8e6, rate_after=8e6,
            duration_s=200.0, resize_at_s=100.0,
            machines_after=128, batch_interval_s=0.5, seed=4,
        )
        before = [w.latency_s for w in result.run.window_latencies
                  if 40 <= w.window_end_s <= 90]
        after = [w.latency_s for w in result.run.window_latencies
                 if w.window_end_s >= 140]
        assert sum(after) / len(after) < sum(before) / len(before)


class TestGroupSizeSweep:
    def test_adaptation_delay_grows_with_group_size(self):
        rows = group_size_adaptation_sweep()
        delays = [r["adaptation_delay_s"] for r in rows]
        assert delays == sorted(delays)
        assert delays[-1] > delays[0] + 10

    def test_spike_grows_with_group_size(self):
        rows = group_size_adaptation_sweep()
        assert rows[-1]["post_resize_spike_s"] > 2 * rows[0]["post_resize_spike_s"]

    def test_steady_state_unaffected(self):
        rows = group_size_adaptation_sweep()
        # Bigger groups should not hurt (indeed slightly help) steady state.
        assert rows[-1]["normal_median_s"] <= rows[0]["normal_median_s"] * 1.2
