"""Worker-level tests: the local scheduler (§3.2) and task execution."""

import time

import pytest

from repro.common.config import EngineConf
from repro.common.errors import FetchFailed, WorkerLost
from repro.common.metrics import MetricsRegistry
from repro.dag.dataset import parallelize
from repro.dag.plan import collect_action, compile_plan
from repro.engine.rpc import Transport
from repro.engine.task import TaskDescriptor, TaskId
from repro.engine.worker import Worker


class _FakeDriver:
    """Captures worker -> driver callbacks."""

    def __init__(self):
        self.reports = []
        self.delivery_failures = []

    def task_finished(self, report):
        self.reports.append(report)

    def notify_delivery_failed(self, *args):
        self.delivery_failures.append(args)

    def heartbeat(self, *args):
        pass


def make_worker(worker_id="w0", slots=2):
    transport = Transport(MetricsRegistry())
    driver = _FakeDriver()
    transport.register("driver", driver)
    worker = Worker(worker_id, transport, EngineConf(slots_per_worker=slots),
                    MetricsRegistry())
    worker.start()
    return worker, driver, transport


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


def narrow_descriptor(job_id=0, partition=0, data=(1, 2, 3)):
    plan = compile_plan(parallelize(list(data), 2).map(lambda x: x * 2), collect_action())
    return TaskDescriptor(
        task_id=TaskId(job_id, 0, partition), plan=plan, pre_scheduled=True
    )


class TestTaskExecution:
    def test_runs_source_task_and_reports(self):
        worker, driver, _ = make_worker()
        worker.launch_tasks([narrow_descriptor()])
        assert wait_for(lambda: len(driver.reports) == 1)
        report = driver.reports[0]
        assert report.succeeded
        assert report.result == [2, 6]  # partition 0 of [1,2,3] over 2 parts
        worker.shutdown()

    def test_user_exception_reported_not_raised(self):
        worker, driver, _ = make_worker()
        plan = compile_plan(
            parallelize([1], 1).map(lambda x: 1 // 0), collect_action()
        )
        worker.launch_tasks(
            [TaskDescriptor(task_id=TaskId(0, 0, 0), plan=plan, pre_scheduled=True)]
        )
        assert wait_for(lambda: len(driver.reports) == 1)
        assert not driver.reports[0].succeeded
        assert isinstance(driver.reports[0].error, ZeroDivisionError)
        worker.shutdown()

    def test_dead_worker_discards_effects(self):
        worker, driver, _ = make_worker()
        worker.kill()
        worker.launch_tasks([narrow_descriptor()])
        time.sleep(0.1)
        assert driver.reports == []
        worker.shutdown()


class TestLocalScheduler:
    def test_parks_task_until_notified(self):
        worker, driver, _ = make_worker()
        plan = compile_plan(
            parallelize([("a", 1)], 1).reduce_by_key(lambda a, b: a + b, 1),
            collect_action(),
        )
        shuffle_id = plan.stages[0].output_shuffle.shuffle_id
        reduce_desc = TaskDescriptor(
            task_id=TaskId(0, 1, 0),
            plan=plan,
            pre_scheduled=True,
            deps=frozenset({(shuffle_id, 0)}),
        )
        worker.launch_tasks([reduce_desc])
        time.sleep(0.05)
        assert driver.reports == []  # still parked
        # Run the upstream map task on the same worker: its completion
        # notification must activate the parked reducer.
        map_desc = TaskDescriptor(
            task_id=TaskId(0, 0, 0),
            plan=plan,
            pre_scheduled=True,
            downstream={0: "w0"},
        )
        worker.launch_tasks([map_desc])
        assert wait_for(lambda: len(driver.reports) == 2)
        results = {r.task_id.stage_index: r for r in driver.reports}
        assert results[1].result == [("a", 1)]
        worker.shutdown()

    def test_pre_populate_activates(self):
        worker, driver, _ = make_worker()
        plan = compile_plan(
            parallelize([("a", 1)], 1).reduce_by_key(lambda a, b: a + b, 1),
            collect_action(),
        )
        shuffle_id = plan.stages[0].output_shuffle.shuffle_id
        # Map output already exists locally (as after a partial recovery).
        buckets = plan.stages[0].map_output_fn(0, iter([("a", 5)]))
        worker.blocks.put_map_output(0, shuffle_id, 0, buckets)
        reduce_desc = TaskDescriptor(
            task_id=TaskId(0, 1, 0),
            plan=plan,
            pre_scheduled=True,
            deps=frozenset({(shuffle_id, 0)}),
        )
        worker.launch_tasks([reduce_desc])
        worker.pre_populate(0, [((shuffle_id, 0), "w0")])
        assert wait_for(lambda: len(driver.reports) == 1)
        assert driver.reports[0].result == [("a", 5)]
        worker.shutdown()

    def test_cancel_job_drops_parked_tasks(self):
        worker, driver, _ = make_worker()
        plan = compile_plan(
            parallelize([("a", 1)], 1).reduce_by_key(lambda a, b: a + b, 1),
            collect_action(),
        )
        shuffle_id = plan.stages[0].output_shuffle.shuffle_id
        worker.launch_tasks(
            [
                TaskDescriptor(
                    task_id=TaskId(0, 1, 0),
                    plan=plan,
                    pre_scheduled=True,
                    deps=frozenset({(shuffle_id, 0)}),
                )
            ]
        )
        worker.cancel_job(0)
        worker.notify_output(0, shuffle_id, 0, "w0")
        time.sleep(0.05)
        assert driver.reports == []
        worker.shutdown()

    def test_fetch_from_dead_peer_reports_fetch_failed(self):
        transport = Transport(MetricsRegistry())
        driver = _FakeDriver()
        transport.register("driver", driver)
        w0 = Worker("w0", transport, EngineConf(), MetricsRegistry())
        w1 = Worker("w1", transport, EngineConf(), MetricsRegistry())
        w0.start()
        w1.start()
        plan = compile_plan(
            parallelize([("a", 1)], 1).reduce_by_key(lambda a, b: a + b, 1),
            collect_action(),
        )
        shuffle_id = plan.stages[0].output_shuffle.shuffle_id
        # Tell w0 the block lives on w1, then kill w1.
        w1.kill()
        reduce_desc = TaskDescriptor(
            task_id=TaskId(0, 1, 0),
            plan=plan,
            pre_scheduled=True,
            deps=frozenset({(shuffle_id, 0)}),
        )
        w0.launch_tasks([reduce_desc])
        w0.pre_populate(0, [((shuffle_id, 0), "w1")])
        assert wait_for(lambda: len(driver.reports) == 1)
        assert not driver.reports[0].succeeded
        assert isinstance(driver.reports[0].error, FetchFailed)
        w0.shutdown()
        w1.shutdown()

    def test_fetch_bucket_from_dead_worker_raises(self):
        worker, _driver, _ = make_worker()
        worker.kill()
        with pytest.raises(WorkerLost):
            worker.fetch_bucket(0, 0, 0, 0)
        worker.shutdown()

    def test_drop_job_clears_blocks_and_locations(self):
        worker, _driver, _ = make_worker()
        worker.blocks.put_map_output(3, 0, 0, {0: [1]})
        worker.notify_output(3, 0, 0, "w0")
        worker.drop_job(3)
        assert not worker.blocks.has_map_output(3, 0, 0)
