"""Async event-loop server (repro.net.aio): frame interop against
golden byte fixtures (v1 flagless and v2 compressed layouts), ordering
and concurrency behaviour, connection-scaling without per-connection
threads, the crash model on close, and a full TcpTransport cluster run
with ``async_io`` on."""

import socket
import struct
import threading
import time
import zlib

import pytest

from repro.common.config import DataPlaneConf, EngineConf, TransportConf
from repro.common.metrics import GAUGE_NET_OPEN_CONNECTIONS, MetricsRegistry
from repro.dag.dataset import parallelize
from repro.engine.cluster import LocalCluster
from repro.net.aio import AsyncMessageServer
from repro.net.framing import (
    FLAG_ZLIB,
    KIND_REQUEST,
    KIND_RESPONSE,
    encode_frame,
    read_frame,
    read_frame_ex,
)

# ----------------------------------------------------------------------
# Golden wire fixtures.  These byte strings are the protocol contract:
# if either changes, old and new binaries stop interoperating.
# ----------------------------------------------------------------------
# Version-1 (flagless) request: magic, version=1, kind=request, length.
GOLDEN_V1_REQUEST = b"RN\x01\x01\x00\x00\x00\x04ping"
# Version-2 (flagged) request carrying a zlib payload: magic, version=2,
# kind=request, flags=0x01, length, then the deflate stream.
_V2_BODY = zlib.compress(b"ping", 1)
GOLDEN_V2_ZLIB_REQUEST = (
    b"RN\x02\x01\x01" + struct.pack(">I", len(_V2_BODY)) + _V2_BODY
)


def _echo_upper(payload: bytes) -> bytes:
    return payload.upper()


@pytest.fixture
def aio_server():
    server = AsyncMessageServer(_echo_upper, MetricsRegistry(), name="aio-test")
    yield server
    server.close()


def _dial(server) -> socket.socket:
    sock = socket.create_connection(server.address, timeout=5.0)
    sock.settimeout(5.0)
    return sock


class TestGoldenFrames:
    def test_golden_v1_fixture_matches_encoder(self):
        assert encode_frame(KIND_REQUEST, b"ping") == GOLDEN_V1_REQUEST

    def test_golden_v2_fixture_matches_encoder(self):
        assert (
            encode_frame(KIND_REQUEST, _V2_BODY, FLAG_ZLIB)
            == GOLDEN_V2_ZLIB_REQUEST
        )

    def test_v1_request_through_async_server(self, aio_server):
        with _dial(aio_server) as sock:
            sock.sendall(GOLDEN_V1_REQUEST)
            kind, payload, flags, _wire = read_frame_ex(sock)
        assert (kind, payload, flags) == (KIND_RESPONSE, b"PING", 0)

    def test_v1_response_bytes_are_flagless(self, aio_server):
        # Compression off: the reply must be byte-identical to the v1
        # protocol — magic, version=1, kind=response, length, payload.
        with _dial(aio_server) as sock:
            sock.sendall(GOLDEN_V1_REQUEST)
            raw = b""
            while len(raw) < 12:
                raw += sock.recv(12 - len(raw))
        assert raw == b"RN\x01\x02\x00\x00\x00\x04PING"

    def test_v2_compressed_request_through_async_server(self, aio_server):
        with _dial(aio_server) as sock:
            sock.sendall(GOLDEN_V2_ZLIB_REQUEST)
            kind, payload = read_frame(sock)
        assert (kind, payload) == (KIND_RESPONSE, b"PING")

    def test_compressed_response_when_enabled(self):
        server = AsyncMessageServer(
            lambda p: p * 400,
            MetricsRegistry(),
            name="aio-zip",
            compression="auto",
            compress_threshold=64,
        )
        try:
            with _dial(server) as sock:
                sock.sendall(encode_frame(KIND_REQUEST, b"abc"))
                kind, payload, flags, wire_len = read_frame_ex(sock)
            assert (kind, payload) == (KIND_RESPONSE, b"abc" * 400)
            assert flags & FLAG_ZLIB
            assert wire_len < len(payload)
        finally:
            server.close()

    def test_bad_magic_drops_connection(self, aio_server):
        with _dial(aio_server) as sock:
            sock.sendall(b"XX" + GOLDEN_V1_REQUEST[2:])
            assert sock.recv(1) == b""  # server closed the connection


class TestServerBehaviour:
    def test_sequential_requests_share_connection(self, aio_server):
        with _dial(aio_server) as sock:
            for word in (b"alpha", b"beta", b"gamma"):
                sock.sendall(encode_frame(KIND_REQUEST, word))
                _kind, payload = read_frame(sock)
                assert payload == word.upper()

    def test_concurrent_connections(self, aio_server):
        results = {}

        def exchange(i: int) -> None:
            with _dial(aio_server) as sock:
                word = f"word-{i}".encode()
                sock.sendall(encode_frame(KIND_REQUEST, word))
                _kind, payload = read_frame(sock)
                results[i] = payload

        threads = [
            threading.Thread(target=exchange, args=(i,)) for i in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert results == {i: f"word-{i}".upper().encode() for i in range(16)}

    def test_idle_connections_cost_no_threads(self):
        """The scaling claim: hundreds of idle connections, thread count
        flat (the threaded server would need one thread per socket)."""
        metrics = MetricsRegistry()
        server = AsyncMessageServer(_echo_upper, metrics, name="aio-scale")
        socks = []
        try:
            threads_before = threading.active_count()
            for _ in range(256):
                socks.append(_dial(server))
            # Every connection is live: the open-connections gauge
            # reaches 256 without a single new thread per socket.
            deadline = time.monotonic() + 5.0
            gauge = metrics.gauge(GAUGE_NET_OPEN_CONNECTIONS)
            while gauge.value < 256 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert gauge.value == 256
            assert threading.active_count() - threads_before < 8
            # And they all still serve requests.
            for sock in (socks[0], socks[128], socks[255]):
                sock.sendall(encode_frame(KIND_REQUEST, b"alive?"))
                _kind, payload = read_frame(sock)
                assert payload == b"ALIVE?"
        finally:
            for sock in socks:
                sock.close()
            server.close()

    def test_close_refuses_new_connections(self):
        server = AsyncMessageServer(_echo_upper, MetricsRegistry(), name="aio-close")
        address = server.address
        server.close()
        assert server.closed
        with pytest.raises(OSError):
            socket.create_connection(address, timeout=1.0)

    def test_close_resets_open_connections(self):
        server = AsyncMessageServer(_echo_upper, MetricsRegistry(), name="aio-reset")
        sock = _dial(server)
        try:
            sock.sendall(encode_frame(KIND_REQUEST, b"x"))
            read_frame(sock)
            server.close()
            # The peer observes EOF/reset — the WorkerLost crash model.
            with pytest.raises((ConnectionError, OSError, Exception)):
                sock.sendall(encode_frame(KIND_REQUEST, b"y"))
                while True:
                    if sock.recv(4096) == b"":
                        raise ConnectionError("peer closed")
        finally:
            sock.close()
            server.close()


class TestTransportIntegration:
    def test_cluster_run_with_async_io(self):
        conf = EngineConf(
            num_workers=3,
            slots_per_worker=2,
            transport=TransportConf(
                backend="tcp",
                data_plane=DataPlaneConf(async_io=True),
            ),
        )
        with LocalCluster(conf) as cluster:
            ds = parallelize([(i % 5, 1) for i in range(100)], 5).reduce_by_key(
                lambda a, b: a + b
            )
            assert dict(cluster.collect(ds)) == {k: 20 for k in range(5)}

    def test_all_raw_speed_toggles_together(self):
        conf = EngineConf(
            num_workers=3,
            slots_per_worker=2,
            transport=TransportConf(
                backend="tcp",
                data_plane=DataPlaneConf(
                    record_blocks=True, shm_shuffle=True, async_io=True
                ),
            ),
        )
        with LocalCluster(conf) as cluster:
            ds = parallelize(list(range(120)), 6).map(
                lambda x: (x % 4, x)
            ).reduce_by_key(lambda a, b: a + b)
            out = dict(cluster.collect(ds))
        assert out == {k: sum(x for x in range(120) if x % 4 == k) for k in range(4)}
