"""Tests for the control-plane WAL (repro.ha.wal) and journal fold.

The properties that matter for crash recovery:

* append → read roundtrip preserves records in order;
* a torn tail (truncated or corrupted final record) is dropped cleanly —
  the intact prefix replays, nothing raises (property-tested over every
  truncation point and random corruptions);
* snapshot compaction keeps replay O(live state): after compaction the
  log is empty and the snapshot alone reproduces the folded state;
* fsync batching syncs every N appends, and force_sync always syncs.
"""

import random
import struct

import pytest

from repro.common.metrics import (
    COUNT_HA_WAL_APPENDS,
    COUNT_HA_WAL_FSYNCS,
    COUNT_HA_WAL_SNAPSHOTS,
    MetricsRegistry,
)
from repro.ha.journal import ControlJournal
from repro.ha.wal import (
    HEADER,
    LOG_NAME,
    WriteAheadLog,
    encode_record,
    load_wal,
    read_wal_records,
)


class TestWalRoundtrip:
    def test_append_read_roundtrip(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append("session", {"epoch": 1})
        wal.append("membership", {"workers": ["w0", "w1"]})
        wal.append("group_commit", {"batch_ids": [0, 1, 2]}, force_sync=True)
        wal.close()
        records, dropped = read_wal_records(str(tmp_path / LOG_NAME))
        assert dropped == 0
        assert [(r.record_type, r.payload) for r in records] == [
            ("session", {"epoch": 1}),
            ("membership", {"workers": ["w0", "w1"]}),
            ("group_commit", {"batch_ids": [0, 1, 2]}),
        ]

    def test_missing_log_is_empty_not_error(self, tmp_path):
        assert read_wal_records(str(tmp_path / "absent.log")) == ([], 0)
        snapshot, tail, stats = load_wal(str(tmp_path / "nowhere"))
        assert snapshot is None and tail == []
        assert stats["records_replayed"] == 0

    def test_fsync_batching_and_force_sync(self, tmp_path):
        metrics = MetricsRegistry()
        wal = WriteAheadLog(str(tmp_path), fsync_every_n=3, metrics=metrics)
        wal.append("job", {"event": "submitted", "job_id": 1})
        wal.append("job", {"event": "submitted", "job_id": 2})
        assert metrics.counter(COUNT_HA_WAL_FSYNCS).value == 0
        wal.append("job", {"event": "submitted", "job_id": 3})  # 3rd: batch sync
        assert metrics.counter(COUNT_HA_WAL_FSYNCS).value == 1
        wal.append("group_commit", {"batch_ids": [0]}, force_sync=True)
        assert metrics.counter(COUNT_HA_WAL_FSYNCS).value == 2
        assert metrics.counter(COUNT_HA_WAL_APPENDS).value == 4
        wal.close()

    def test_compaction_truncates_log_and_persists_state(self, tmp_path):
        metrics = MetricsRegistry()
        wal = WriteAheadLog(str(tmp_path), metrics=metrics)
        for i in range(4):
            wal.append("job", {"event": "submitted", "job_id": i})
        wal.compact({"jobs": 4, "committed_batches": {0, 1}})
        assert (tmp_path / LOG_NAME).stat().st_size == 0
        assert metrics.counter(COUNT_HA_WAL_SNAPSHOTS).value == 1
        wal.append("job", {"event": "submitted", "job_id": 9}, force_sync=True)
        wal.close()
        snapshot, tail, _stats = load_wal(str(tmp_path))
        assert snapshot == {"jobs": 4, "committed_batches": {0, 1}}
        assert [r.payload["job_id"] for r in tail] == [9]


class TestTornTail:
    def _write_log(self, tmp_path, n=5):
        wal = WriteAheadLog(str(tmp_path))
        for i in range(n):
            wal.append("group_commit", {"batch_ids": [i], "pad": "x" * 40})
        wal.close()
        return tmp_path / LOG_NAME

    def test_every_truncation_point_drops_only_the_tail(self, tmp_path):
        """Property: for EVERY prefix length of a valid log, decode yields
        some prefix of the records and never raises — a torn final record
        cannot poison replay."""
        log = self._write_log(tmp_path)
        data = log.read_bytes()
        # Record boundaries, for checking how many records must survive.
        boundaries = [0]
        off = 0
        while off < len(data):
            _m, _v, _t, length, _c = HEADER.unpack_from(data, off)
            off += HEADER.size + length
            boundaries.append(off)
        for cut in range(len(data) + 1):
            log.write_bytes(data[:cut])
            records, dropped = read_wal_records(str(log))
            complete = sum(1 for b in boundaries[1:] if b <= cut)
            assert len(records) == complete, f"cut at {cut}"
            assert [r.payload["batch_ids"] for r in records] == [
                [i] for i in range(complete)
            ]
            if cut != boundaries[complete]:
                assert dropped > 0

    @pytest.mark.parametrize("seed", range(8))
    def test_random_corruption_in_final_record_is_dropped(self, tmp_path, seed):
        log = self._write_log(tmp_path)
        data = bytearray(log.read_bytes())
        rng = random.Random(seed)
        # Flip one byte inside the final record (header or payload).
        off = 0
        while True:
            _m, _v, _t, length, _c = HEADER.unpack_from(data, off)
            nxt = off + HEADER.size + length
            if nxt >= len(data):
                break
            off = nxt
        pos = rng.randrange(off, len(data))
        data[pos] ^= 0xFF
        log.write_bytes(bytes(data))
        records, _dropped = read_wal_records(str(log))
        # At least the intact prefix; never more than written; no raise.
        assert 4 <= len(records) <= 5
        assert [r.payload["batch_ids"] for r in records[:4]] == [[i] for i in range(4)]

    def test_garbage_length_does_not_overread(self, tmp_path):
        log = tmp_path / LOG_NAME
        framed = encode_record("session", {"epoch": 1})
        # A header claiming a huge payload with nothing behind it.
        bogus = HEADER.pack(b"RW", 1, 1, 1 << 29, 0)
        log.write_bytes(framed + bogus)
        records, dropped = read_wal_records(str(log))
        assert len(records) == 1
        assert dropped == len(bogus)

    def test_torn_tail_then_journal_replay(self, tmp_path):
        """The journal folds the intact prefix and a new session can be
        opened on top of a torn log."""
        journal = ControlJournal(str(tmp_path))
        epoch = journal.open_session()
        journal.record_membership(["w0"])
        journal.record_group_commit([0, 1], job_keys=[(0, 0), (0, 1)])
        journal.close()
        log = tmp_path / LOG_NAME
        data = log.read_bytes()
        log.write_bytes(data[:-7])  # tear mid-final-record
        reopened = ControlJournal(str(tmp_path))
        assert reopened.recovered.session_epoch == epoch
        assert reopened.open_session() == epoch + 1
        reopened.close()

    def test_oversized_record_rejected_at_encode(self):
        from repro.common.errors import CheckpointError

        with pytest.raises(CheckpointError):
            encode_record("blob", {"data": b"x" * ((1 << 30) + 1)})


class TestJournalFold:
    def test_fold_reproduces_control_state(self, tmp_path):
        journal = ControlJournal(str(tmp_path), snapshot_every_n_groups=100)
        journal.open_session()
        journal.record_membership(["w0", "w1"], template_epoch=3)
        journal.record_job("submitted", 1, key=(0, 0))
        journal.record_job("submitted", 2, key=(0, 1))
        journal.record_group_commit([0, 1], job_keys=[(0, 0), (0, 1)])
        journal.record_checkpoint(1, 2, {"counts": {"a": 4}}, extra={"next_batch": 2})
        journal.record_shard_map({"counts": [[0, 64]]})
        journal.close()

        state = ControlJournal.recover(str(tmp_path))
        assert state.session_epoch == 1
        assert state.workers == ["w0", "w1"]
        assert state.template_epoch == 3
        assert state.committed_batches == frozenset({0, 1})
        assert state.jobs["open"] == []  # committed group retired them
        assert state.checkpoint["state_snapshots"] == {"counts": {"a": 4}}
        assert state.next_batch == 2
        assert state.shard_map == {"counts": [[0, 64]]}

    def test_compaction_preserves_fold(self, tmp_path):
        journal = ControlJournal(str(tmp_path), snapshot_every_n_groups=2)
        journal.open_session()
        journal.record_membership(["w0"])
        for g in range(5):  # compacts at groups 2 and 4
            journal.record_group_commit([g])
        journal.close()
        state = ControlJournal.recover(str(tmp_path))
        assert state.committed_batches == frozenset(range(5))
        assert state.workers == ["w0"]
        # Replay cost is O(live state): the tail holds at most the records
        # since the last compaction, not the full history.
        assert state.replay_stats["records_replayed"] <= 2

    def test_unknown_record_type_is_skipped(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append("session", {"epoch": 2})
        wal.append("from_the_future", {"anything": True})
        wal.close()
        state = ControlJournal.recover(str(tmp_path))
        assert state.session_epoch == 2

    def test_epoch_monotonic_across_sessions(self, tmp_path):
        epochs = []
        for _ in range(3):
            journal = ControlJournal(str(tmp_path))
            epochs.append(journal.open_session())
            journal.close()
        assert epochs == [1, 2, 3]
