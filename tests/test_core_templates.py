"""Execution templates, pure-policy layer (repro.core.templates):
template-id digests, sender bookkeeping, worker-side store substitution,
epoch invalidation — plus TemplateConf wiring and the epoch tag on
PendingTaskTable."""

import pytest

from repro.common.config import ConfigError, EngineConf, TemplateConf
from repro.core.prescheduling import PendingTaskTable
from repro.core.templates import (
    DEFAULT_MAX_TEMPLATES,
    PlanDigestCache,
    TemplateSender,
    TemplateStore,
    compute_template_id,
)
from repro.dag.dataset import parallelize
from repro.dag.plan import collect_action, compile_plan
from repro.engine.task import TaskDescriptor, TaskId


def _plan(bump: int = 1):
    return compile_plan(
        parallelize([1, 2, 3], 2).map(lambda x: x + bump), collect_action()
    )


def _descriptors(plan, job_id=0, n=2):
    return [
        TaskDescriptor(task_id=TaskId(job_id, 0, p), plan=plan, pre_scheduled=True)
        for p in range(n)
    ]


# ----------------------------------------------------------------------
# Template-id digesting
# ----------------------------------------------------------------------
class TestTemplateId:
    def test_same_shape_different_batch_ids_same_id(self):
        """Batch ids are the template's *parameters*: two groups of the
        same shape digest identically no matter which batches they carry."""
        cache = PlanDigestCache()
        plan = _plan()
        tid_a = compute_template_id(_descriptors(plan, job_id=7), (7,), cache)
        tid_b = compute_template_id(_descriptors(plan, job_id=42), (42,), cache)
        assert tid_a == tid_b
        assert len(tid_a) == 16

    def test_content_identical_plan_objects_same_id(self):
        """Plans enter by *content* digest, so a rebuilt (but identical)
        plan object — a fresh compile per micro-batch — still hits."""
        cache = PlanDigestCache()
        tid_a = compute_template_id(_descriptors(_plan()), (0,), cache)
        tid_b = compute_template_id(_descriptors(_plan()), (0,), cache)
        assert tid_a == tid_b

    def test_different_plan_content_different_id(self):
        cache = PlanDigestCache()
        tid_a = compute_template_id(_descriptors(_plan(bump=1)), (0,), cache)
        tid_b = compute_template_id(_descriptors(_plan(bump=2)), (0,), cache)
        assert tid_a != tid_b

    def test_group_size_changes_id(self):
        cache = PlanDigestCache()
        plan = _plan()
        one = compute_template_id(_descriptors(plan, job_id=0), (0,), cache)
        two = compute_template_id(
            _descriptors(plan, job_id=0) + _descriptors(plan, job_id=1),
            (0, 1),
            cache,
        )
        assert one != two

    def test_placement_changes_id(self):
        cache = PlanDigestCache()
        plan = _plan()
        base = _descriptors(plan)
        moved = [
            TaskDescriptor(
                task_id=d.task_id,
                plan=d.plan,
                pre_scheduled=d.pre_scheduled,
                deps=d.deps,
                downstream={0: "worker-9"},
                map_locations=d.map_locations,
            )
            for d in base
        ]
        assert compute_template_id(base, (0,), cache) != compute_template_id(
            moved, (0,), cache
        )

    def test_digest_cache_memoizes_by_identity(self):
        cache = PlanDigestCache()
        plan = _plan()
        assert cache.digest(plan) == cache.digest(plan)


# ----------------------------------------------------------------------
# Driver-side sender bookkeeping
# ----------------------------------------------------------------------
class TestTemplateSender:
    def test_holds_requires_matching_epoch(self):
        sender = TemplateSender()
        sender.mark_shipped("w0", "t1", epoch=3, wire_bytes=1000)
        assert sender.holds("w0", "t1", 3)
        assert not sender.holds("w0", "t1", 4)
        assert not sender.holds("w1", "t1", 3)
        assert sender.full_size("w0", "t1") == 1000

    def test_forget_and_forget_peer(self):
        sender = TemplateSender()
        sender.mark_shipped("w0", "t1", 0, 10)
        sender.mark_shipped("w0", "t2", 0, 10)
        sender.forget("w0", "t1")
        assert not sender.holds("w0", "t1", 0)
        assert sender.holds("w0", "t2", 0)
        assert sender.forget_peer("w0") == 1
        assert len(sender) == 0

    def test_invalidate_all_counts_drops(self):
        sender = TemplateSender()
        sender.mark_shipped("w0", "t1", 0, 10)
        sender.mark_shipped("w1", "t1", 0, 10)
        assert sender.invalidate_all() == 2
        assert not sender.holds("w0", "t1", 0)

    def test_per_peer_cap_evicts_fifo(self):
        sender = TemplateSender(max_per_peer=2)
        sender.mark_shipped("w0", "t1", 0, 10)
        sender.mark_shipped("w0", "t2", 0, 10)
        sender.mark_shipped("w0", "t3", 0, 10)
        assert not sender.holds("w0", "t1", 0)  # oldest evicted
        assert sender.holds("w0", "t2", 0) and sender.holds("w0", "t3", 0)


# ----------------------------------------------------------------------
# Worker-side store
# ----------------------------------------------------------------------
class TestTemplateStore:
    def test_instantiate_substitutes_batch_ids(self):
        store = TemplateStore()
        plan = _plan()
        assert store.install("t1", 0, _descriptors(plan, job_id=5), (5,))
        out = store.instantiate("t1", (9,), 0)
        assert [d.task_id.job_id for d in out] == [9, 9]
        assert [d.task_id.partition for d in out] == [0, 1]
        assert out[0].plan is plan  # plans are shared, not copied

    def test_instantiate_never_mutates_cached_descriptors(self):
        store = TemplateStore()
        descs = _descriptors(_plan(), job_id=5)
        store.install("t1", 0, descs, (5,))
        store.instantiate("t1", (9,), 0)
        assert [d.task_id.job_id for d in descs] == [5, 5]
        again = store.instantiate("t1", (11,), 0)
        assert [d.task_id.job_id for d in again] == [11, 11]

    def test_epoch_mismatch_refuses(self):
        store = TemplateStore()
        store.install("t1", 2, _descriptors(_plan()), (0,))
        assert store.instantiate("t1", (1,), 3) is None
        assert store.instantiate("t1", (1,), 1) is None
        assert store.instantiate("t1", (1,), 2) is not None

    def test_group_size_mismatch_refuses(self):
        store = TemplateStore()
        store.install("t1", 0, _descriptors(_plan()), (0,))
        assert store.instantiate("t1", (1, 2), 0) is None

    def test_unknown_template_refuses(self):
        assert TemplateStore().instantiate("nope", (0,), 0) is None

    def test_install_rejects_foreign_job_id(self):
        store = TemplateStore()
        assert not store.install("t1", 0, _descriptors(_plan(), job_id=5), (6,))
        assert "t1" not in store

    def test_newer_epoch_evicts_stale_templates(self):
        store = TemplateStore()
        plan = _plan()
        store.install("old", 0, _descriptors(plan), (0,))
        store.install("new", 1, _descriptors(plan), (0,))
        assert "old" not in store and "new" in store

    def test_cap_evicts_fifo(self):
        store = TemplateStore(max_templates=2)
        plan = _plan()
        for i in range(3):
            store.install(f"t{i}", 0, _descriptors(plan), (0,))
        assert "t0" not in store and len(store) == 2

    def test_invalidate_all(self):
        store = TemplateStore()
        store.install("t1", 0, _descriptors(_plan()), (0,))
        assert store.invalidate_all() == 1
        assert len(store) == 0


# ----------------------------------------------------------------------
# TemplateConf
# ----------------------------------------------------------------------
class TestTemplateConf:
    def test_defaults(self):
        conf = TemplateConf()
        assert conf.enabled is False
        assert conf.max_per_worker == DEFAULT_MAX_TEMPLATES

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEMPLATES", "1")
        assert TemplateConf().enabled is True
        monkeypatch.setenv("REPRO_TEMPLATES", "off")
        assert TemplateConf().enabled is False

    def test_validate_rejects_bad_cap(self):
        with pytest.raises(ConfigError, match="max_per_worker"):
            EngineConf(templates=TemplateConf(max_per_worker=0)).validate()

    def test_engine_conf_round_trip(self):
        conf = EngineConf(templates=TemplateConf(enabled=True, max_per_worker=7))
        data = conf.to_dict()
        assert data["templates"] == {"enabled": True, "max_per_worker": 7}
        back = EngineConf.from_dict(data)
        assert back.templates.enabled is True
        assert back.templates.max_per_worker == 7

    def test_from_dict_rejects_unknown_template_key(self):
        with pytest.raises(ConfigError):
            EngineConf.from_dict({"templates": {"enabledd": True}})


# ----------------------------------------------------------------------
# PendingTaskTable epoch tag
# ----------------------------------------------------------------------
class TestPendingTableEpoch:
    def test_default_epoch_zero(self):
        assert PendingTaskTable().epoch == 0

    def test_epoch_recorded(self):
        table = PendingTaskTable(epoch=4)
        assert table.epoch == 4
        # The tag never disturbs the §3.2 protocol.
        assert table.register("task", frozenset({(1, 0)})) is False
        assert table.notify((1, 0)) == ["task"]
